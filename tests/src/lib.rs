//! Integration-test crate: the tests in `tests/tests/` exercise complete
//! pipelines across every workspace crate (data generation → sanitization →
//! query evaluation). This library only hosts shared test helpers.

use dpod_fmatrix::{DenseMatrix, Shape};

/// A small deterministic 2-D matrix with one dense cluster and a sparse
/// background — the minimal fixture exhibiting the skew every mechanism
/// must handle.
pub fn clustered_fixture(side: usize, cluster: u64) -> DenseMatrix<u64> {
    let shape = Shape::new(vec![side, side]).expect("valid shape");
    let mut m = DenseMatrix::zeros(shape);
    for x in 0..side / 4 {
        for y in 0..side / 4 {
            m.set(&[x, y], cluster).expect("in bounds");
        }
    }
    for i in 0..side {
        m.add_at(&[i, i], 1).expect("in bounds");
    }
    m
}
