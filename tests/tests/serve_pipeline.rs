//! End-to-end serving tests: curator publishes a catalog, the serving
//! layer answers analyst query batches — and every answer must equal the
//! direct `SanitizedMatrix::range_sum` computed against the same release,
//! through both the in-process and the TCP front end.

use dpod_core::{daf::DafEntropy, grid::Ebp, grid::Eug, Mechanism, PublishedRelease};
use dpod_data::City;
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, Shape};
use dpod_query::workload::QueryWorkload;
use dpod_serve::protocol::{Request, Response};
use dpod_serve::{Catalog, Server};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::Arc;

const SIDE: usize = 64;

/// Three releases from distinct mechanisms over distinct city inputs,
/// plus the reference sanitized matrices the serving layer must agree
/// with.
fn reference_catalog() -> (Arc<Catalog>, HashMap<String, dpod_core::SanitizedMatrix>) {
    let eps = Epsilon::new(0.5).unwrap();
    let specs: [(&str, City, Box<dyn Mechanism>); 3] = [
        ("ny-ebp", City::NewYork, Box::new(Ebp::default())),
        ("denver-eug", City::Denver, Box::new(Eug::default())),
        (
            "detroit-daf",
            City::Detroit,
            Box::new(DafEntropy::default()),
        ),
    ];
    let catalog = Catalog::new();
    let mut reference = HashMap::new();
    for (i, (name, city, mech)) in specs.into_iter().enumerate() {
        let input =
            city.model()
                .population_matrix(SIDE, 30_000, &mut dpod_dp::seeded_rng(50 + i as u64));
        let out = mech
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(60 + i as u64))
            .unwrap();
        catalog.publish(name, PublishedRelease::from_sanitized(&out));
        reference.insert(name.to_string(), out);
    }
    (Arc::new(catalog), reference)
}

fn workload(n: usize, seed: u64) -> Vec<AxisBox> {
    let shape = Shape::new(vec![SIDE, SIDE]).unwrap();
    QueryWorkload::Random.draw_many(&shape, n, &mut dpod_dp::seeded_rng(seed))
}

/// The tentpole acceptance property: a 10k-query batch over a 3-release
/// catalog, every answer bit-identical to the direct range sum.
#[test]
fn ten_thousand_query_batch_matches_direct_range_sums() {
    let (catalog, reference) = reference_catalog();
    let server = Server::new(Arc::clone(&catalog), 64 << 20);
    let names: Vec<&str> = {
        let mut n: Vec<&str> = reference.keys().map(|s| s.as_str()).collect();
        n.sort();
        n
    };
    let queries = workload(10_000, 99);
    for (i, q) in queries.iter().enumerate() {
        let name = names[i % names.len()];
        let resp = server.handle(&Request::Query {
            release: name.into(),
            lo: q.lo().to_vec(),
            hi: q.hi().to_vec(),
        });
        let Response::Value { value } = resp else {
            panic!("query {i} failed: {resp:?}");
        };
        let expected = reference[name].range_sum(q);
        assert_eq!(value, expected, "query {i} on {name} diverged");
    }
    assert_eq!(server.queries_answered(), 10_000);
    let stats = server.engine_stats();
    assert_eq!(stats.misses, 3, "each release rebuilt exactly once");
    assert_eq!(stats.hits, 10_000 - 3);
}

/// The same agreement holds across the TCP front end with concurrent
/// analysts (each pipelining batches against a different release).
#[test]
fn tcp_clients_agree_with_direct_range_sums() {
    let (catalog, reference) = reference_catalog();
    let server = Arc::new(Server::new(Arc::clone(&catalog), 64 << 20));
    let handle = dpod_serve::spawn(Arc::clone(&server), "127.0.0.1:0", 4).unwrap();
    let addr = handle.addr();
    let reference = Arc::new(reference);

    let mut joins = Vec::new();
    for (t, name) in ["ny-ebp", "denver-eug", "detroit-daf"]
        .into_iter()
        .enumerate()
    {
        let reference = Arc::clone(&reference);
        joins.push(std::thread::spawn(move || {
            let queries = workload(500, 200 + t as u64);
            let ranges: Vec<(Vec<usize>, Vec<usize>)> = queries
                .iter()
                .map(|q| (q.lo().to_vec(), q.hi().to_vec()))
                .collect();
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let req = Request::Batch {
                release: name.into(),
                ranges,
            };
            writer
                .write_all(serde_json::to_string(&req).unwrap().as_bytes())
                .unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let Response::Values { values } = serde_json::from_str(line.trim()).unwrap() else {
                panic!("batch on {name} failed");
            };
            assert_eq!(values.len(), queries.len());
            for (q, got) in queries.iter().zip(&values) {
                let expected = reference[name].range_sum(q);
                // JSON carries shortest-round-trip decimals: exact.
                assert_eq!(*got, expected, "{name} diverged on {q:?}");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    handle.stop();
}

/// Catalog persistence composes with serving: save, reload, same answers.
#[test]
fn reloaded_catalog_serves_identical_answers() {
    let (catalog, reference) = reference_catalog();
    let dir = std::env::temp_dir().join(format!("dpod_serve_reload_{}", std::process::id()));
    catalog.save_dir(&dir).unwrap();
    let reloaded = Catalog::load_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let server = Server::new(Arc::new(reloaded), 64 << 20);
    for (name, sanitized) in reference.iter() {
        for q in workload(200, 77) {
            let resp = server.handle(&Request::Query {
                release: name.clone(),
                lo: q.lo().to_vec(),
                hi: q.hi().to_vec(),
            });
            let Response::Value { value } = resp else {
                panic!("{name}: {resp:?}");
            };
            assert_eq!(value, sanitized.range_sum(&q));
        }
    }
}
