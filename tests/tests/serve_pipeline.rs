//! End-to-end serving tests: curator publishes a catalog, the serving
//! layer answers analyst query batches — and every answer must equal the
//! direct `SanitizedMatrix::range_sum` computed against the same release,
//! through both the in-process and the TCP front end.

use dpod_core::{daf::DafEntropy, grid::Ebp, grid::Eug, Mechanism, PublishedRelease};
use dpod_data::City;
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, Shape};
use dpod_query::workload::QueryWorkload;
use dpod_serve::protocol::{Request, Response};
use dpod_serve::{Catalog, Server};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::Arc;

const SIDE: usize = 64;

/// Three releases from distinct mechanisms over distinct city inputs,
/// plus the reference sanitized matrices the serving layer must agree
/// with.
fn reference_catalog() -> (Arc<Catalog>, HashMap<String, dpod_core::SanitizedMatrix>) {
    let eps = Epsilon::new(0.5).unwrap();
    let specs: [(&str, City, Box<dyn Mechanism>); 3] = [
        ("ny-ebp", City::NewYork, Box::new(Ebp::default())),
        ("denver-eug", City::Denver, Box::new(Eug::default())),
        (
            "detroit-daf",
            City::Detroit,
            Box::new(DafEntropy::default()),
        ),
    ];
    let catalog = Catalog::new();
    let mut reference = HashMap::new();
    for (i, (name, city, mech)) in specs.into_iter().enumerate() {
        let input =
            city.model()
                .population_matrix(SIDE, 30_000, &mut dpod_dp::seeded_rng(50 + i as u64));
        let out = mech
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(60 + i as u64))
            .unwrap();
        catalog.publish(name, PublishedRelease::from_sanitized(&out));
        reference.insert(name.to_string(), out);
    }
    (Arc::new(catalog), reference)
}

fn workload(n: usize, seed: u64) -> Vec<AxisBox> {
    let shape = Shape::new(vec![SIDE, SIDE]).unwrap();
    QueryWorkload::Random.draw_many(&shape, n, &mut dpod_dp::seeded_rng(seed))
}

/// The tentpole acceptance property: a 10k-query batch over a 3-release
/// catalog, every answer bit-identical to the direct range sum.
#[test]
fn ten_thousand_query_batch_matches_direct_range_sums() {
    let (catalog, reference) = reference_catalog();
    let server = Server::new(Arc::clone(&catalog), 64 << 20);
    let names: Vec<&str> = {
        let mut n: Vec<&str> = reference.keys().map(|s| s.as_str()).collect();
        n.sort();
        n
    };
    let queries = workload(10_000, 99);
    for (i, q) in queries.iter().enumerate() {
        let name = names[i % names.len()];
        let resp = server.handle(&Request::Query {
            release: name.into(),
            lo: q.lo().to_vec(),
            hi: q.hi().to_vec(),
        });
        let Response::Value { value } = resp else {
            panic!("query {i} failed: {resp:?}");
        };
        let expected = reference[name].range_sum(q);
        assert_eq!(value, expected, "query {i} on {name} diverged");
    }
    assert_eq!(server.queries_answered(), 10_000);
    let stats = server.engine_stats();
    assert_eq!(stats.misses, 3, "each release rebuilt exactly once");
    assert_eq!(stats.hits, 10_000 - 3);
}

/// The same agreement holds across the TCP front end with concurrent
/// analysts (each pipelining batches against a different release).
#[test]
fn tcp_clients_agree_with_direct_range_sums() {
    let (catalog, reference) = reference_catalog();
    let server = Arc::new(Server::new(Arc::clone(&catalog), 64 << 20));
    let handle = dpod_serve::spawn(Arc::clone(&server), "127.0.0.1:0", 4).unwrap();
    let addr = handle.addr();
    let reference = Arc::new(reference);

    let mut joins = Vec::new();
    for (t, name) in ["ny-ebp", "denver-eug", "detroit-daf"]
        .into_iter()
        .enumerate()
    {
        let reference = Arc::clone(&reference);
        joins.push(std::thread::spawn(move || {
            let queries = workload(500, 200 + t as u64);
            let ranges: Vec<(Vec<usize>, Vec<usize>)> = queries
                .iter()
                .map(|q| (q.lo().to_vec(), q.hi().to_vec()))
                .collect();
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let req = Request::Batch {
                release: name.into(),
                ranges,
            };
            writer
                .write_all(serde_json::to_string(&req).unwrap().as_bytes())
                .unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let Response::Values { values } = serde_json::from_str(line.trim()).unwrap() else {
                panic!("batch on {name} failed");
            };
            assert_eq!(values.len(), queries.len());
            for (q, got) in queries.iter().zip(&values) {
                let expected = reference[name].range_sum(q);
                // JSON carries shortest-round-trip decimals: exact.
                assert_eq!(*got, expected, "{name} diverged on {q:?}");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    handle.stop();
}

/// The same agreement holds over the `DPRB` binary protocol: answers are
/// bit-identical to the direct range sums (binary carries raw f64 bit
/// patterns, so not even JSON's shortest-round-trip decimals intervene).
#[test]
fn binary_tcp_clients_agree_with_direct_range_sums() {
    let (catalog, reference) = reference_catalog();
    let server = Arc::new(Server::new(Arc::clone(&catalog), 64 << 20));
    let handle = dpod_serve::spawn(Arc::clone(&server), "127.0.0.1:0", 4).unwrap();
    let addr = handle.addr();
    let reference = Arc::new(reference);

    let mut joins = Vec::new();
    for (t, name) in ["ny-ebp", "denver-eug", "detroit-daf"]
        .into_iter()
        .enumerate()
    {
        let reference = Arc::clone(&reference);
        joins.push(std::thread::spawn(move || {
            let queries = workload(500, 300 + t as u64);
            let ranges: Vec<(Vec<usize>, Vec<usize>)> = queries
                .iter()
                .map(|q| (q.lo().to_vec(), q.hi().to_vec()))
                .collect();
            let mut client = dpod_serve::wire::Client::connect(addr).unwrap();
            let values = client.batch(name, ranges).unwrap();
            assert_eq!(values.len(), queries.len());
            for (q, got) in queries.iter().zip(&values) {
                let expected = reference[name].range_sum(q);
                assert_eq!(
                    got.to_bits(),
                    expected.to_bits(),
                    "{name} diverged on {q:?}"
                );
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // Per-release hit telemetry saw all three analysts.
    let hits = server.release_hits();
    assert_eq!(hits.len(), 3);
    assert!(hits.iter().all(|h| h.hits == 500), "{hits:?}");
    handle.stop();
}

/// Publishes (and removes) racing incremental `save_dir` calls from many
/// threads must leave a directory that `load_dir` reconstructs to the
/// exact final catalog state: same names, same monotonic versions, same
/// release bytes, no orphaned frames, no leftover temp files.
#[test]
fn racing_publishes_and_incremental_saves_reconstruct_exact_state() {
    use dpod_core::grid::Ebp;
    use dpod_fmatrix::DenseMatrix;

    fn small_release(seed: u64) -> PublishedRelease {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(shape);
        m.add_at(&[(seed % 8) as usize, 2], 100 + seed).unwrap();
        let out = Ebp::default()
            .sanitize(
                &m,
                Epsilon::new(0.5).unwrap(),
                &mut dpod_dp::seeded_rng(seed),
            )
            .unwrap();
        PublishedRelease::from_sanitized(&out)
    }

    let dir = std::env::temp_dir().join(format!("dpod_race_save_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let catalog = Arc::new(dpod_serve::Catalog::new());

    let mut joins = Vec::new();
    // Eight writers, two per name, each publishing then saving — every
    // save races publishes and other saves.
    for t in 0..8u64 {
        let catalog = Arc::clone(&catalog);
        let dir = dir.clone();
        joins.push(std::thread::spawn(move || {
            let name = format!("r{}", t % 4);
            for i in 0..6 {
                catalog.publish(&name, small_release(t * 100 + i));
                catalog.save_dir(&dir).unwrap();
            }
        }));
    }
    // One churner exercising tombstones mid-race, ending removed.
    {
        let catalog = Arc::clone(&catalog);
        let dir = dir.clone();
        joins.push(std::thread::spawn(move || {
            for i in 0..4 {
                catalog.publish("flaky", small_release(900 + i));
                catalog.save_dir(&dir).unwrap();
                catalog.remove("flaky");
                catalog.save_dir(&dir).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // One quiescent save, then reload and compare exactly.
    catalog.save_dir(&dir).unwrap();
    let loaded = dpod_serve::Catalog::load_dir(&dir).unwrap();
    assert_eq!(loaded.names(), catalog.names());
    assert_eq!(loaded.len(), 4);
    for name in catalog.names() {
        let live = catalog.get(&name).unwrap();
        let from_disk = loaded.get(&name).unwrap();
        assert_eq!(from_disk.version, live.version, "{name} version drifted");
        assert_eq!(live.version, 12, "{name}: 2 writers × 6 publishes");
        assert_eq!(*from_disk.release, *live.release, "{name} bytes drifted");
    }
    // Tombstoned name stays gone but keeps its version floor.
    assert!(loaded.get("flaky").is_none());
    assert_eq!(loaded.publish("flaky", small_release(999)), 5);

    // No orphaned frames (exactly one per live release), no temp files.
    let files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|d| d.ok())
        .map(|d| d.file_name().to_string_lossy().into_owned())
        .collect();
    let frames = files.iter().filter(|f| f.ends_with(".dprl")).count();
    let tmps = files.iter().filter(|f| f.ends_with(".tmp")).count();
    assert_eq!(frames, 4, "{files:?}");
    assert_eq!(tmps, 0, "{files:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Catalog persistence composes with serving: save, reload, same answers.
#[test]
fn reloaded_catalog_serves_identical_answers() {
    let (catalog, reference) = reference_catalog();
    let dir = std::env::temp_dir().join(format!("dpod_serve_reload_{}", std::process::id()));
    catalog.save_dir(&dir).unwrap();
    let reloaded = Catalog::load_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let server = Server::new(Arc::new(reloaded), 64 << 20);
    for (name, sanitized) in reference.iter() {
        for q in workload(200, 77) {
            let resp = server.handle(&Request::Query {
                release: name.clone(),
                lo: q.lo().to_vec(),
                hi: q.hi().to_vec(),
            });
            let Response::Value { value } = resp else {
                panic!("{name}: {resp:?}");
            };
            assert_eq!(value, sanitized.range_sum(&q));
        }
    }
}
