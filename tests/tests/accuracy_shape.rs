//! Paper-shape regression tests: the qualitative claims of §6 must hold on
//! reduced-scale versions of the experiments. These are statistical tests
//! over a handful of seeds — loose bounds, tight conclusions.

use dpod_core::{
    baselines::{Identity, Mkm},
    daf::DafEntropy,
    grid::{Ebp, Eug},
    Mechanism,
};
use dpod_data::{City, GaussianConfig};
use dpod_dp::Epsilon;
use dpod_fmatrix::{DenseMatrix, Shape};
use dpod_query::{evaluate, metrics::MreOptions, workload::QueryWorkload};

/// Mean MRE of `mech` over a few seeds on `input`.
fn mean_mre(
    input: &DenseMatrix<u64>,
    mech: &dyn Mechanism,
    eps: f64,
    seeds: std::ops::Range<u64>,
) -> f64 {
    let mut rng = dpod_dp::seeded_rng(1000);
    let queries = QueryWorkload::Random.draw_many(input.shape(), 200, &mut rng);
    let e = Epsilon::new(eps).unwrap();
    let n = (seeds.end - seeds.start) as f64;
    seeds
        .map(|s| {
            let out = mech
                .sanitize(input, e, &mut dpod_dp::seeded_rng(s))
                .unwrap();
            evaluate(input, &out, &queries, MreOptions::default())
                .stats
                .mean
        })
        .sum::<f64>()
        / n
}

/// Skewed 4-D Gaussian input (the regime the paper's Fig. 4 middle row
/// targets).
fn gaussian_4d() -> DenseMatrix<u64> {
    GaussianConfig {
        shape: Shape::cube(4, 18).unwrap(),
        num_points: 120_000,
        var: 4.0,
    }
    .generate(&mut dpod_dp::seeded_rng(5))
}

#[test]
fn adaptive_methods_beat_identity_in_4d() {
    // Fig. 4d-f: on skewed higher-dimensional data the adaptive methods
    // outperform IDENTITY by a wide margin at strict budgets.
    let input = gaussian_4d();
    let id = mean_mre(&input, &Identity, 0.1, 0..4);
    let ebp = mean_mre(&input, &Ebp::default(), 0.1, 0..4);
    let daf = mean_mre(&input, &DafEntropy::default(), 0.1, 0..4);
    assert!(
        ebp < id / 2.0,
        "EBP ({ebp:.1}%) should beat IDENTITY ({id:.1}%) by 2x+"
    );
    assert!(
        daf < id / 2.0,
        "DAF-Entropy ({daf:.1}%) should beat IDENTITY ({id:.1}%) by 2x+"
    );
}

#[test]
fn error_decreases_with_budget() {
    // Every figure: MRE is monotone (statistically) in ε.
    let input = gaussian_4d();
    for mech in [
        Box::new(Ebp::default()) as Box<dyn Mechanism>,
        Box::new(DafEntropy::default()),
        Box::new(Eug::default()),
    ] {
        let strict = mean_mre(&input, mech.as_ref(), 0.1, 0..4);
        let loose = mean_mre(&input, mech.as_ref(), 1.0, 0..4);
        assert!(
            loose < strict,
            "{}: ε=1.0 ({loose:.2}%) must beat ε=0.1 ({strict:.2}%)",
            mech.name()
        );
    }
}

#[test]
fn coarser_queries_are_easier() {
    // Fig. 6: "for all methods, the error decreases when the query range
    // increases". Checked from 5% coverage upwards — below that the MRE
    // denominator floor (DESIGN.md §3.9) dampens the tiny-query errors and
    // the comparison stops being meaningful.
    let mut rng = dpod_dp::seeded_rng(6);
    let input = City::Denver
        .model()
        .population_matrix(256, 150_000, &mut rng);
    let eps = Epsilon::new(0.1).unwrap();
    let out = Ebp::default()
        .sanitize(&input, eps, &mut dpod_dp::seeded_rng(7))
        .unwrap();
    let mut mres = Vec::new();
    for coverage in [0.05, 0.25, 0.40] {
        let queries =
            QueryWorkload::FixedCoverage { coverage }.draw_many(input.shape(), 300, &mut rng);
        mres.push(
            evaluate(&input, &out, &queries, MreOptions::default())
                .stats
                .mean,
        );
    }
    assert!(
        mres[0] > mres[1] && mres[1] > mres[2],
        "error should fall with coverage: {mres:?}"
    );
}

#[test]
fn mkm_overpartitions_relative_to_ebp() {
    // §6.2's diagnosis: MKM's granularity rule mis-sizes the grid, putting
    // it in the baseline tier. Check the released partition counts diverge
    // from EBP's and the error is worse on skewed city data.
    let mut rng = dpod_dp::seeded_rng(8);
    let input = City::NewYork
        .model()
        .population_matrix(128, 80_000, &mut rng);
    let mkm = mean_mre(&input, &Mkm::default(), 0.1, 0..4);
    let ebp = mean_mre(&input, &Ebp::default(), 0.1, 0..4);
    assert!(
        mkm > 3.0 * ebp,
        "MKM ({mkm:.1}%) should trail EBP ({ebp:.1}%) by a wide margin"
    );
}

#[test]
fn daf_advantage_grows_with_dimensionality() {
    // §6.2: "the relative accuracy gain achieved by DAF is observed to
    // increase as the number of dimensions increases" (vs the uniform
    // grids). Compare DAF-Entropy against EUG at d=2 and d=6 with matched
    // skew (σ at ~10% of the domain side). The 6-D case needs enough mass
    // for the adaptive structure to find (paper uses 1M points; 300k keeps
    // the same regime at test speed).
    let ratio = |d: usize, side: usize, points: usize, sf: f64| {
        let input = GaussianConfig {
            shape: Shape::cube(d, side).unwrap(),
            num_points: points,
            var: (side as f64 * sf).powi(2),
        }
        .generate(&mut dpod_dp::seeded_rng(9));
        let eug = mean_mre(&input, &Eug::default(), 0.1, 0..3);
        let daf = mean_mre(&input, &DafEntropy::default(), 0.1, 0..3);
        daf / eug
    };
    let r2 = ratio(2, 316, 100_000, 0.08);
    let r6 = ratio(6, 8, 300_000, 0.10);
    assert!(
        r6 < r2,
        "DAF/EUG error ratio should improve with d: 2D {r2:.2} vs 6D {r6:.2}"
    );
    assert!(r6 < 0.8, "DAF should win clearly in 6D, ratio {r6:.2}");
}
