//! Failure-injection tests: every documented error path across the
//! workspace actually fires, with useful messages and without panics.

use dpod_core::{daf::DafHomogeneity, grid::Eug, Mechanism, MechanismError};
use dpod_dp::{BudgetAccountant, DpError, Epsilon};
use dpod_fmatrix::{AxisBox, DenseMatrix, FmError, Shape};
use dpod_partition::{Partitioning, ValidationError};

#[test]
fn shape_and_box_errors_are_descriptive() {
    let e = Shape::new(vec![]).unwrap_err();
    assert!(e.to_string().contains("at least one dimension"));
    let e = Shape::new(vec![3, 0]).unwrap_err();
    assert!(e.to_string().contains("zero-length"));
    let e = AxisBox::new(vec![5], vec![2]).unwrap_err();
    assert!(e.to_string().contains("lo > hi") || e.to_string().contains("out of domain"));
}

#[test]
fn matrix_access_errors_round_trip_through_display() {
    let m = DenseMatrix::<u64>::zeros(Shape::new(vec![2, 2]).unwrap());
    match m.get(&[2, 0]) {
        Err(FmError::OutOfBounds { coords, dims }) => {
            assert_eq!(coords, vec![2, 0]);
            assert_eq!(dims, vec![2, 2]);
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
    match m.get(&[0]) {
        Err(FmError::DimensionMismatch { expected, got }) => {
            assert_eq!((expected, got), (2, 1));
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
}

#[test]
fn budget_exhaustion_reports_label_and_amounts() {
    let mut acc = BudgetAccountant::new(Epsilon::new(0.2).unwrap());
    acc.spend(0.15, "setup").unwrap();
    match acc.spend(0.1, "too much") {
        Err(DpError::BudgetExhausted {
            requested,
            remaining,
            label,
        }) => {
            assert_eq!(requested, 0.1);
            assert!((remaining - 0.05).abs() < 1e-12);
            assert_eq!(label, "too much");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn mechanism_config_errors_name_the_parameter() {
    let m = DenseMatrix::<u64>::zeros(Shape::new(vec![4, 4]).unwrap());
    let eps = Epsilon::new(1.0).unwrap();
    let mut rng = dpod_dp::seeded_rng(1);

    let bad = Eug {
        eps0_fraction: 2.0,
        ..Eug::default()
    };
    match bad.sanitize(&m, eps, &mut rng) {
        Err(MechanismError::Invalid(msg)) => assert!(msg.contains("eps0_fraction"), "{msg}"),
        other => panic!("expected Invalid, got {:?}", other.map(|_| ())),
    }

    let bad = DafHomogeneity {
        q: -0.5,
        ..DafHomogeneity::default()
    };
    match bad.sanitize(&m, eps, &mut rng) {
        Err(MechanismError::Invalid(msg)) => assert!(msg.contains('q'), "{msg}"),
        other => panic!("expected Invalid, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn partition_validation_errors_identify_the_culprit() {
    let s = Shape::new(vec![4]).unwrap();
    let overlap = Partitioning::new_validated(
        s.clone(),
        vec![
            AxisBox::new(vec![0], vec![3]).unwrap(),
            AxisBox::new(vec![2], vec![4]).unwrap(),
        ],
    );
    match overlap {
        Err(ValidationError::Overlap { first, second }) => {
            assert_eq!((first, second), (0, 1));
        }
        other => panic!("expected Overlap, got {other:?}"),
    }
    let gap = Partitioning::new_validated(s, vec![AxisBox::new(vec![0], vec![2]).unwrap()]);
    match gap {
        Err(ValidationError::IncompleteCover { covered, expected }) => {
            assert_eq!((covered, expected), (2, 4));
        }
        other => panic!("expected IncompleteCover, got {other:?}"),
    }
}

#[test]
fn epsilon_rejections_are_loud_not_silent() {
    for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
        match Epsilon::new(bad) {
            Err(DpError::InvalidEpsilon { value }) => {
                assert!(value.is_nan() || value == bad);
            }
            Ok(_) => panic!("accepted invalid epsilon {bad}"),
            Err(other) => panic!("wrong error for {bad}: {other:?}"),
        }
    }
}

mod serve_protocol {
    //! Adversarial `DPRB` decode and transport tests: every malformed
    //! input must produce a protocol error — never a panic, never a
    //! wedged connection.

    use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
    use dpod_dp::Epsilon;
    use dpod_fmatrix::{DenseMatrix, Shape};
    use dpod_serve::protocol::{Request, Response};
    use dpod_serve::{wire, Catalog, Server};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Duration;

    /// Well under the server's 30 s idle reclaim: "returns an error"
    /// must mean promptly, not eventually.
    const REPLY_TIMEOUT: Duration = Duration::from_secs(5);

    fn spawn_test_server() -> (dpod_serve::ServerHandle, Arc<Server>) {
        let catalog = Catalog::new();
        let shape = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(shape);
        m.add_at(&[3, 3], 250).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(5))
            .unwrap();
        catalog.publish("city", PublishedRelease::from_sanitized(&out));
        let server = Arc::new(Server::new(Arc::new(catalog), 1 << 20));
        let handle = dpod_serve::spawn(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
        (handle, server)
    }

    fn timed(stream: &TcpStream) {
        stream.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
        stream.set_write_timeout(Some(REPLY_TIMEOUT)).unwrap();
    }

    #[test]
    fn truncated_binary_frames_error_without_hanging() {
        let (handle, _server) = spawn_test_server();
        // A frame that promises 100 bytes but delivers 10, then EOF.
        let stream = TcpStream::connect(handle.addr()).unwrap();
        timed(&stream);
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(wire::WIRE_MAGIC).unwrap();
        writer.write_all(&[wire::WIRE_VERSION]).unwrap();
        writer.write_all(&100u32.to_le_bytes()).unwrap();
        writer.write_all(&[0u8; 10]).unwrap();
        writer.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reader = BufReader::new(stream);
        let body = wire::read_frame(&mut reader)
            .expect("server must answer, not hang")
            .expect("server must send an error frame before closing");
        match wire::decode_response(&body) {
            Ok(Response::Error { message }) => assert!(message.contains("protocol"), "{message}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn oversized_declared_length_is_refused() {
        let (handle, _server) = spawn_test_server();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        timed(&stream);
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(wire::WIRE_MAGIC).unwrap();
        writer.write_all(&[wire::WIRE_VERSION]).unwrap();
        // Declares ~4 GiB; the server must refuse up front rather than
        // try to read (or allocate) it.
        writer.write_all(&u32::MAX.to_le_bytes()).unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let body = wire::read_frame(&mut reader).unwrap().unwrap();
        match wire::decode_response(&body) {
            Ok(Response::Error { message }) => {
                assert!(message.contains("exceeds max"), "{message}")
            }
            other => panic!("expected length refusal, got {other:?}"),
        }
        // And the connection is closed, not left half-synced.
        assert!(wire::read_frame(&mut reader).unwrap().is_none());
        handle.stop();
    }

    #[test]
    fn wrong_magic_preambles_get_protocol_errors() {
        let (handle, _server) = spawn_test_server();

        // Right length, wrong bytes ("DPXX"): not the binary magic, so
        // it is served as NDJSON and answered with a JSON error line.
        let stream = TcpStream::connect(handle.addr()).unwrap();
        timed(&stream);
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"DXQQ junk preamble\n").unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");

        // Correct magic, unsupported version: refused in-protocol with a
        // binary error frame.
        let stream = TcpStream::connect(handle.addr()).unwrap();
        timed(&stream);
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(wire::WIRE_MAGIC).unwrap();
        writer.write_all(&[wire::WIRE_VERSION + 7]).unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let body = wire::read_frame(&mut reader).unwrap().unwrap();
        match wire::decode_response(&body) {
            Ok(Response::Error { message }) => {
                assert!(message.contains("version"), "{message}")
            }
            other => panic!("expected version refusal, got {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn degenerate_ranges_error_in_protocol_and_keep_the_connection() {
        let (handle, _server) = spawn_test_server();
        let mut client = wire::Client::connect(handle.addr()).unwrap();
        // Zero-dimension range, lo>hi corner, wrong arity, out of
        // domain: each is a Response::Error, and the connection keeps
        // answering afterwards.
        let degenerate = [
            (vec![], vec![]),
            (vec![5, 5], vec![2, 2]),
            (vec![0], vec![4]),
            (vec![0, 0], vec![9, 9]),
        ];
        for (lo, hi) in degenerate {
            let resp = client
                .request(&Request::Query {
                    release: "city".into(),
                    lo,
                    hi,
                })
                .expect("transport must survive degenerate ranges");
            assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
        }
        // A batch mixing good and bad ranges errors as a unit…
        let resp = client
            .request(&Request::Batch {
                release: "city".into(),
                ranges: vec![(vec![0, 0], vec![2, 2]), (vec![7, 7], vec![1, 1])],
            })
            .unwrap();
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
        // …and the connection still answers valid queries.
        let resp = client
            .request(&Request::Query {
                release: "city".into(),
                lo: vec![0, 0],
                hi: vec![8, 8],
            })
            .unwrap();
        assert!(matches!(resp, Response::Value { .. }), "{resp:?}");
        handle.stop();
    }

    #[test]
    fn garbage_frame_bodies_keep_the_stream_in_sync() {
        let (handle, _server) = spawn_test_server();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        timed(&stream);
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(wire::WIRE_MAGIC).unwrap();
        writer.write_all(&[wire::WIRE_VERSION]).unwrap();
        // A length-correct frame whose body is noise: decodes to an
        // error response, but the frame boundary holds, so a valid
        // frame behind it is answered normally.
        let noise = [0xABu8; 16];
        writer
            .write_all(&(noise.len() as u32).to_le_bytes())
            .unwrap();
        writer.write_all(&noise).unwrap();
        let good = wire::encode_request(&Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![4, 4],
        });
        writer
            .write_all(&(good.len() as u32).to_le_bytes())
            .unwrap();
        writer.write_all(&good).unwrap();
        writer.flush().unwrap();

        let mut reader = BufReader::new(stream);
        let first = wire::read_frame(&mut reader).unwrap().unwrap();
        assert!(matches!(
            wire::decode_response(&first),
            Ok(Response::Error { .. })
        ));
        let second = wire::read_frame(&mut reader).unwrap().unwrap();
        assert!(matches!(
            wire::decode_response(&second),
            Ok(Response::Value { .. })
        ));
        handle.stop();
    }

    #[test]
    fn decode_request_survives_bit_flips() {
        // Header-byte corruption of a real frame: errors, never panics.
        let good = wire::encode_request(&Request::Batch {
            release: "city".into(),
            ranges: vec![(vec![0, 0], vec![4, 4]), (vec![1, 1], vec![2, 2])],
        });
        for i in 0..good.len().min(40) {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            let _ = wire::decode_request(&bad); // must not panic
        }
        for cut in 0..good.len() {
            assert!(wire::decode_request(&good[..cut]).is_err(), "cut {cut}");
        }
        assert!(wire::decode_request(&[]).is_err());
    }

    #[test]
    fn slow_preamble_still_selects_binary() {
        // The magic arriving one byte at a time must not confuse the
        // sniffer into the JSON path.
        let (handle, _server) = spawn_test_server();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        timed(&stream);
        let mut writer = stream.try_clone().unwrap();
        for b in wire::WIRE_MAGIC.iter().chain(&[wire::WIRE_VERSION]) {
            writer.write_all(&[*b]).unwrap();
            writer.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        let body = wire::encode_request(&Request::List);
        writer
            .write_all(&(body.len() as u32).to_le_bytes())
            .unwrap();
        writer.write_all(&body).unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let resp = wire::read_frame(&mut reader).unwrap().unwrap();
        assert!(matches!(
            wire::decode_response(&resp),
            Ok(Response::Releases { .. })
        ));
        handle.stop();
    }

    #[test]
    fn short_garbage_lines_are_still_answered_as_json() {
        // A sub-4-byte first line must not stall the encoding sniff.
        let (handle, _server) = spawn_test_server();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        timed(&stream);
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"{}\n").unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
        handle.stop();
    }
}

#[test]
fn codec_rejects_every_tampering_mode() {
    let m = DenseMatrix::<u64>::zeros(Shape::new(vec![2, 2]).unwrap());
    let good = dpod_fmatrix::codec::encode_u64(&m).to_vec();
    // Flip one byte anywhere in the header: must error, never panic.
    for i in 0..8 {
        let mut bad = good.clone();
        bad[i] ^= 0xFF;
        let _ = dpod_fmatrix::codec::decode_u64(&bad); // no panic
    }
    assert!(dpod_fmatrix::codec::decode_u64(&[]).is_err());
}
