//! Failure-injection tests: every documented error path across the
//! workspace actually fires, with useful messages and without panics.

use dpod_core::{daf::DafHomogeneity, grid::Eug, Mechanism, MechanismError};
use dpod_dp::{BudgetAccountant, DpError, Epsilon};
use dpod_fmatrix::{AxisBox, DenseMatrix, FmError, Shape};
use dpod_partition::{Partitioning, ValidationError};

#[test]
fn shape_and_box_errors_are_descriptive() {
    let e = Shape::new(vec![]).unwrap_err();
    assert!(e.to_string().contains("at least one dimension"));
    let e = Shape::new(vec![3, 0]).unwrap_err();
    assert!(e.to_string().contains("zero-length"));
    let e = AxisBox::new(vec![5], vec![2]).unwrap_err();
    assert!(e.to_string().contains("lo > hi") || e.to_string().contains("out of domain"));
}

#[test]
fn matrix_access_errors_round_trip_through_display() {
    let m = DenseMatrix::<u64>::zeros(Shape::new(vec![2, 2]).unwrap());
    match m.get(&[2, 0]) {
        Err(FmError::OutOfBounds { coords, dims }) => {
            assert_eq!(coords, vec![2, 0]);
            assert_eq!(dims, vec![2, 2]);
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
    match m.get(&[0]) {
        Err(FmError::DimensionMismatch { expected, got }) => {
            assert_eq!((expected, got), (2, 1));
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
}

#[test]
fn budget_exhaustion_reports_label_and_amounts() {
    let mut acc = BudgetAccountant::new(Epsilon::new(0.2).unwrap());
    acc.spend(0.15, "setup").unwrap();
    match acc.spend(0.1, "too much") {
        Err(DpError::BudgetExhausted {
            requested,
            remaining,
            label,
        }) => {
            assert_eq!(requested, 0.1);
            assert!((remaining - 0.05).abs() < 1e-12);
            assert_eq!(label, "too much");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn mechanism_config_errors_name_the_parameter() {
    let m = DenseMatrix::<u64>::zeros(Shape::new(vec![4, 4]).unwrap());
    let eps = Epsilon::new(1.0).unwrap();
    let mut rng = dpod_dp::seeded_rng(1);

    let bad = Eug {
        eps0_fraction: 2.0,
        ..Eug::default()
    };
    match bad.sanitize(&m, eps, &mut rng) {
        Err(MechanismError::Invalid(msg)) => assert!(msg.contains("eps0_fraction"), "{msg}"),
        other => panic!("expected Invalid, got {:?}", other.map(|_| ())),
    }

    let bad = DafHomogeneity {
        q: -0.5,
        ..DafHomogeneity::default()
    };
    match bad.sanitize(&m, eps, &mut rng) {
        Err(MechanismError::Invalid(msg)) => assert!(msg.contains('q'), "{msg}"),
        other => panic!("expected Invalid, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn partition_validation_errors_identify_the_culprit() {
    let s = Shape::new(vec![4]).unwrap();
    let overlap = Partitioning::new_validated(
        s.clone(),
        vec![
            AxisBox::new(vec![0], vec![3]).unwrap(),
            AxisBox::new(vec![2], vec![4]).unwrap(),
        ],
    );
    match overlap {
        Err(ValidationError::Overlap { first, second }) => {
            assert_eq!((first, second), (0, 1));
        }
        other => panic!("expected Overlap, got {other:?}"),
    }
    let gap = Partitioning::new_validated(s, vec![AxisBox::new(vec![0], vec![2]).unwrap()]);
    match gap {
        Err(ValidationError::IncompleteCover { covered, expected }) => {
            assert_eq!((covered, expected), (2, 4));
        }
        other => panic!("expected IncompleteCover, got {other:?}"),
    }
}

#[test]
fn epsilon_rejections_are_loud_not_silent() {
    for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
        match Epsilon::new(bad) {
            Err(DpError::InvalidEpsilon { value }) => {
                assert!(value.is_nan() || value == bad);
            }
            Ok(_) => panic!("accepted invalid epsilon {bad}"),
            Err(other) => panic!("wrong error for {bad}: {other:?}"),
        }
    }
}

#[test]
fn codec_rejects_every_tampering_mode() {
    let m = DenseMatrix::<u64>::zeros(Shape::new(vec![2, 2]).unwrap());
    let good = dpod_fmatrix::codec::encode_u64(&m).to_vec();
    // Flip one byte anywhere in the header: must error, never panic.
    for i in 0..8 {
        let mut bad = good.clone();
        bad[i] ^= 0xFF;
        let _ = dpod_fmatrix::codec::decode_u64(&bad); // no panic
    }
    assert!(dpod_fmatrix::codec::decode_u64(&[]).is_err());
}
