//! End-to-end pipeline tests: city model → trajectories → OD matrix →
//! sanitization → query evaluation, across every mechanism.

use dpod_core::{all_mechanisms, paper_suite, PartitionSummary};
use dpod_data::{City, OdMatrixBuilder, TrajectoryConfig};
use dpod_dp::Epsilon;
use dpod_query::{evaluate, metrics::MreOptions, workload::QueryWorkload};

fn od_input(stops: usize, cells: usize, trips: usize) -> dpod_fmatrix::DenseMatrix<u64> {
    let city = City::NewYork.model();
    let mut rng = dpod_dp::seeded_rng(11);
    let trajectories = TrajectoryConfig::with_stops(stops).generate(&city, trips, &mut rng);
    OdMatrixBuilder::new(cells)
        .build_dense(&trajectories, stops)
        .expect("domain fits")
}

#[test]
fn full_pipeline_4d_od_all_mechanisms() {
    let input = od_input(0, 8, 20_000);
    assert_eq!(input.ndim(), 4);
    let eps = Epsilon::new(0.5).unwrap();
    let mut rng = dpod_dp::seeded_rng(1);
    let queries = QueryWorkload::Random.draw_many(input.shape(), 120, &mut rng);
    for mech in all_mechanisms() {
        let out = mech
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(2))
            .unwrap_or_else(|e| panic!("{}: {e}", mech.name()));
        let report = evaluate(&input, &out, &queries, MreOptions::default());
        assert!(
            report.stats.mean.is_finite(),
            "{} produced non-finite MRE",
            mech.name()
        );
        if let PartitionSummary::Boxes { partitioning, .. } = out.summary() {
            partitioning
                .validate()
                .unwrap_or_else(|e| panic!("{}: invalid partitioning: {e}", mech.name()));
        }
    }
}

#[test]
fn six_dimensional_od_with_stop_is_supported() {
    let input = od_input(1, 5, 10_000);
    assert_eq!(input.ndim(), 6);
    let eps = Epsilon::new(0.3).unwrap();
    for mech in paper_suite() {
        let out = mech
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(3))
            .unwrap_or_else(|e| panic!("{}: {e}", mech.name()));
        assert!((out.total() - 10_000.0).abs() < 10_000.0, "{}", mech.name());
    }
}

#[test]
fn trip_mass_is_preserved_through_the_pipeline() {
    let input = od_input(0, 10, 15_000);
    assert_eq!(input.total_u64(), 15_000);
    // At a generous budget, every mechanism's total tracks the input.
    let eps = Epsilon::new(5.0).unwrap();
    for mech in paper_suite() {
        let out = mech
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(4))
            .unwrap();
        let rel = (out.total() - 15_000.0).abs() / 15_000.0;
        assert!(
            rel < 0.25,
            "{}: total off by {:.1}%",
            mech.name(),
            rel * 100.0
        );
    }
}

#[test]
fn clustered_fixture_is_skewed() {
    // The shared helper used across the integration suite behaves as
    // documented: most mass in the corner cluster.
    let m = dpod_integration::clustered_fixture(32, 100);
    let corner = dpod_fmatrix::AxisBox::new(vec![0, 0], vec![8, 8]).unwrap();
    let p = dpod_fmatrix::PrefixSum::from_counts(&m);
    assert!(p.box_count(&corner) as f64 > 0.9 * m.total());
}
