//! Integration of the publication workflow extensions: release artifacts,
//! marginalization post-processing, OD query builders and the binary
//! matrix codec — the pieces a downstream deployment actually chains
//! together.

use dpod_core::{daf::DafEntropy, Mechanism, PublishedRelease};
use dpod_data::{City, OdMatrixBuilder, TrajectoryConfig};
use dpod_dp::Epsilon;
use dpod_fmatrix::codec;
use dpod_query::{OdQuery, Region};

fn private_od() -> (dpod_fmatrix::DenseMatrix<u64>, dpod_core::SanitizedMatrix) {
    let city = City::NewYork.model();
    let mut rng = dpod_dp::seeded_rng(5);
    let trips = TrajectoryConfig::with_stops(0).generate(&city, 20_000, &mut rng);
    let od = OdMatrixBuilder::new(12).build_dense(&trips, 0).unwrap();
    let out = DafEntropy::default()
        .sanitize(&od, Epsilon::new(0.5).unwrap(), &mut rng)
        .unwrap();
    (od, out)
}

#[test]
fn artifact_survives_serialization_and_answers_od_queries() {
    let (od, out) = private_od();
    // Curator → wire → analyst.
    let artifact = PublishedRelease::from_sanitized(&out);
    let json = serde_json::to_string(&artifact).unwrap();
    let loaded: PublishedRelease = serde_json::from_str(&json).unwrap();
    let analyst_view = loaded.into_sanitized().unwrap();

    // A structured OD query through the builder.
    let q = OdQuery::new(od.shape())
        .unwrap()
        .origin(Region::new((0, 0), (6, 6)))
        .destination(Region::new((6, 6), (12, 12)))
        .build()
        .unwrap();
    let estimate = analyst_view.range_sum(&q);
    let truth = dpod_fmatrix::PrefixSum::from_counts(&od).box_count(&q) as f64;
    assert!(estimate.is_finite());
    // ε=0.5 over 20k trips: estimate in the right ballpark.
    assert!(
        (estimate - truth).abs() < 0.5 * truth.max(500.0),
        "estimate {estimate} vs truth {truth}"
    );
    // The artifact must answer identically to the curator's local view.
    assert_eq!(estimate, out.range_sum(&q));
}

#[test]
fn marginals_of_the_release_match_marginal_queries() {
    let (od, out) = private_od();
    // Origin-density marginal of the *sanitized* matrix (post-processing).
    let origin_density = out.matrix().marginalize(&[0, 1]).unwrap();
    assert_eq!(origin_density.shape().dims(), &[12, 12]);
    // It must agree with querying the release leg-wise.
    for (x, y) in [(0usize, 0usize), (5, 7), (11, 11)] {
        let q = OdQuery::new(od.shape())
            .unwrap()
            .origin(Region::new((x, y), (x + 1, y + 1)))
            .build()
            .unwrap();
        let via_query = out.range_sum(&q);
        let via_marginal = origin_density.get(&[x, y]).unwrap();
        assert!(
            (via_query - via_marginal).abs() < 1e-6 * (1.0 + via_query.abs()),
            "cell ({x},{y}): {via_query} vs {via_marginal}"
        );
    }
    // Mass conservation through marginalization.
    assert!((origin_density.total() - out.total()).abs() < 1e-6 * out.total().abs().max(1.0));
}

#[test]
fn binary_codec_round_trips_the_released_matrix() {
    let (_, out) = private_od();
    let bytes = codec::encode_f64(out.matrix());
    // The binary frame is dramatically smaller than pretty JSON of the
    // same dense matrix would be, and bit-exact.
    let back = codec::decode_f64(&bytes).unwrap();
    assert_eq!(back.as_slice(), out.matrix().as_slice());
    assert_eq!(bytes.len(), 8 + 4 * 8 + out.matrix().len() * 8);
}

#[test]
fn raw_counts_round_trip_through_codec_too() {
    let (od, _) = private_od();
    let bytes = codec::encode_u64(&od);
    let back = codec::decode_u64(&bytes).unwrap();
    assert_eq!(back, od);
}
