//! Differential-privacy invariants checked end-to-end:
//!
//! * empirical e^ε bound on the released outputs of the single-release
//!   mechanisms for neighbouring inputs;
//! * budget telescoping for the hierarchical mechanisms;
//! * determinism and seed-isolation of the full pipeline.

use dpod_core::{
    baselines::Uniform,
    daf::{DafEntropy, DafHomogeneity},
    Mechanism,
};
use dpod_dp::Epsilon;
use dpod_fmatrix::{DenseMatrix, Shape};

/// Empirical DP check on UNIFORM (a single Laplace release): histogram the
/// released total over many runs for neighbouring inputs and bound the
/// bucket ratios by e^ε with sampling slack. A tripwire for budget
/// mis-accounting anywhere in the mechanism plumbing.
#[test]
fn uniform_release_respects_epsilon_bound() {
    let shape = Shape::new(vec![4, 4]).unwrap();
    let mut base = DenseMatrix::<u64>::zeros(shape.clone());
    base.set(&[1, 1], 20).unwrap();
    let mut neighbour = base.clone();
    neighbour.add_at(&[1, 1], 1).unwrap(); // one extra individual

    let eps_value = 1.0;
    let eps = Epsilon::new(eps_value).unwrap();
    let runs = 60_000;
    let histogram = |input: &DenseMatrix<u64>, salt: u64| {
        let mut buckets = vec![0u32; 32];
        for s in 0..runs {
            let out = Uniform
                .sanitize(input, eps, &mut dpod_dp::seeded_rng(salt * 1_000_003 + s))
                .unwrap();
            let v = out.total();
            let b = (((v - 12.0) / 0.5) as isize).clamp(0, 31) as usize;
            buckets[b] += 1;
        }
        buckets
    };
    let h0 = histogram(&base, 1);
    let h1 = histogram(&neighbour, 2);
    let bound = eps_value.exp() * 1.25; // sampling slack
    for (i, (&a, &b)) in h0.iter().zip(&h1).enumerate() {
        if a < 400 || b < 400 {
            continue;
        }
        let ratio = a as f64 / b as f64;
        assert!(
            ratio < bound && 1.0 / ratio < bound,
            "bucket {i}: ratio {ratio:.3} exceeds e^ε bound {bound:.3}"
        );
    }
}

/// The DAF mechanisms must spend exactly ε_tot along every root→leaf path
/// and never exceed it anywhere — on data of any shape.
#[test]
fn daf_budget_telescopes_on_assorted_inputs() {
    let inputs = [
        dpod_integration::clustered_fixture(24, 50),
        DenseMatrix::<u64>::zeros(Shape::new(vec![9, 7, 5]).unwrap()),
        DenseMatrix::from_vec(Shape::new(vec![6, 6]).unwrap(), vec![1_000; 36]).unwrap(),
    ];
    for (i, input) in inputs.iter().enumerate() {
        for eps_value in [0.1, 0.5, 2.0] {
            let eps = Epsilon::new(eps_value).unwrap();
            let (_, tree) = DafEntropy::default()
                .sanitize_with_tree(input, eps, &mut dpod_dp::seeded_rng(i as u64))
                .unwrap();
            tree.visit(&mut |n| {
                assert!(
                    n.payload.acc_after <= eps_value + 1e-9,
                    "input {i}: node exceeded budget"
                );
                if n.is_leaf() {
                    assert!(
                        (n.payload.acc_after - eps_value).abs() < 1e-9,
                        "input {i}: leaf left budget unspent"
                    );
                }
            });
            let (_, tree_h) = DafHomogeneity::default()
                .sanitize_with_tree(input, eps, &mut dpod_dp::seeded_rng(i as u64))
                .unwrap();
            tree_h.visit(&mut |n| {
                assert!(n.payload.acc_after <= eps_value + 1e-9);
            });
        }
    }
}

/// Seed isolation: different seeds give different releases (no hidden
/// global RNG), same seeds identical ones — across the whole pipeline.
#[test]
fn releases_are_seed_isolated() {
    let input = dpod_integration::clustered_fixture(16, 40);
    let eps = Epsilon::new(0.4).unwrap();
    for mech in dpod_core::paper_suite() {
        let a = mech
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(100))
            .unwrap();
        let b = mech
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(100))
            .unwrap();
        let c = mech
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(101))
            .unwrap();
        assert_eq!(
            a.matrix().as_slice(),
            b.matrix().as_slice(),
            "{}: same seed must reproduce",
            mech.name()
        );
        assert_ne!(
            a.matrix().as_slice(),
            c.matrix().as_slice(),
            "{}: different seeds must differ",
            mech.name()
        );
    }
}

/// The sanitized output never exposes the raw counts: even at tiny noise
/// scales the released entries are (almost surely) not exactly the input.
#[test]
fn released_entries_are_perturbed() {
    let input = dpod_integration::clustered_fixture(16, 40);
    let eps = Epsilon::new(0.1).unwrap();
    for mech in dpod_core::paper_suite() {
        let out = mech
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(7))
            .unwrap();
        let identical = input
            .as_slice()
            .iter()
            .zip(out.matrix().as_slice())
            .filter(|(&t, &r)| t as f64 == r)
            .count();
        assert!(
            identical < input.len() / 2,
            "{}: {} of {} entries released exactly",
            mech.name(),
            identical,
            input.len()
        );
    }
}
