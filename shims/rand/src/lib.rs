//! Minimal, API-compatible stand-in for the parts of `rand` 0.8 used by
//! the `dp-odmatrix` workspace: [`RngCore`], [`Rng::gen`],
//! [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`]
//! and [`thread_rng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — not bit-compatible with upstream `StdRng`, but a
//! high-quality 64-bit PRNG, which is all the workspace requires
//! (determinism comes from seeding, not from a specific stream).

pub mod rngs;

/// The core source-of-randomness trait (object-safe).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types drawable uniformly from their "natural" distribution (the shim's
/// equivalent of sampling from `rand::distributions::Standard`; floats are
/// uniform in `[0, 1)`).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience extension over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seed material (only the `u64` entry point is
/// provided; it is the sole constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A non-cryptographic thread-local-style RNG seeded from the system clock.
#[derive(Debug, Clone)]
pub struct ThreadRng(rngs::StdRng);

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Returns a fresh, time-seeded generator (distinct per call).
pub fn thread_rng() -> ThreadRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e37_79b9_7f4a_7c15);
    let tid = std::thread::current().id();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    use std::hash::{Hash, Hasher};
    tid.hash(&mut h);
    ThreadRng(rngs::StdRng::seed_from_u64(nanos ^ h.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut r = rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
        }
    }

    #[test]
    fn mean_of_unit_floats_is_centred() {
        let mut r = rngs::StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut r = rngs::StdRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let x: f64 = dyn_rng.gen();
        assert!(x.is_finite());
        let mut buf = [0u8; 16];
        dyn_rng.fill_bytes(&mut buf);
    }
}
