//! Offline stand-in for the `bytes` crate: [`Bytes`], [`BytesMut`] and the
//! little-endian [`Buf`]/[`BufMut`] accessors the workspace codecs use.
//! Backed by plain `Vec<u8>`; no ref-counted slicing.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Wraps an owned buffer without copying.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read-side cursor operations over a shrinking byte slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"hdr");
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 3 + 1 + 2 + 8);
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }
}
