//! Offline stand-in for `parking_lot`: the same non-poisoning `lock()`
//! signatures, backed by `std::sync`. A poisoned std lock (a panic while
//! held) is recovered by taking the inner value, matching parking_lot's
//! poison-free semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_survives_poisoning_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
