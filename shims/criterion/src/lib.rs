//! Offline stand-in for `criterion`: the `criterion_group!` /
//! `criterion_main!` macros, benchmark groups, [`Bencher::iter`] timing
//! and element throughput reporting. Measurement is a simple calibrated
//! wall-clock loop (warm-up, then timed batches) — adequate for the
//! workspace's trajectory tracking, without criterion's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up time before measurement.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// The top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into().0, None, &mut f);
        self
    }
}

/// A named benchmark group (throughput/sample settings are group-scoped).
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op: the shim sizes samples by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Compatibility no-op: the shim uses a fixed time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration element count for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into().0, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into().0, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Iteration-count basis for throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the closure; drives the timing loop.
pub struct Bencher {
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warm_iters += 1;
        }
        // Calibrate batch size from warm-up speed so each timed batch is
        // coarse enough for the clock.
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((10_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);
        let mut total_iters: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                black_box(f());
            }
            total_iters += batch;
        }
        let nanos = measure_start.elapsed().as_nanos() as f64;
        self.result = Some(Sample {
            nanos_per_iter: nanos / total_iters.max(1) as f64,
        });
    }
}

fn run_benchmark(
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher { result: None };
    f(&mut b);
    match b.result {
        Some(sample) => {
            let mut line = format!("{label}: {:.1} ns/iter", sample.nanos_per_iter);
            if let Some(t) = throughput {
                let (count, unit) = match t {
                    Throughput::Elements(n) => (n, "elem"),
                    Throughput::Bytes(n) => (n, "B"),
                };
                let per_sec = count as f64 * 1e9 / sample.nanos_per_iter;
                line.push_str(&format!(" ({:.3e} {unit}/s)", per_sec));
            }
            println!("{line}");
        }
        None => println!("{label}: no measurement (closure never called iter)"),
    }
}

/// Groups benchmark functions into one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (skipped under `--test`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` may execute bench binaries with `--test`;
            // mirror criterion's behaviour of exiting immediately.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_positive_timing() {
        let mut b = Bencher { result: None };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.result.unwrap().nanos_per_iter > 0.0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::new("mul", 4), |b| {
            b.iter(|| black_box(2u64) * 2)
        });
        group.bench_with_input(BenchmarkId::from_parameter("in"), &5u64, |b, &x| {
            b.iter(|| black_box(x) + 1)
        });
        group.finish();
    }
}
