//! Offline stand-in for `serde_json`: compact/pretty printing and strict
//! parsing of the shim's `Content` tree. Floats print in Rust's shortest
//! round-trip form (what upstream's `ryu` also guarantees); parsing
//! classifies numbers as unsigned, signed or float exactly like upstream.

use serde::{Content, Deserialize, Serialize};

/// JSON encode/decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Crate result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON.
///
/// # Errors
/// [`Error`] when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
///
/// # Errors
/// [`Error`] when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
/// [`Error`] describing the first syntax or structure mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let content = parse(text)?;
    T::from_content(&content).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, level: usize) -> Result<()> {
    use std::fmt::Write;
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        // `write!` formats straight into the output; `to_string` per
        // number would allocate once per element, which dominates the
        // serialization of large numeric arrays (marginal tables, batch
        // answers) on the serving hot path.
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => write_f64(*v, out)?,
        Content::Str(s) => write_string(s, out),
        Content::F64Seq(vs) => {
            out.push('[');
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, level + 1);
                write_f64(*v, out)?;
            }
            if !vs.is_empty() {
                write_sep(out, indent, level);
            }
            out.push(']');
        }
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, level + 1);
                write_content(item, out, indent, level + 1)?;
            }
            if !items.is_empty() {
                write_sep(out, indent, level);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1)?;
            }
            if !entries.is_empty() {
                write_sep(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_f64(v: f64, out: &mut String) -> Result<()> {
    use std::fmt::Write;
    if !v.is_finite() {
        return Err(Error(format!("cannot serialize non-finite float {v}")));
    }
    // Integral fast path: values with no fractional part below 1e16 —
    // where `{:?}` still prints plain decimal and an i64 cast is exact —
    // format as `<int>.0` via the integer formatter, skipping the
    // general shortest-float search. Byte-identical to `{v:?}` (pinned
    // by sweep test below); marginal tables over count data are
    // dominated by such values.
    if v.fract() == 0.0 && v.abs() < 1e16 {
        if v == 0.0 && v.is_sign_negative() {
            out.push_str("-0.0");
        } else {
            let _ = write!(out, "{}.0", v as i64);
        }
    } else {
        // `{:?}` is Rust's shortest round-trip float form; it always
        // contains '.' or 'e', so it re-parses as a float.
        let _ = write!(out, "{v:?}");
    }
    Ok(())
}

fn write_sep(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    // Fast path: strings with nothing to escape (the overwhelmingly
    // common case for enum tags and field names) copy in one shot.
    if s.bytes().all(|b| b != b'"' && b != b'\\' && b >= 0x20) {
        out.push_str(s);
        out.push('"');
        return;
    }
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting (matches upstream serde_json's default);
/// prevents stack overflow on adversarial documents.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

fn parse(text: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error(format!("nesting exceeds {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Content::Str(self.string()?)),
            b't' => self.literal("true", Content::Bool(true)),
            b'f' => self.literal("false", Content::Bool(false)),
            b'n' => self.literal("null", Content::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character '{}' at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}', found '{}' at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        self.enter()?;
        if self.peek()? == b']' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Content::Seq(Vec::new()));
        }
        // Dense float arrays (answer vectors, marginal tables) are the
        // hot shape on the serving path: accumulate raw f64s and pack
        // them as one `F64Seq` so each element costs a word, not a tree
        // node. The first non-float element demotes the collected
        // prefix to the generic `Seq` tree.
        match self.value()? {
            Content::F64(first) => self.float_array_tail(first),
            first => self.array_tail(vec![first]),
        }
    }

    /// Continues a `[`-opened array whose elements so far are `items`
    /// (positioned right after an element, before its separator).
    fn array_tail(&mut self, mut items: Vec<Content>) -> Result<Content> {
        loop {
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']', found '{}' at offset {}",
                        other as char, self.pos
                    )))
                }
            }
            items.push(self.value()?);
        }
    }

    /// All-float continuation of [`Parser::array`].
    fn float_array_tail(&mut self, first: f64) -> Result<Content> {
        if let Some(content) = self.try_float_array_sweep(first) {
            self.depth -= 1;
            return Ok(content);
        }
        let mut floats = vec![first];
        loop {
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::F64Seq(floats));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']', found '{}' at offset {}",
                        other as char, self.pos
                    )))
                }
            }
            if let Some(v) = self.try_float_element() {
                floats.push(v);
                continue;
            }
            match self.value()? {
                Content::F64(v) => floats.push(v),
                other => {
                    let mut items: Vec<Content> = floats.into_iter().map(Content::F64).collect();
                    items.push(other);
                    return self.array_tail(items);
                }
            }
        }
    }

    /// Whole-array sweep for the dense-float hot shape. A plain-float
    /// array contains no `]` before its terminator, so one search finds
    /// the end and the body splits on commas into elements — no
    /// per-element position bookkeeping. Entered right after the first
    /// element, before its separator. Any surprise in the body
    /// (integer, string, nested value, malformed piece) returns `None`
    /// without consuming input and the per-element path takes over.
    fn try_float_array_sweep(&mut self, first: f64) -> Option<Content> {
        let rest = &self.bytes[self.pos..];
        let end = rest.iter().position(|&b| b == b']')?;
        // The search stopped on ASCII, so the slice is valid UTF-8
        // whenever the document is; non-UTF-8 only reaches the generic
        // path's error reporting.
        let body = std::str::from_utf8(&rest[..end]).ok()?;
        let mut floats = Vec::with_capacity(1 + body.len() / 8);
        floats.push(first);
        for (i, piece) in body.split(',').enumerate() {
            let text = piece.trim_matches([' ', '\t', '\n', '\r']);
            if i == 0 {
                // Whitespace between the already-parsed first element
                // and its separator (or the closing bracket).
                if text.is_empty() {
                    continue;
                }
                return None;
            }
            let lead = *text.as_bytes().first()?;
            if lead != b'-' && !lead.is_ascii_digit() {
                return None;
            }
            // Integers must stay integers in the generic tree.
            if !text.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
                return None;
            }
            floats.push(text.parse::<f64>().ok()?);
        }
        self.pos += end + 1;
        Some(Content::F64Seq(floats))
    }

    /// Fused scan of one plain-float array element: locate its end (the
    /// next `,` or `]` — a number contains neither), then let
    /// `f64::from_str` do all validation in one pass over the slice.
    /// Returns `None` without consuming input when the element is
    /// anything else (integer, string, nested value, malformed) so the
    /// caller can fall back to the generic tree path, which also owns
    /// error reporting.
    fn try_float_element(&mut self) -> Option<f64> {
        self.skip_ws();
        let first = *self.bytes.get(self.pos)?;
        if first != b'-' && !first.is_ascii_digit() {
            return None;
        }
        let rest = &self.bytes[self.pos..];
        let len = rest.iter().position(|&b| b == b',' || b == b']')?;
        // The delimiter search stopped on ASCII, so the slice is valid
        // UTF-8 whenever the document is; non-UTF-8 only reaches the
        // generic path's error reporting.
        let text = std::str::from_utf8(&rest[..len])
            .ok()?
            .trim_end_matches([' ', '\t', '\n', '\r']);
        // Integers must stay integers in the generic tree.
        if !text.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
            return None;
        }
        let v = text.parse::<f64>().ok()?;
        self.pos += len;
        Some(v)
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        // Fast path: scan to the closing quote; an escape-free string
        // (keys, enum tags, most values) converts in one UTF-8 check
        // instead of byte-at-a-time pushes.
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => break,
                _ => self.pos += 1,
            }
        }
        self.pos = start;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs are not produced by this
                            // writer; reject rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| Error("invalid \\u code point".into()))?;
                            out.push(ch);
                        }
                        other => {
                            return Err(Error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8 sequence".into()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| Error(format!("invalid number '{text}'")))?;
            Ok(Content::F64(v))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let v: i64 = stripped
                .parse::<i64>()
                .map(|v| -v)
                .map_err(|_| Error(format!("invalid number '{text}'")))?;
            Ok(Content::I64(v))
        } else {
            let v: u64 = text
                .parse()
                .map_err(|_| Error(format!("invalid number '{text}'")))?;
            Ok(Content::U64(v))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
    }

    #[test]
    fn float_precision_survives() {
        for v in [0.1, 1.0 / 3.0, 9e99, -0.000123, f64::MIN_POSITIVE] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    /// The integral fast path must be byte-identical to `{:?}` across
    /// its whole gate: zeros of both signs, small and large magnitudes,
    /// the 2^53 exactness boundary, and just-outside values that take
    /// the general path.
    #[test]
    fn integral_fast_path_matches_debug_formatting() {
        let mut cases: Vec<f64> = vec![0.0, -0.0, 1.0, -1.0, 400.0, -512.0];
        for exp in 0..=15 {
            let p = 10f64.powi(exp);
            cases.extend([p, -p, p - 1.0, p + 1.0]);
        }
        cases.extend([
            9007199254740992.0, // 2^53
            9007199254740994.0, // 2^53 + 2 (next representable)
            9999999999999998.0, // largest even integral below 1e16
            1e16,               // general path: Debug switches to 1e16
            1e17,
            0.5,
            -2.25,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
        ]);
        for v in cases {
            assert_eq!(to_string(&v).unwrap(), format!("{v:?}"), "{v}");
        }
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1.5f64, 2.5f64), (3.0, -4.0)];
        let text = to_string(&v).unwrap();
        let back: Vec<(f64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"slash\\tab\tunicode\u{263A}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = vec![vec![1u64, 2], vec![3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(200_000);
        let err = from_str::<Vec<u64>>(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Reasonable nesting still parses.
        let back: Vec<Vec<Vec<u64>>> = from_str("[[[1],[2]],[[3]]]").unwrap();
        assert_eq!(back, vec![vec![vec![1], vec![2]], vec![vec![3]]]);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<bool>("trueish").is_err());
    }
}
