//! Derive macros for the offline `serde` shim.
//!
//! A hand-rolled token-tree parser (no `syn`/`quote`, which are
//! unavailable offline) covering the item shapes this workspace derives
//! on: named-field structs (optionally generic), tuple/newtype structs
//! (optionally `#[serde(transparent)]`), and enums with unit, newtype,
//! tuple and struct variants using serde's external tagging. Generated
//! code targets the shim's `Content` tree; JSON behaviour matches
//! upstream `serde_json` for these shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Mode::Ser)
        .parse()
        .expect("derive emitted invalid Rust")
}

/// Derives the shim `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Mode::De)
        .parse()
        .expect("derive emitted invalid Rust")
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Item {
    name: String,
    /// Declaration generics, e.g. `<T: Element>` (empty when non-generic).
    generics_decl: String,
    /// Use-site generics, e.g. `<T>`.
    generics_use: String,
    /// Bare type-parameter names.
    type_params: Vec<String>,
    /// Original `where` predicates (without the keyword), may be empty.
    where_preds: String,
    kind: Kind,
}

enum Kind {
    Struct(Vec<String>),
    TupleStruct(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

/// Advances past any `#[...]` attributes (outer form only).
fn skip_attributes(toks: &[TokenTree], mut i: usize) -> usize {
    while is_punct(toks.get(i), '#') {
        match toks.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
            _ => break,
        }
    }
    i
}

/// Advances past `pub` / `pub(...)`.
fn skip_visibility(toks: &[TokenTree], mut i: usize) -> usize {
    if is_ident(toks.get(i), "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&toks, 0);
    i = skip_visibility(&toks, i);

    let is_enum = match toks.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => panic!("derive expects struct or enum, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;

    // Generics: capture the declaration verbatim and the bare param names.
    let mut generics_decl = String::new();
    let mut type_params = Vec::new();
    if is_punct(toks.get(i), '<') {
        let mut depth = 0usize;
        let mut expect_param = true;
        loop {
            let t = toks
                .get(i)
                .unwrap_or_else(|| panic!("unterminated generics on {name}"));
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    let s = id.to_string();
                    if s != "const" {
                        type_params.push(s);
                    }
                    expect_param = false;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                    // Lifetime parameter: leave it out of the Serialize
                    // bounds but keep it in the decl text.
                    expect_param = false;
                }
                _ => {}
            }
            generics_decl.push_str(&t.to_string());
            generics_decl.push(' ');
            i += 1;
            if depth == 0 {
                break;
            }
        }
    }
    let generics_use = if type_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", type_params.join(", "))
    };

    // Optional where clause (kept verbatim, minus the keyword).
    let mut where_preds = String::new();
    if is_ident(toks.get(i), "where") {
        i += 1;
        while let Some(t) = toks.get(i) {
            let body_next = matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
                || matches!(t, TokenTree::Punct(p) if p.as_char() == ';');
            if body_next {
                break;
            }
            where_preds.push_str(&t.to_string());
            where_preds.push(' ');
            i += 1;
        }
    }

    let kind = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Kind::Enum(parse_variants(g.stream()))
            } else {
                Kind::Struct(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::TupleStruct(count_top_level_segments(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
        other => panic!("unsupported item body for {name}: {other:?}"),
    };

    Item {
        name,
        generics_decl,
        generics_use,
        type_params,
        where_preds,
        kind,
    }
}

/// Counts comma-separated segments at angle-bracket depth zero (groups are
/// opaque single tokens, so only `<`/`>` need tracking).
fn count_top_level_segments(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut segments = 0usize;
    let mut in_segment = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_segment = false,
            _ => {
                if !in_segment {
                    segments += 1;
                    in_segment = true;
                }
            }
        }
    }
    segments
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        i = skip_attributes(&toks, i);
        i = skip_visibility(&toks, i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // ':'
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        i = skip_attributes(&toks, i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_segments(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate(item: &Item, mode: Mode) -> String {
    let trait_name = match mode {
        Mode::Ser => "Serialize",
        Mode::De => "Deserialize",
    };
    let mut bounds: Vec<String> = item
        .type_params
        .iter()
        .map(|p| format!("{p}: ::serde::{trait_name}"))
        .collect();
    if !item.where_preds.trim().is_empty() {
        bounds.insert(0, item.where_preds.trim().trim_end_matches(',').to_string());
    }
    let where_clause = if bounds.is_empty() {
        String::new()
    } else {
        format!("where {}", bounds.join(", "))
    };

    let body = match mode {
        Mode::Ser => gen_serialize_body(item),
        Mode::De => gen_deserialize_body(item),
    };
    let signature = match mode {
        Mode::Ser => "fn to_content(&self) -> ::serde::Content".to_string(),
        Mode::De => {
            "fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError>"
                .to_string()
        }
    };
    format!(
        "impl {decl} ::serde::{trait_name} for {name}{use_g} {where_clause} {{\n\
         {signature} {{\n{body}\n}}\n}}\n",
        decl = item.generics_decl,
        name = item.name,
        use_g = item.generics_use,
    )
}

fn gen_serialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.kind {
        Kind::Unit => "::serde::Content::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Content::Map(vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({b}) => ::serde::Content::Map(vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Content::Seq(vec![{e}]))]),",
                                b = binders.join(", "),
                                e = elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binders} }} => ::serde::Content::Map(vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Content::Map(vec![{e}]))]),",
                                e = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    }
}

fn gen_deserialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.kind {
        Kind::Unit => format!("{{ let _ = c; ::std::result::Result::Ok({name}) }}"),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?"))
                .collect();
            format!(
                "{{ let s = ::serde::content_as_seq(c, \"{name}\")?;\n\
                 if s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError(format!(\"{name}: expected {n} elements, got {{}}\", s.len()))); }}\n\
                 ::std::result::Result::Ok({name}({elems})) }}",
                elems = elems.join(", ")
            )
        }
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field_from_map(m, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "{{ let m = ::serde::content_as_map(c, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }}) }}",
                inits = inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let map_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unreachable!(),
                        VariantKind::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(v)?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let s = ::serde::content_as_seq(v, \"{name}::{vn}\")?;\n\
                                 if s.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError(format!(\"{name}::{vn}: expected {n} elements, got {{}}\", s.len()))); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({elems})) }}",
                                elems = elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::field_from_map(m, \"{f}\", \"{name}::{vn}\")?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let m = ::serde::content_as_map(v, \"{name}::{vn}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) }}",
                                inits = inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                 }},\n\
                 ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let (k, v) = (&entries[0].0, &entries[0].1);\n\
                 let _ = v;\n\
                 match k.as_str() {{\n\
                 {map_arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"{name}: expected variant string or single-key map, found {{other:?}}\"))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                map_arms = map_arms.join("\n"),
            )
        }
    }
}
