//! Offline stand-in for `serde`.
//!
//! Instead of upstream's visitor-based zero-copy architecture, this shim
//! routes everything through one in-memory tree, [`Content`] — the same
//! simplification `serde_json::Value` makes — and the derive macros in
//! `serde_derive` generate [`Serialize`]/[`Deserialize`] impls against it.
//! The JSON front end lives in the sibling `serde_json` shim. External
//! enum tagging, transparent newtypes and the primitive/collection impls
//! match upstream's JSON behaviour, which is the only wire format the
//! workspace uses.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Homogeneous floating-point sequence — the JSON parser's fast
    /// path for dense numeric arrays (answer vectors), equivalent to a
    /// `Seq` of `F64` at a fraction of the tree cost. Every consumer
    /// of `Seq` must accept this variant interchangeably.
    F64Seq(Vec<f64>),
    /// Ordered key/value map (insertion order preserved).
    Map(Vec<(String, Content)>),
}

/// Deserialization failure with a human-readable path/description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the [`Content`] tree.
pub trait Serialize {
    /// Builds the tree representation.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, validating structure.
    ///
    /// # Errors
    /// [`DeError`] naming the first structural mismatch.
    fn from_content(c: &Content) -> Result<Self, DeError>;

    /// Element hook for the packed [`Content::F64Seq`] consumers:
    /// equivalent to `from_content(&Content::F64(v))`, but overridable
    /// so dense float vectors convert by plain copy instead of routing
    /// every element through a temporary tree node.
    ///
    /// # Errors
    /// [`DeError`] when `Self` does not accept a number.
    fn from_f64(v: f64) -> Result<Self, DeError> {
        Self::from_content(&Content::F64(v))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    other => Err(DeError(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if *self >= 0 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    other => Err(DeError(format!(
                        "expected signed integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(DeError(format!("expected number, found {other:?}"))),
                }
            }
            fn from_f64(v: f64) -> Result<Self, DeError> {
                Ok(v as $t)
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) if items.len() == N => {
                let v: Vec<T> = items
                    .iter()
                    .map(T::from_content)
                    .collect::<Result<_, _>>()?;
                Ok(v.try_into().expect("length checked"))
            }
            Content::F64Seq(vs) if vs.len() == N => {
                let v: Vec<T> = vs
                    .iter()
                    .map(|v| T::from_f64(*v))
                    .collect::<Result<_, _>>()?;
                Ok(v.try_into().expect("length checked"))
            }
            other => Err(DeError(format!(
                "expected sequence of length {N}, found {other:?}"
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            // For T = f64 the per-element conversion is a plain copy.
            Content::F64Seq(vs) => vs.iter().map(|v| T::from_f64(*v)).collect(),
            other => Err(DeError(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) if items.len() == $len => Ok((
                        $($name::from_content(&items[$idx])?,)+
                    )),
                    Content::F64Seq(vs) if vs.len() == $len => Ok((
                        $($name::from_f64(vs[$idx])?,)+
                    )),
                    other => Err(DeError(format!(
                        "expected {}-tuple, found {other:?}", $len
                    ))),
                }
            }
        }
    };
}
impl_tuple!(2 => A: 0, B: 1);
impl_tuple!(3 => A: 0, B: 1, C: 2);
impl_tuple!(4 => A: 0, B: 1, C: 2, D: 3);

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Sorted for deterministic output (upstream serde_json is
        // insertion-ordered; sorting is the deterministic analogue here).
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (content_key(&k.to_content()), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (content_key(&k.to_content()), v.to_content()))
                .collect(),
        )
    }
}

fn content_key(c: &Content) -> String {
    match c {
        Content::Str(s) => s.clone(),
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        other => format!("{other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code.
// ---------------------------------------------------------------------------

/// Views `c` as a map, or errors naming `ty`.
pub fn content_as_map<'a>(c: &'a Content, ty: &str) -> Result<&'a [(String, Content)], DeError> {
    match c {
        Content::Map(entries) => Ok(entries),
        other => Err(DeError(format!("{ty}: expected map, found {other:?}"))),
    }
}

/// Views `c` as a sequence, or errors naming `ty`. A packed `F64Seq`
/// is expanded on the fly (tuple payloads are short, so the allocation
/// is negligible; the dense-vector hot path never lands here).
pub fn content_as_seq<'a>(
    c: &'a Content,
    ty: &str,
) -> Result<std::borrow::Cow<'a, [Content]>, DeError> {
    match c {
        Content::Seq(items) => Ok(std::borrow::Cow::Borrowed(items)),
        Content::F64Seq(vs) => Ok(std::borrow::Cow::Owned(
            vs.iter().map(|v| Content::F64(*v)).collect(),
        )),
        other => Err(DeError(format!("{ty}: expected sequence, found {other:?}"))),
    }
}

/// Extracts and deserializes field `key` from a struct map.
pub fn field_from_map<T: Deserialize>(
    entries: &[(String, Content)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    let c = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("{ty}: missing field `{key}`")))?;
    T::from_content(c).map_err(|e| DeError(format!("{ty}.{key}: {e}")))
}
