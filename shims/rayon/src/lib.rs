//! Offline stand-in for the slice of `rayon` the workspace uses:
//! `vec.into_par_iter().map(f).collect::<Vec<_>>()`. Work is split into
//! contiguous chunks, one per available core, executed on scoped threads,
//! and re-assembled in input order — the same ordering contract rayon's
//! indexed parallel iterators provide.

/// The rayon-style glob import surface.
pub mod prelude {
    pub use crate::{FromParallel, IntoParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Starts a parallel pipeline over the elements.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A not-yet-mapped parallel pipeline.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Registers the per-element transform.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped pipeline awaiting `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Executes the pipeline across threads, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromParallel<R>,
    {
        C::from_ordered(run_chunked(self.items, &self.f))
    }
}

fn run_chunked<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Split into `workers` contiguous chunks of near-equal size.
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Collection targets for a parallel pipeline.
pub trait FromParallel<R> {
    /// Builds the collection from results in input order.
    fn from_ordered(v: Vec<R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_ordered(v: Vec<R>) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn borrows_environment() {
        let offset = 10usize;
        let out: Vec<usize> = vec![1, 2, 3].into_par_iter().map(|x| x + offset).collect();
        assert_eq!(out, vec![11, 12, 13]);
    }
}
