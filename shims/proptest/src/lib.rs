//! Offline stand-in for `proptest`: the `proptest!` macro, the
//! [`Strategy`] combinators and the small set of strategies this
//! workspace's property tests use. Cases are generated from a
//! deterministic per-test seed (test name hash xor case index) so failures
//! reproduce; there is no shrinking — the failing inputs are printed
//! instead.

use rand::{Rng, SeedableRng};

/// The RNG driving value generation.
pub type TestRng = rand::rngs::StdRng;

/// Test-case failure carried through `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

/// Builds the deterministic RNG for `(test, case)`.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    TestRng::seed_from_u64(h.finish() ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values (re-draws until `f` accepts, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait ArbitraryValue {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag: f64 = rng.gen::<f64>() * 1e9;
        if rng.gen() {
            mag
        } else {
            -mag
        }
    }
}

impl ArbitraryValue for prop::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        prop::sample::Index(rng.gen())
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Namespaced strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// A strategy for vectors of `element` values with length in `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Builds a [`VecStrategy`].
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                use rand::Rng;
                let SizeRange { lo, hi } = self.size;
                let len = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        /// An opaque index resolvable against any collection length.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(pub(crate) u64);

        impl Index {
            /// Maps the index into `0..len`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                (self.0 % len as u64) as usize
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case with a message (see `proptest!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Declares property tests (see crate docs; mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5usize..10, y in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn mapped_strategies_apply(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn flat_map_chains((len, v) in (1usize..8).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u64..100, n))
        })) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn early_return_ok_is_supported(x in 0u64..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_override_applies(_x in 0u64..5) {
            // Body runs 7 times; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_case_info() {
        // No inner #[test] attribute: the generated fn is driven manually.
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 1000, "x was {x}");
            }
        }
        always_fails();
    }
}
