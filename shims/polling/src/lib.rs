//! Offline shim: a minimal readiness-polling API over raw Linux FFI.
//!
//! The build environment has no crates.io access, so instead of `mio` or
//! the crates.io `polling` crate this shim declares the four syscalls an
//! event loop actually needs — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd` — directly against libc (which `std` already
//! links) and wraps them in a tiny safe API:
//!
//! * [`Poller`] — an epoll instance: register file descriptors with a
//!   `u64` token and an [`Interest`], then [`Poller::wait`] for
//!   [`Event`]s. Registrations are level-triggered (a readiness that is
//!   not fully consumed is reported again), which keeps callers simple.
//! * [`Waker`] — an `eventfd` registered in a poller so other threads
//!   can interrupt a blocked [`Poller::wait`].
//! * [`signal`] — an async-signal-safe SIGINT latch for graceful
//!   shutdown (the handler only stores an `AtomicBool`).
//!
//! On non-Linux targets every constructor returns
//! [`std::io::ErrorKind::Unsupported`] so callers can fall back to a
//! thread-per-connection front end; the API surface is identical.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::io;
use std::time::Duration;

/// Which readiness kinds a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or EOF/error).
    pub readable: bool,
    /// Wake when the descriptor can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-side interest only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Write-side interest only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable — includes EOF, peer hangup, and error conditions, so a
    /// read attempt will observe them rather than block.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // The kernel ABI packs `epoll_event` on x86-64 (and x86); other
    // architectures use natural alignment. Mirroring glibc's
    // `__EPOLL_PACKED` here keeps the struct layout correct everywhere.
    #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EFD_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    // RDHUP rides with read interest only: it is level-triggered and a
    // half-closed peer re-reports it on every wait, so a registration
    // that paused reads (and cannot consume it) must not subscribe —
    // one drained connection would otherwise busy-spin the poller.
    fn mask_for(interest: Interest) -> u32 {
        let mut events = 0;
        if interest.readable {
            events |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// An epoll instance (level-triggered).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_for(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX),
            };
            const CAP: usize = 256;
            let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
            let n = match unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, timeout_ms) }
            {
                -1 => {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        // A signal landed; report an empty batch so the
                        // caller re-checks its shutdown flag.
                        0
                    } else {
                        return Err(e);
                    }
                }
                n => n as usize,
            };
            for ev in raw.iter().take(n) {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// An eventfd registered in a poller: `wake` from any thread.
    #[derive(Debug)]
    pub struct Waker {
        fd: RawFd,
    }

    impl Waker {
        pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
            let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
            if let Err(e) = poller.add(fd, token, Interest::READABLE) {
                unsafe { close(fd) };
                return Err(e);
            }
            Ok(Waker { fd })
        }

        pub fn wake(&self) {
            let one: u64 = 1;
            // EAGAIN means the counter is already nonzero — the poller
            // is waking anyway, so the failure is success.
            unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    pub mod net {
        use std::io;
        use std::net::{SocketAddr, TcpListener};
        use std::os::unix::io::FromRawFd;

        const AF_INET: i32 = 2;
        const AF_INET6: i32 = 10;
        const SOCK_STREAM: i32 = 1;
        const SOCK_CLOEXEC: i32 = 0o2000000;
        const SOL_SOCKET: i32 = 1;
        const SO_REUSEADDR: i32 = 2;
        const SO_REUSEPORT: i32 = 15;

        // `sockaddr_in` / `sockaddr_in6`, as bind(2) expects them. Port
        // and the v4 address travel big-endian.
        #[repr(C)]
        struct SockaddrIn {
            family: u16,
            port_be: u16,
            addr_be: u32,
            zero: [u8; 8],
        }

        #[repr(C)]
        struct SockaddrIn6 {
            family: u16,
            port_be: u16,
            flowinfo: u32,
            addr: [u8; 16],
            scope_id: u32,
        }

        extern "C" {
            fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
            fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32)
                -> i32;
            fn bind(fd: i32, addr: *const u8, addrlen: u32) -> i32;
            fn listen(fd: i32, backlog: i32) -> i32;
            fn close(fd: i32) -> i32;
        }

        pub fn set_listen_backlog(fd: i32, backlog: i32) -> io::Result<()> {
            // Linux allows re-calling listen(2) on a listening socket to
            // resize its accept backlog (clamped to net.core.somaxconn).
            if unsafe { listen(fd, backlog) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn cvt(ret: i32) -> io::Result<i32> {
            if ret < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(ret)
            }
        }

        fn set_opt(fd: i32, opt: i32) -> io::Result<()> {
            let one: i32 = 1;
            cvt(unsafe { setsockopt(fd, SOL_SOCKET, opt, (&one as *const i32).cast(), 4) })
                .map(|_| ())
        }

        pub fn bind_reuseport(addr: SocketAddr, backlog: i32) -> io::Result<TcpListener> {
            let domain = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
            let fd = cvt(unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
            let guard_close = |e: io::Error| {
                unsafe { close(fd) };
                e
            };
            // SO_REUSEADDR matches std's TcpListener::bind (TIME_WAIT
            // rebinds); SO_REUSEPORT is what lets every shard bind the
            // same address and have the kernel spray accepts across the
            // listen sockets by 4-tuple hash.
            set_opt(fd, SO_REUSEADDR).map_err(guard_close)?;
            set_opt(fd, SO_REUSEPORT).map_err(guard_close)?;
            let ret = match addr {
                SocketAddr::V4(v4) => {
                    let sa = SockaddrIn {
                        family: AF_INET as u16,
                        port_be: v4.port().to_be(),
                        addr_be: u32::from_be_bytes(v4.ip().octets()).to_be(),
                        zero: [0; 8],
                    };
                    unsafe {
                        bind(
                            fd,
                            (&sa as *const SockaddrIn).cast(),
                            std::mem::size_of::<SockaddrIn>() as u32,
                        )
                    }
                }
                SocketAddr::V6(v6) => {
                    let sa = SockaddrIn6 {
                        family: AF_INET6 as u16,
                        port_be: v6.port().to_be(),
                        flowinfo: v6.flowinfo(),
                        addr: v6.ip().octets(),
                        scope_id: v6.scope_id(),
                    };
                    unsafe {
                        bind(
                            fd,
                            (&sa as *const SockaddrIn6).cast(),
                            std::mem::size_of::<SockaddrIn6>() as u32,
                        )
                    }
                }
            };
            cvt(ret).map_err(guard_close)?;
            cvt(unsafe { listen(fd, backlog) }).map_err(guard_close)?;
            Ok(unsafe { TcpListener::from_raw_fd(fd) })
        }
    }

    pub mod sched {
        use std::io;

        const SCHED_BATCH: i32 = 3;

        #[repr(C)]
        struct SchedParam {
            sched_priority: i32,
        }

        extern "C" {
            // On Linux the pid argument is a TID; 0 means the calling
            // thread.
            fn sched_setscheduler(pid: i32, policy: i32, param: *const SchedParam) -> i32;
        }

        pub fn set_current_thread_batch() -> io::Result<()> {
            let param = SchedParam { sched_priority: 0 };
            if unsafe { sched_setscheduler(0, SCHED_BATCH, &param) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    pub mod signal {
        use std::io;
        use std::sync::atomic::{AtomicBool, Ordering};

        static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);
        const SIGINT: i32 = 2;
        const SIG_ERR: usize = usize::MAX;

        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }

        extern "C" fn on_sigint(_signum: i32) {
            // Only an atomic store: the handler must stay
            // async-signal-safe (no allocation, no locks, no IO).
            SIGINT_RECEIVED.store(true, Ordering::SeqCst);
        }

        pub fn install_sigint() -> io::Result<()> {
            let handler = on_sigint as extern "C" fn(i32) as usize;
            if unsafe { signal(SIGINT, handler) } == SIG_ERR {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn sigint_received() -> bool {
            SIGINT_RECEIVED.load(Ordering::SeqCst)
        }

        pub fn reset_sigint() {
            SIGINT_RECEIVED.store(false, Ordering::SeqCst);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    /// Raw descriptor stand-in (matches `std::os::unix::io::RawFd`).
    pub type RawFd = i32;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "the polling shim implements epoll and is Linux-only",
        )
    }

    /// Stub poller: every constructor fails with `Unsupported`.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }

        pub fn add(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Stub waker.
    #[derive(Debug)]
    pub struct Waker {}

    impl Waker {
        pub fn new(_poller: &Poller, _token: u64) -> io::Result<Waker> {
            Err(unsupported())
        }

        pub fn wake(&self) {}

        pub fn drain(&self) {}
    }

    pub mod net {
        use std::io;
        use std::net::{SocketAddr, TcpListener};

        pub fn set_listen_backlog(_fd: i32, _backlog: i32) -> io::Result<()> {
            Err(super::unsupported())
        }

        pub fn bind_reuseport(_addr: SocketAddr, _backlog: i32) -> io::Result<TcpListener> {
            Err(super::unsupported())
        }
    }

    pub mod sched {
        use std::io;

        pub fn set_current_thread_batch() -> io::Result<()> {
            Err(super::unsupported())
        }
    }

    pub mod signal {
        use std::io;

        pub fn install_sigint() -> io::Result<()> {
            Err(super::unsupported())
        }

        pub fn sigint_received() -> bool {
            false
        }

        pub fn reset_sigint() {}
    }
}

/// An epoll instance owning registered descriptors' readiness state.
///
/// Registrations are **level-triggered**: readiness the caller does not
/// fully consume is reported by the next [`Poller::wait`] again.
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

#[cfg(target_os = "linux")]
type Fd = std::os::unix::io::RawFd;
#[cfg(not(target_os = "linux"))]
type Fd = sys::RawFd;

impl Poller {
    /// Creates an epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    /// The OS error from `epoll_create1`; `Unsupported` off Linux.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Registers `fd` under `token` with `interest`.
    ///
    /// # Errors
    /// The OS error from `epoll_ctl` (e.g. `EEXIST` for a double add).
    pub fn add(&self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.add(fd, token, interest)
    }

    /// Replaces `fd`'s registration with `token` + `interest`.
    ///
    /// # Errors
    /// The OS error from `epoll_ctl` (e.g. `ENOENT` if never added).
    pub fn modify(&self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Deregisters `fd`. Must be called **before** the descriptor is
    /// closed, or stale events for a recycled fd may surface.
    ///
    /// # Errors
    /// The OS error from `epoll_ctl`.
    pub fn delete(&self, fd: Fd) -> io::Result<()> {
        self.inner.delete(fd)
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout` elapses (`None` blocks indefinitely), filling `events`
    /// (cleared first) and returning how many arrived. A signal
    /// interruption returns `Ok(0)` so callers re-check shutdown flags.
    ///
    /// # Errors
    /// The OS error from `epoll_wait`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.inner.wait(events, timeout)
    }
}

/// Wakes a [`Poller::wait`] from another thread via an `eventfd`
/// registered in the poller (its events carry the token given at
/// construction). Send + Sync: call [`Waker::wake`] from anywhere.
#[derive(Debug)]
pub struct Waker {
    inner: sys::Waker,
}

impl Waker {
    /// Creates a nonblocking `eventfd` and registers it in `poller`
    /// under `token`.
    ///
    /// # Errors
    /// The OS error from `eventfd` or the registration.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        Ok(Waker {
            inner: sys::Waker::new(&poller.inner, token)?,
        })
    }

    /// Makes the poller's next (or current) `wait` return. Never blocks;
    /// coalesces with wakes not yet observed.
    pub fn wake(&self) {
        self.inner.wake();
    }

    /// Consumes pending wake tokens so the (level-triggered) poller
    /// stops reporting the waker as readable. Call on receipt.
    pub fn drain(&self) {
        self.inner.drain();
    }
}

/// Listening-socket tuning.
///
/// `std::net::TcpListener` hardcodes an accept backlog of 128; a server
/// expecting hundreds of clients to connect in one burst (a dashboard
/// fleet reconnecting, a load generator starting) overflows it and the
/// excess SYNs sit in multi-second retransmit stalls.
/// [`net::set_listen_backlog`] resizes the backlog of an
/// already-listening socket (Linux re-applies `listen(2)`; the kernel
/// clamps to `net.core.somaxconn`).
///
/// [`net::bind_reuseport`] creates a listening socket with
/// `SO_REUSEPORT` set before `bind(2)`, so several listeners — one per
/// event-loop shard — can share one address and the kernel distributes
/// incoming connections across them by 4-tuple hash. Every socket on
/// the address must carry the option, including the first; a server
/// that may ever shard must create its primary listener through this
/// call too.
pub mod net {
    use super::sys;
    use std::io;
    use std::net::{SocketAddr, TcpListener};

    /// Resizes `fd`'s accept backlog.
    ///
    /// # Errors
    /// The OS error from `listen(2)`; `Unsupported` off Linux.
    pub fn set_listen_backlog(fd: i32, backlog: i32) -> io::Result<()> {
        sys::net::set_listen_backlog(fd, backlog)
    }

    /// Binds a new `SO_REUSEPORT` + `SO_REUSEADDR` listening socket to
    /// `addr` with the given accept `backlog`. Additional shards bind
    /// the *resolved* address of the first listener (port 0 becomes the
    /// picked port).
    ///
    /// # Errors
    /// The OS error from `socket`/`setsockopt`/`bind`/`listen`;
    /// `Unsupported` off Linux (callers fall back to striped accept
    /// from a single listener).
    pub fn bind_reuseport(addr: SocketAddr, backlog: i32) -> io::Result<TcpListener> {
        sys::net::bind_reuseport(addr, backlog)
    }
}

/// Thread scheduling hints for serving threads.
///
/// [`sched::set_current_thread_batch`] switches the calling thread to
/// `SCHED_BATCH`: same fair share of CPU, but the kernel stops letting
/// the thread *wakeup-preempt* whoever is running. For an event loop
/// and its workers this is a batching lever — client wake-ups are not
/// interrupted mid-burst, so readiness accumulates and each
/// `epoll_wait` returns a fuller batch. Lowering one's own scheduling
/// class needs no privileges.
pub mod sched {
    use super::sys;
    use std::io;

    /// Puts the calling thread in the `SCHED_BATCH` class.
    ///
    /// # Errors
    /// The OS error from `sched_setscheduler`; `Unsupported` off Linux.
    pub fn set_current_thread_batch() -> io::Result<()> {
        sys::sched::set_current_thread_batch()
    }
}

/// Async-signal-safe SIGINT latching for graceful shutdown.
///
/// [`signal::install_sigint`] replaces the process SIGINT disposition
/// with a handler that only sets an `AtomicBool`;
/// [`signal::sigint_received`] polls it. The latch is process-global —
/// intended for a binary's main loop, not libraries.
pub mod signal {
    use super::sys;
    use std::io;

    /// Installs the latching SIGINT handler.
    ///
    /// # Errors
    /// The OS error from `signal(2)`; `Unsupported` off Linux.
    pub fn install_sigint() -> io::Result<()> {
        sys::signal::install_sigint()
    }

    /// Whether SIGINT has arrived since install (or the last reset).
    pub fn sigint_received() -> bool {
        sys::signal::sigint_received()
    }

    /// Clears the latch (for tests).
    pub fn reset_sigint() {
        sys::signal::reset_sigint()
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    #[test]
    fn poller_reports_tcp_readiness() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(listener.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        // Nothing pending: the wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        // A connect makes the listener readable under its token.
        let client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Accept, register the server side, and watch bytes arrive.
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.add(server.as_raw_fd(), 9, Interest::BOTH).unwrap();
        let mut client = client;
        client.write_all(b"ping").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 9 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no readable event");
        }
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);

        // Level-triggered delete: after deregistration, silence.
        poller.delete(server.as_raw_fd()).unwrap();
        client.write_all(b"more").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.token != 9),
            "deregistered fd still reported ({n} events)"
        );
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::new(Waker::new(&poller, 42).unwrap());

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
            w.wake(); // coalesces
        });

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        waker.drain();
        t.join().unwrap();

        // Drained: the waker is quiet again.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn reuseport_listeners_share_an_address() {
        let first = net::bind_reuseport("127.0.0.1:0".parse().unwrap(), 64).unwrap();
        let addr = first.local_addr().unwrap();
        assert_ne!(addr.port(), 0, "port 0 resolves to a real port");
        // A second listener binds the *same* resolved address.
        let second = net::bind_reuseport(addr, 64).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);

        // Connections land on one of the two listeners; accept them all
        // from both sides (nonblocking, drained after the burst).
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();
        let mut clients = Vec::new();
        for _ in 0..8 {
            clients.push(std::net::TcpStream::connect(addr).unwrap());
        }
        let mut accepted = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while accepted < clients.len() {
            for l in [&first, &second] {
                while l.accept().is_ok() {
                    accepted += 1;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "only {accepted} of {} connections accepted",
                clients.len()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn sigint_latch_starts_clear() {
        signal::reset_sigint();
        assert!(!signal::sigint_received());
        signal::install_sigint().unwrap();
        assert!(!signal::sigint_received());
        // Raising a real SIGINT would kill the test harness politely but
        // unhelpfully; the latch mechanics are exercised via reset.
        signal::reset_sigint();
    }
}
