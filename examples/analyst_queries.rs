//! The typed query algebra end to end: a curator publishes a 1-stop OD
//! release into a serving catalog, and an analyst drives every
//! `QueryPlan` variant — total, OD query, axis marginal, top-k — over a
//! real TCP connection speaking the `DPRB` binary protocol (with one
//! NDJSON line for contrast). Local (`dpod_query::plan::execute`) and
//! served answers are bit-identical, which this example asserts.
//!
//! ```sh
//! cargo run --release -p dpod-examples --example analyst_queries
//! ```

use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
use dpod_data::{City, OdMatrixBuilder, TrajectoryConfig};
use dpod_dp::Epsilon;
use dpod_query::{plan, Answer, QueryPlan, Region};
use dpod_serve::protocol::Request;
use dpod_serve::{spawn, Catalog, Server};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

fn main() {
    // ---- Curator: sanitize a 1-stop OD matrix and publish it. ----
    // 1 intermediate stop → a 6-D domain (x_o, y_o, x_s, y_s, x_d, y_d).
    let mut rng = dpod_dp::seeded_rng(7);
    let trips = TrajectoryConfig::with_stops(1).generate(&City::Denver.model(), 30_000, &mut rng);
    let od = OdMatrixBuilder::new(8)
        .build_dense(&trips, 1)
        .expect("8^6 cells fit in memory");
    let sanitized = Ebp::default()
        .sanitize(&od, Epsilon::new(1.0).expect("valid ε"), &mut rng)
        .expect("sanitization succeeds");
    let catalog = Arc::new(Catalog::new());
    catalog.publish("denver", PublishedRelease::from_sanitized(&sanitized));
    let server = Arc::new(Server::new(Arc::clone(&catalog), 64 << 20));
    let handle = spawn(Arc::clone(&server), "127.0.0.1:0", 2).expect("bind a local port");
    println!("serving 'denver' (6-D, 1 stop) on {}", handle.addr());

    // ---- Analyst: the typed algebra over the DPRB binary wire. ----
    let mut client = dpod_serve::wire::Client::connect(handle.addr()).expect("connect");

    let total = client
        .plan("denver", QueryPlan::Total)
        .expect("total answers");
    let Answer::Value { value: total } = total else {
        panic!("total answers with a Value");
    };
    println!("total trips (estimate)          : {total:.1}");

    // Trips from the north-west quadrant to the south-east quadrant
    // whose intermediate stop passes through the city centre.
    let od_plan = QueryPlan::od()
        .with_origin(Region::new((0, 0), (4, 4)))
        .with_stop(0, Region::new((2, 2), (6, 6)))
        .with_destination(Region::new((4, 4), (8, 8)));
    let Answer::Value { value: corridor } =
        client.plan("denver", od_plan.clone()).expect("od answers")
    else {
        panic!("od answers with a Value");
    };
    println!("NW → centre-stop → SE corridor  : {corridor:.1}");

    // The destination density: marginalize everything but (x_d, y_d).
    let Answer::Marginal { dims, values } = client
        .plan("denver", QueryPlan::Marginal { keep: vec![4, 5] })
        .expect("marginal answers")
    else {
        panic!("marginal answers with a Marginal");
    };
    let peak = values.iter().cloned().fold(f64::MIN, f64::max);
    println!("destination density             : {dims:?} grid, peak cell ≈ {peak:.1}");

    // The five heaviest released cells (full 6-D coordinates).
    let Answer::TopK { cells, .. } = client
        .plan("denver", QueryPlan::TopK { k: 5 })
        .expect("top-k answers")
    else {
        panic!("top-k answers with a TopK");
    };
    println!("top-5 cells:");
    for cell in &cells {
        println!("  {:?} => {:.1}", cell.coords, cell.value);
    }

    // ---- The same vocabulary, one JSON line (any shell can do this). --
    let stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let req = Request::Plan {
        release: "denver".into(),
        plan: QueryPlan::Many {
            plans: vec![QueryPlan::Total, QueryPlan::TopK { k: 1 }],
        },
    };
    let mut line = serde_json::to_string(&req).expect("serializable");
    println!("NDJSON request                  : {line}");
    line.push('\n');
    writer.write_all(line.as_bytes()).expect("send");
    let mut answer = String::new();
    reader.read_line(&mut answer).expect("receive");
    print!("NDJSON response                 : {answer}");

    // ---- Served answers are post-processing: identical to local. ----
    let local = plan::execute(&sanitized, &od_plan).expect("local execute");
    let Answer::Value { value: local_value } = local else {
        panic!("local od answers with a Value");
    };
    assert_eq!(
        local_value.to_bits(),
        corridor.to_bits(),
        "served answers must be bit-identical to local execution"
    );
    println!("local == served (bit-identical) : ok");

    handle.stop();
}
