//! Quickstart: publish a differentially-private frequency matrix and
//! query it.
//!
//! ```sh
//! cargo run --release -p dpod-examples --example quickstart
//! ```

use dpod_core::{grid::Ebp, Mechanism};
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum, Shape};

fn main() {
    // 1. A 2-D frequency matrix: a 128×128 map with a dense downtown
    //    cluster and a sparse rest-of-town.
    let shape = Shape::new(vec![128, 128]).expect("valid shape");
    let mut population = DenseMatrix::<u64>::zeros(shape);
    for x in 40..56 {
        for y in 40..56 {
            population.set(&[x, y], 300).expect("in bounds");
        }
    }
    for i in 0..128 {
        population.add_at(&[i, i], 5).expect("in bounds");
    }
    println!("true total population: {}", population.total_u64());

    // 2. Sanitize under ε-differential privacy with EBP (§3.2 of the
    //    paper): the library picks the grid granularity privately.
    let epsilon = Epsilon::new(0.5).expect("positive budget");
    let mut rng = dpod_dp::seeded_rng(42);
    let private = Ebp::default()
        .sanitize(&population, epsilon, &mut rng)
        .expect("sanitization succeeds");
    println!(
        "released {} partitions under {epsilon}",
        private.num_partitions(),
    );

    // 3. Ask range queries against the private release. Analysts never see
    //    the raw matrix.
    let truth = PrefixSum::from_counts(&population);
    let queries = [
        (
            "downtown",
            AxisBox::new(vec![40, 40], vec![56, 56]).unwrap(),
        ),
        ("suburb", AxisBox::new(vec![90, 0], vec![128, 40]).unwrap()),
        ("everything", AxisBox::full(population.shape())),
    ];
    println!(
        "\n{:<12}{:>12}{:>14}{:>12}",
        "query", "true", "private", "error%"
    );
    for (name, q) in &queries {
        let t = truth.box_count(q) as f64;
        let p = private.range_sum(q);
        let err = if t > 0.0 {
            (p - t).abs() / t * 100.0
        } else {
            0.0
        };
        println!("{name:<12}{t:>12.0}{p:>14.1}{err:>11.1}%");
    }
}
