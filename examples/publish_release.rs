//! The curator → analyst workflow of the paper's system model (Fig. 1):
//! the curator sanitizes and *publishes* a serializable release artifact;
//! an analyst — in another process, organization, or decade — loads it and
//! queries it. No raw data crosses the boundary.
//!
//! ```sh
//! cargo run --release -p dpod-examples --example publish_release
//! ```

use dpod_core::{daf::DafEntropy, Mechanism, PublishedRelease};
use dpod_data::{City, OdMatrixBuilder, TrajectoryConfig};
use dpod_dp::Epsilon;
use dpod_fmatrix::AxisBox;

fn main() {
    let path = std::env::temp_dir().join("dpod_release.json");

    // ---- Curator side: raw trajectories never leave this scope. ----
    {
        let city = City::NewYork.model();
        let mut rng = dpod_dp::seeded_rng(11);
        let trips = TrajectoryConfig::with_stops(0).generate(&city, 40_000, &mut rng);
        let od = OdMatrixBuilder::new(16)
            .build_dense(&trips, 0)
            .expect("16^4 cells fit in memory");
        let sanitized = DafEntropy::default()
            .sanitize(&od, Epsilon::new(0.5).expect("valid ε"), &mut rng)
            .expect("sanitization succeeds");
        let artifact = PublishedRelease::from_sanitized(&sanitized);
        let json = serde_json::to_string_pretty(&artifact).expect("serializable");
        std::fs::write(&path, &json).expect("writable temp dir");
        println!(
            "curator: published {} partitions ({} bytes of JSON) under ε = {}",
            artifact.len(),
            json.len(),
            artifact.epsilon
        );
    }

    // ---- Analyst side: only the artifact is available. ----
    {
        let json = std::fs::read_to_string(&path).expect("artifact exists");
        let artifact: PublishedRelease = serde_json::from_str(&json).expect("valid release JSON");
        println!(
            "analyst: loaded a {} release over domain {:?}",
            artifact.mechanism, artifact.domain
        );
        let queryable = artifact
            .into_sanitized()
            .expect("artifact passes validation");

        // How many trips started downtown (cells 6..10 in both origin
        // axes) and ended anywhere?
        let q = AxisBox::new(vec![6, 6, 0, 0], vec![10, 10, 16, 16]).expect("valid box");
        println!(
            "analyst: trips starting downtown ≈ {:.0} (of ≈ {:.0} total)",
            queryable.range_sum(&q),
            queryable.total()
        );
    }

    std::fs::remove_file(&path).ok();
}
