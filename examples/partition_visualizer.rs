//! Renders how each mechanism partitions a skewed 2-D map (the paper's
//! Figure 3 intuition): data-independent grids slice blindly; DAF follows
//! the density.
//!
//! ```sh
//! cargo run --release -p dpod-examples --example partition_visualizer
//! ```

use dpod_core::{
    daf::{DafEntropy, DafHomogeneity},
    grid::{Ebp, Eug},
    Mechanism, PartitionSummary,
};
use dpod_data::City;
use dpod_dp::Epsilon;
use dpod_fmatrix::DenseMatrix;

const GRID: usize = 128;
const POINTS: usize = 300_000;
const W: usize = 64;
const H: usize = 32;

fn main() {
    let mut rng = dpod_dp::seeded_rng(1);
    let matrix = City::NewYork
        .model()
        .population_matrix(GRID, POINTS, &mut rng);
    let epsilon = Epsilon::new(0.5).expect("positive budget");

    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(Eug::default()),
        Box::new(Ebp::default()),
        Box::new(DafEntropy::default()),
        Box::new(DafHomogeneity::default()),
    ];
    println!(
        "Partition layouts over a New York-archetype heatmap \
         ({GRID}² grid, {POINTS} points, ε = 0.5)\n"
    );
    for mech in mechanisms {
        let mut rng = dpod_dp::seeded_rng(17);
        let out = mech.sanitize(&matrix, epsilon, &mut rng).expect("sanitize");
        println!(
            "--- {} · {} partitions ---",
            mech.name(),
            out.num_partitions()
        );
        println!("{}", render(&matrix, &out));
    }
}

/// Density shading (log scale) with partition borders overlaid.
fn render(matrix: &DenseMatrix<u64>, out: &dpod_core::SanitizedMatrix) -> String {
    let (rows, cols) = (matrix.shape().dim(0), matrix.shape().dim(1));
    let max = matrix.max_f64().unwrap_or(1.0).max(1.0);
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    let mut canvas = vec![vec![' '; W]; H];
    for (r, line) in canvas.iter_mut().enumerate() {
        for (c, slot) in line.iter_mut().enumerate() {
            let x0 = r * rows / H;
            let x1 = ((r + 1) * rows / H).max(x0 + 1);
            let y0 = c * cols / W;
            let y1 = ((c + 1) * cols / W).max(y0 + 1);
            let mut sum = 0.0;
            for x in x0..x1 {
                for y in y0..y1 {
                    sum += matrix.get(&[x, y]).expect("in bounds") as f64;
                }
            }
            let mean = sum / ((x1 - x0) * (y1 - y0)) as f64;
            let t = ((1.0 + mean).ln() / (1.0 + max).ln()).clamp(0.0, 1.0);
            *slot = shades[(t * (shades.len() - 1) as f64).round() as usize];
        }
    }
    if let PartitionSummary::Boxes { partitioning, .. } = out.summary() {
        for b in partitioning.boxes() {
            let r0 = b.lo()[0] * H / rows;
            let r1 = (b.hi()[0] * H).div_ceil(rows).min(H) - 1;
            let c0 = b.lo()[1] * W / cols;
            let c1 = (b.hi()[1] * W).div_ceil(cols).min(W) - 1;
            for row in [r0, r1] {
                canvas[row][c0..=c1].fill('-');
            }
            for line in canvas.iter_mut().take(r1 + 1).skip(r0) {
                line[c0] = '|';
                line[c1] = '|';
            }
        }
    }
    let mut s = String::with_capacity(H * (W + 1));
    for line in &canvas {
        s.extend(line.iter());
        s.push('\n');
    }
    s
}
