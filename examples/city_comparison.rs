//! Miniature of the paper's Figure 6: compare all six mechanisms across
//! the three city archetypes at a fixed budget, on random range queries.
//!
//! ```sh
//! cargo run --release -p dpod-examples --example city_comparison
//! ```

use dpod_core::paper_suite;
use dpod_data::City;
use dpod_dp::Epsilon;
use dpod_query::{evaluate, metrics::MreOptions, workload::QueryWorkload};

const GRID: usize = 256;
const POINTS: usize = 200_000;
const QUERIES: usize = 400;
const EPSILON: f64 = 0.1;

fn main() {
    let epsilon = Epsilon::new(EPSILON).expect("positive budget");
    let mechanisms = paper_suite();

    println!("MRE (%) on {QUERIES} random queries, {GRID}² grid, {POINTS} points, ε = {EPSILON}\n");
    print!("{:<18}", "mechanism");
    for city in City::ALL {
        print!("{:>12}", city.name());
    }
    println!();

    // Per-city data and workloads are fixed across mechanisms so the
    // comparison is apples-to-apples.
    let datasets: Vec<_> = City::ALL
        .iter()
        .map(|city| {
            let mut rng = dpod_dp::seeded_rng(7 + *city as u64);
            let matrix = city.model().population_matrix(GRID, POINTS, &mut rng);
            let queries = QueryWorkload::Random.draw_many(matrix.shape(), QUERIES, &mut rng);
            (matrix, queries)
        })
        .collect();

    for mech in &mechanisms {
        print!("{:<18}", mech.name());
        for (matrix, queries) in &datasets {
            let mut rng = dpod_dp::seeded_rng(99);
            let out = mech
                .sanitize(matrix, epsilon, &mut rng)
                .expect("sanitization succeeds");
            let report = evaluate(matrix, &out, queries, MreOptions::default());
            print!("{:>12.2}", report.stats.mean);
        }
        println!();
    }

    println!(
        "\nExpected shape (paper §6.3): IDENTITY/MKM an order of magnitude worse;\n\
         EBP strong in 2-D; DAF methods close behind and fastest to compute."
    );
}
