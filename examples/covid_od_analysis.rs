//! The paper's motivating scenario (§1): pandemic-spread analysis over
//! trajectories with intermediate stops, without exposing any individual's
//! movements.
//!
//! A health agency holds trips of the form *home → venue → work*. It wants
//! analysts to ask "how many people passed through the venue district on
//! their way across town?" — a 6-D range query — while individuals stay
//! protected by ε-differential privacy.
//!
//! ```sh
//! cargo run --release -p dpod-examples --example covid_od_analysis
//! ```

use dpod_core::{daf::DafEntropy, Mechanism};
use dpod_data::{City, OdMatrixBuilder, TrajectoryConfig};
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, PrefixSum};

fn main() {
    // 1. Simulate the sensitive input: 50 000 trips with one intermediate
    //    stop over the Denver archetype.
    let city = City::Denver.model();
    let mut rng = dpod_dp::seeded_rng(2020);
    let trips = TrajectoryConfig::with_stops(1).generate(&city, 50_000, &mut rng);
    println!(
        "collected {} trajectories (home → stop → destination)",
        trips.len()
    );

    // 2. Build the OD matrix with intermediate stops: 6 dimensions
    //    (x,y of origin, stop, destination), 8 cells per axis.
    let builder = OdMatrixBuilder::new(8);
    let od = builder
        .build_dense(&trips, 1)
        .expect("domain fits in memory");
    println!(
        "OD matrix: {:?} = {} cells, {:.3}% non-empty",
        od.shape().dims(),
        od.len(),
        100.0 * od.nonzero_count() as f64 / od.len() as f64
    );

    // 3. Publish it under ε = 0.5 with DAF-Entropy — the paper's
    //    density-aware mechanism, built for exactly this sparse
    //    high-dimensional regime.
    let epsilon = Epsilon::new(0.5).expect("positive budget");
    let private = DafEntropy::default()
        .sanitize(&od, epsilon, &mut rng)
        .expect("sanitization succeeds");
    println!(
        "published {} partitions under {epsilon}\n",
        private.num_partitions()
    );

    // 4. Exposure analysis on the private release: trips from the west
    //    half of town that stopped in the central venue district (cells
    //    3..5 in each stop axis) and ended anywhere.
    let full = AxisBox::full(od.shape());
    let exposure_query = AxisBox::new(
        //  origin x  origin y  stop x  stop y  dest x  dest y
        vec![0, 0, 3, 3, 0, 0],
        vec![4, 8, 5, 5, 8, 8],
    )
    .expect("valid query");

    let truth = PrefixSum::from_counts(&od);
    for (name, q) in [("exposure corridor", &exposure_query), ("all trips", &full)] {
        let t = truth.box_count(q) as f64;
        let p = private.range_sum(q);
        println!(
            "{name:<20} true {t:>9.0}   private {p:>10.1}   rel.err {:>6.1}%",
            (p - t).abs() / t.max(1.0) * 100.0
        );
    }

    println!(
        "\nEvery count above is covered by the ε-DP guarantee: no analyst can\n\
         tell whether any single person's trajectory was in the input."
    );

    // 5. Bonus (Fig. 2 of the paper): the same trips as a *time-framed*
    //    matrix where each frame picks its own spatial resolution —
    //    morning coarse (people are at home), noon fine (where did they
    //    stop?), evening medium.
    let frames = dpod_data::timeframe::FrameGrid::new(vec![4, 12, 6]).expect("valid frame grid");
    let framed = frames.build_dense(&trips).expect("domain fits");
    println!(
        "\ntime-framed matrix (morning 4², noon 12², evening 6²): dims {:?}, \
         {:.2}% non-empty",
        framed.shape().dims(),
        100.0 * framed.nonzero_count() as f64 / framed.len() as f64
    );
}
