//! The two-sided geometric ("discrete Laplace") mechanism.
//!
//! An integer-valued alternative to Laplace noise for count queries; the
//! paper lists "more sophisticated mechanisms in addition to Laplace noise
//! addition" as future work, and the ablation benches compare the two.
//!
//! For sensitivity `s` and budget ε, noise `k ∈ ℤ` is released with
//! `Pr[k] ∝ α^{|k|}` where `α = e^{−ε/s}`; this satisfies ε-DP for
//! integer-valued queries of L1-sensitivity `s`.

use crate::{DpError, Epsilon, Result};
use rand::RngCore;

/// Draws one sample of two-sided geometric noise with parameter `alpha ∈ (0,1)`.
///
/// Sampling: `k = G₁ − G₂` with `Gᵢ` i.i.d. geometric on `{0,1,…}` with
/// success probability `1 − α`; the difference has exactly the two-sided
/// geometric law.
#[inline]
pub fn sample_two_sided_geometric(rng: &mut dyn RngCore, alpha: f64) -> i64 {
    debug_assert!((0.0..1.0).contains(&alpha), "alpha must be in [0,1)");
    let g1 = sample_geometric(rng, alpha);
    let g2 = sample_geometric(rng, alpha);
    g1 - g2
}

/// Geometric sample on `{0, 1, 2, …}` with `Pr[k] = (1−α) α^k`,
/// via inversion: `k = ⌊ln(u)/ln(α)⌋`.
#[inline]
fn sample_geometric(rng: &mut dyn RngCore, alpha: f64) -> i64 {
    use rand::Rng;
    if alpha <= 0.0 {
        return 0;
    }
    let mut u: f64 = rng.gen();
    while u <= 0.0 {
        u = rng.gen();
    }
    (u.ln() / alpha.ln()).floor() as i64
}

/// The geometric mechanism for integer count queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricMechanism {
    sensitivity: f64,
}

impl GeometricMechanism {
    /// A mechanism for integer queries with the given L1-sensitivity.
    ///
    /// # Errors
    /// [`DpError::InvalidSensitivity`] unless finite and `> 0`.
    pub fn new(sensitivity: f64) -> Result<Self> {
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(DpError::InvalidSensitivity { value: sensitivity });
        }
        Ok(GeometricMechanism { sensitivity })
    }

    /// The sensitivity-1 mechanism for disjoint count queries.
    pub fn counting() -> Self {
        GeometricMechanism { sensitivity: 1.0 }
    }

    /// The decay parameter `α = e^{−ε/s}` at budget `epsilon`.
    #[inline]
    pub fn alpha(&self, epsilon: Epsilon) -> f64 {
        (-epsilon.value() / self.sensitivity).exp()
    }

    /// Noise standard deviation `√(2α)/(1−α)` at budget `epsilon`.
    pub fn noise_std(&self, epsilon: Epsilon) -> f64 {
        let a = self.alpha(epsilon);
        (2.0 * a).sqrt() / (1.0 - a)
    }

    /// Releases `true_count + noise` as an integer.
    #[inline]
    pub fn randomize(&self, true_count: i64, epsilon: Epsilon, rng: &mut dyn RngCore) -> i64 {
        true_count + sample_two_sided_geometric(rng, self.alpha(epsilon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn rejects_bad_sensitivity() {
        assert!(GeometricMechanism::new(0.0).is_err());
        assert!(GeometricMechanism::new(f64::INFINITY).is_err());
    }

    #[test]
    fn alpha_decreases_with_epsilon() {
        let m = GeometricMechanism::counting();
        let a1 = m.alpha(Epsilon::new(0.1).unwrap());
        let a2 = m.alpha(Epsilon::new(1.0).unwrap());
        assert!(a1 > a2, "more budget must mean faster decay");
        assert!(a1 < 1.0 && a2 > 0.0);
    }

    #[test]
    fn noise_is_zero_mean_integer() {
        let m = GeometricMechanism::counting();
        let e = Epsilon::new(0.5).unwrap();
        let mut rng = seeded_rng(77);
        let n = 100_000;
        let sum: i64 = (0..n).map(|_| m.randomize(0, e, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        // std ≈ √(2α)/(1−α) ≈ 3.2; s.e. of mean ≈ 0.01
        assert!(mean.abs() < 0.06, "mean {mean} too far from 0");
    }

    #[test]
    fn variance_matches_closed_form() {
        let m = GeometricMechanism::counting();
        let e = Epsilon::new(1.0).unwrap();
        let mut rng = seeded_rng(13);
        let n = 200_000;
        let samples: Vec<i64> = (0..n).map(|_| m.randomize(0, e, &mut rng)).collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let expected = m.noise_std(e).powi(2);
        assert!(
            (var - expected).abs() / expected < 0.05,
            "variance {var} vs expected {expected}"
        );
    }

    #[test]
    fn pmf_ratio_respects_dp_bound() {
        // Empirical PMF ratio between neighbouring counts 0 and 1 must stay
        // within e^ε (with sampling slack).
        let eps = 0.8;
        let m = GeometricMechanism::counting();
        let e = Epsilon::new(eps).unwrap();
        let mut rng = seeded_rng(3);
        let n = 300_000;
        let mut h0 = std::collections::HashMap::new();
        let mut h1 = std::collections::HashMap::new();
        for _ in 0..n {
            *h0.entry(m.randomize(0, e, &mut rng)).or_insert(0u32) += 1;
            *h1.entry(m.randomize(1, e, &mut rng)).or_insert(0u32) += 1;
        }
        for (k, &a) in &h0 {
            let b = h1.get(k).copied().unwrap_or(0);
            if a < 1000 || b < 1000 {
                continue;
            }
            let ratio = a as f64 / b as f64;
            let bound = eps.exp() * 1.1;
            assert!(
                ratio < bound && 1.0 / ratio < bound,
                "k={k}: ratio {ratio} violates bound"
            );
        }
    }
}
