//! # dpod-dp
//!
//! Differential-privacy primitives for the `dp-odmatrix` workspace:
//!
//! * [`Epsilon`] — a validated privacy-budget value;
//! * [`laplace`] — the Laplace mechanism (§2.1 of the paper, Eq. 2);
//! * [`geometric`] — the two-sided geometric mechanism (integer-valued
//!   alternative mentioned in the paper's future work; used by ablations);
//! * [`BudgetAccountant`] / [`SharedAccountant`] — sequential-composition
//!   ledgers that make every mechanism's budget arithmetic auditable and
//!   testable.
//!
//! All sampling is parameterized by `&mut dyn rand::RngCore` so mechanisms
//! stay object-safe and every experiment is reproducible from a seed.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod budget;
mod epsilon;
mod error;
pub mod geometric;
pub mod laplace;

pub use budget::{BudgetAccountant, BudgetSnapshot, LedgerEntry, SharedAccountant, BUDGET_SLACK};
pub use epsilon::Epsilon;
pub use error::DpError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DpError>;

/// Returns a seeded, portable RNG for reproducible experiments.
///
/// Every mechanism in the workspace takes `&mut dyn RngCore`; passing
/// `&mut seeded_rng(seed)` makes an entire sanitization run deterministic.
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
