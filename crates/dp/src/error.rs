use std::fmt;

/// Errors produced by the DP primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// Epsilon must be a finite, strictly positive number.
    InvalidEpsilon {
        /// The rejected value.
        value: f64,
    },
    /// Sensitivity must be a finite, strictly positive number.
    InvalidSensitivity {
        /// The rejected value.
        value: f64,
    },
    /// A spend request exceeded the remaining budget.
    BudgetExhausted {
        /// Budget requested by the caller.
        requested: f64,
        /// Budget still available in the accountant.
        remaining: f64,
        /// Label of the offending spend, for diagnostics.
        label: String,
    },
    /// A budget fraction was outside `(0, 1)`.
    InvalidFraction {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidEpsilon { value } => {
                write!(f, "invalid epsilon {value}: must be finite and > 0")
            }
            DpError::InvalidSensitivity { value } => {
                write!(f, "invalid sensitivity {value}: must be finite and > 0")
            }
            DpError::BudgetExhausted {
                requested,
                remaining,
                label,
            } => write!(
                f,
                "budget exhausted at '{label}': requested {requested}, remaining {remaining}"
            ),
            DpError::InvalidFraction { value } => {
                write!(f, "invalid budget fraction {value}: must be in (0, 1)")
            }
        }
    }
}

impl std::error::Error for DpError {}
