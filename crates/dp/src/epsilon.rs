use crate::{DpError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated privacy budget ε: finite and strictly positive.
///
/// Lower values mean stricter privacy and more noise (§2.1). The newtype
/// prevents the classic unit bugs — passing a noise *scale* where a *budget*
/// is expected, or spending a negative amount.
///
/// ```
/// use dpod_dp::Epsilon;
/// let e = Epsilon::new(0.5).unwrap();
/// let (part, rest) = e.split_fraction(0.1).unwrap();
/// assert!((part.value() - 0.05).abs() < 1e-12);
/// assert!((rest.value() - 0.45).abs() < 1e-12);
/// assert!(Epsilon::new(-1.0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Validates and wraps a budget value.
    ///
    /// # Errors
    /// [`DpError::InvalidEpsilon`] unless `value` is finite and `> 0`.
    pub fn new(value: f64) -> Result<Self> {
        if !value.is_finite() || value <= 0.0 {
            return Err(DpError::InvalidEpsilon { value });
        }
        Ok(Epsilon(value))
    }

    /// The raw budget value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Splits the budget into `(fraction · ε, (1 − fraction) · ε)`.
    ///
    /// Used for the paper's ε₀ (Alg. 1) and DAF-Homogeneity's
    /// `(ε_prt, ε_data)` split (Eq. 20).
    ///
    /// # Errors
    /// [`DpError::InvalidFraction`] unless `fraction ∈ (0, 1)`.
    pub fn split_fraction(self, fraction: f64) -> Result<(Epsilon, Epsilon)> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(DpError::InvalidFraction { value: fraction });
        }
        Ok((
            Epsilon(self.0 * fraction),
            Epsilon(self.0 * (1.0 - fraction)),
        ))
    }

    /// Divides the budget evenly across `n` sequential uses.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn divide(self, n: usize) -> Epsilon {
        assert!(n > 0, "cannot divide a budget across zero uses");
        Epsilon(self.0 / n as f64)
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_values() {
        for bad in [0.0, -0.1, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Epsilon::new(bad).is_err(), "accepted {bad}");
        }
        assert!(Epsilon::new(1e-12).is_ok());
    }

    #[test]
    fn split_fraction_conserves_budget() {
        let e = Epsilon::new(0.3).unwrap();
        let (a, b) = e.split_fraction(0.25).unwrap();
        assert!((a.value() + b.value() - 0.3).abs() < 1e-15);
        assert!(e.split_fraction(0.0).is_err());
        assert!(e.split_fraction(1.0).is_err());
        assert!(e.split_fraction(f64::NAN).is_err());
    }

    #[test]
    fn divide_splits_evenly() {
        let e = Epsilon::new(1.0).unwrap();
        assert!((e.divide(4).value() - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero uses")]
    fn divide_by_zero_panics() {
        let _ = Epsilon::new(1.0).unwrap().divide(0);
    }
}
