//! The Laplace mechanism (Eq. 2 of the paper).
//!
//! For a query with L1-sensitivity `s` and budget ε, noise is drawn from
//! `Lap(b)` with scale `b = s/ε`; the paper writes this `Lap(s/ε)`.

use crate::{DpError, Epsilon, Result};
use rand::RngCore;

/// Draws one sample from the zero-mean Laplace distribution with scale `b`.
///
/// Uses the inverse-CDF transform `x = −b · sgn(u) · ln(1 − 2|u|)` with
/// `u ~ U(−½, ½)`, guarded against `ln(0)`.
///
/// # Panics
/// Debug-asserts that `b` is finite and positive.
#[inline]
pub fn sample_laplace(rng: &mut dyn RngCore, scale: f64) -> f64 {
    debug_assert!(
        scale.is_finite() && scale > 0.0,
        "bad Laplace scale {scale}"
    );
    use rand::Rng;
    // Uniform in (−0.5, 0.5]; reject the exact 0.5 endpoint so that
    // 1 − 2|u| never reaches zero.
    let mut u = rng.gen::<f64>() - 0.5;
    while 1.0 - 2.0 * u.abs() <= 0.0 {
        u = rng.gen::<f64>() - 0.5;
    }
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// The Laplace mechanism for real-valued queries of known L1-sensitivity.
///
/// ```
/// use dpod_dp::{laplace::LaplaceMechanism, Epsilon};
/// let mech = LaplaceMechanism::new(1.0).unwrap();
/// let mut rng = dpod_dp::seeded_rng(7);
/// let noisy = mech.randomize(42.0, Epsilon::new(0.5).unwrap(), &mut rng);
/// assert!((noisy - 42.0).abs() < 100.0); // noise has scale 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    sensitivity: f64,
}

impl LaplaceMechanism {
    /// A mechanism for queries with the given L1-sensitivity.
    ///
    /// Disjoint-partition count queries — the only queries the paper's
    /// mechanisms release — have sensitivity 1 ([`LaplaceMechanism::counting`]).
    ///
    /// # Errors
    /// [`DpError::InvalidSensitivity`] unless finite and `> 0`.
    pub fn new(sensitivity: f64) -> Result<Self> {
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(DpError::InvalidSensitivity { value: sensitivity });
        }
        Ok(LaplaceMechanism { sensitivity })
    }

    /// The sensitivity-1 mechanism for disjoint count queries.
    pub fn counting() -> Self {
        LaplaceMechanism { sensitivity: 1.0 }
    }

    /// The query sensitivity `s`.
    #[inline]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Noise scale `b = s/ε` used at budget `epsilon`.
    #[inline]
    pub fn scale(&self, epsilon: Epsilon) -> f64 {
        self.sensitivity / epsilon.value()
    }

    /// Standard deviation `√2·b` of the released noise at budget `epsilon`.
    #[inline]
    pub fn noise_std(&self, epsilon: Epsilon) -> f64 {
        std::f64::consts::SQRT_2 * self.scale(epsilon)
    }

    /// Releases `true_value + Lap(s/ε)`.
    #[inline]
    pub fn randomize(&self, true_value: f64, epsilon: Epsilon, rng: &mut dyn RngCore) -> f64 {
        true_value + sample_laplace(rng, self.scale(epsilon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn rejects_bad_sensitivity() {
        assert!(LaplaceMechanism::new(0.0).is_err());
        assert!(LaplaceMechanism::new(-2.0).is_err());
        assert!(LaplaceMechanism::new(f64::NAN).is_err());
    }

    #[test]
    fn scale_and_std() {
        let m = LaplaceMechanism::new(2.0).unwrap();
        let e = Epsilon::new(0.5).unwrap();
        assert!((m.scale(e) - 4.0).abs() < 1e-12);
        assert!((m.noise_std(e) - 4.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn samples_are_zero_mean_with_laplace_variance() {
        let mut rng = seeded_rng(12345);
        let b = 3.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(&mut rng, b)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // Var[Lap(b)] = 2 b² = 18. Std error of the mean ≈ b√2/√n ≈ 0.0095.
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 18.0).abs() < 0.6, "variance {var} too far from 18");
    }

    #[test]
    fn samples_match_laplace_quantiles() {
        let mut rng = seeded_rng(999);
        let b = 1.0;
        let n = 100_000usize;
        let mut samples: Vec<f64> = (0..n).map(|_| sample_laplace(&mut rng, b)).collect();
        samples.sort_by(|a, c| a.partial_cmp(c).unwrap());
        // CDF of Laplace(0, 1): F(x) = ½ exp(x) for x<0; 1 − ½ exp(−x) else.
        let cdf = |x: f64| {
            if x < 0.0 {
                0.5 * x.exp()
            } else {
                1.0 - 0.5 * (-x).exp()
            }
        };
        for q in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let emp = samples[(q * n as f64) as usize];
            let p = cdf(emp);
            assert!(
                (p - q).abs() < 0.01,
                "quantile {q}: empirical value {emp} has CDF {p}"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let m = LaplaceMechanism::counting();
        let e = Epsilon::new(0.1).unwrap();
        let a: Vec<f64> = {
            let mut rng = seeded_rng(5);
            (0..10).map(|_| m.randomize(0.0, e, &mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = seeded_rng(5);
            (0..10).map(|_| m.randomize(0.0, e, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    /// Empirical ε-DP check on a single counting query: the densities of
    /// noisy outputs for neighbouring counts (0 vs 1) must differ by at most
    /// e^ε (up to sampling slack). Not a proof — a regression tripwire for
    /// the sampler.
    #[test]
    fn empirical_dp_ratio_single_query() {
        let eps = 1.0;
        let m = LaplaceMechanism::counting();
        let e = Epsilon::new(eps).unwrap();
        let n = 400_000;
        let mut rng = seeded_rng(31);
        let hist = |true_v: f64, rng: &mut rand::rngs::StdRng| {
            let mut buckets = vec![0u32; 40];
            for _ in 0..n {
                let x = m.randomize(true_v, e, rng);
                // Buckets of width 0.25 over [−5, 5].
                let b = (((x + 5.0) / 0.25) as isize).clamp(0, 39) as usize;
                buckets[b] += 1;
            }
            buckets
        };
        let h0 = hist(0.0, &mut rng);
        let h1 = hist(1.0, &mut rng);
        for (i, (&a, &b)) in h0.iter().zip(&h1).enumerate() {
            if a < 500 || b < 500 {
                continue; // skip sparsely populated tails
            }
            let ratio = a as f64 / b as f64;
            let bound = eps.exp() * 1.15; // 15% sampling slack
            assert!(
                ratio < bound && 1.0 / ratio < bound,
                "bucket {i}: ratio {ratio} violates e^eps bound"
            );
        }
    }
}
