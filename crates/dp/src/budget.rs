use crate::{DpError, Epsilon, Result};
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::Arc;

/// Relative tolerance for float drift in budget arithmetic.
///
/// Mechanisms compute per-level budgets with closed-form expressions whose
/// rounding error accumulates over a handful of additions; a spend within
/// this relative tolerance of the remaining budget is accepted and clamped.
pub const BUDGET_SLACK: f64 = 1e-9;

/// One recorded budget expenditure.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LedgerEntry {
    /// What the budget was spent on (e.g. `"root count"`, `"level 3"`).
    pub label: String,
    /// Amount of ε spent.
    pub epsilon: f64,
}

/// A sequential-composition budget ledger.
///
/// The paper's mechanisms carve one total budget ε_tot into many pieces
/// (ε₀ for the noisy total, per-level budgets, partitioning vs data budgets
/// …) whose sum must never exceed ε_tot along any root→leaf path. The
/// accountant makes that arithmetic explicit: every `spend` is validated,
/// recorded and replayable.
///
/// ```
/// use dpod_dp::{BudgetAccountant, Epsilon};
/// let mut acc = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
/// let e0 = acc.spend(0.01, "noisy total").unwrap();
/// assert!((e0.value() - 0.01).abs() < 1e-12);
/// assert!((acc.remaining() - 0.99).abs() < 1e-12);
/// assert!(acc.spend(2.0, "too much").is_err());
/// ```
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    total: f64,
    spent: f64,
    ledger: Vec<LedgerEntry>,
}

impl BudgetAccountant {
    /// A fresh accountant holding `total` budget.
    pub fn new(total: Epsilon) -> Self {
        BudgetAccountant {
            total: total.value(),
            spent: 0.0,
            ledger: Vec::new(),
        }
    }

    /// The total budget this accountant started with.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget spent so far.
    #[inline]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available (never negative).
    #[inline]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Records a spend of `epsilon`, returning it as a validated [`Epsilon`].
    ///
    /// Requests within [`BUDGET_SLACK`] (relative) of the remaining budget
    /// are clamped to it, so "spend everything that is left" patterns are
    /// exact.
    ///
    /// # Errors
    /// [`DpError::InvalidEpsilon`] for non-positive requests;
    /// [`DpError::BudgetExhausted`] when the request exceeds the remainder.
    pub fn spend(&mut self, epsilon: f64, label: &str) -> Result<Epsilon> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(DpError::InvalidEpsilon { value: epsilon });
        }
        let remaining = self.remaining();
        let slack = BUDGET_SLACK * self.total.max(1.0);
        if epsilon > remaining + slack {
            return Err(DpError::BudgetExhausted {
                requested: epsilon,
                remaining,
                label: label.to_string(),
            });
        }
        let granted = epsilon.min(remaining);
        // `granted` can only be zero if remaining was within slack of zero
        // while epsilon was positive — treat as exhaustion, not a free pass.
        let granted_eps = Epsilon::new(granted).map_err(|_| DpError::BudgetExhausted {
            requested: epsilon,
            remaining,
            label: label.to_string(),
        })?;
        self.spent += granted;
        self.ledger.push(LedgerEntry {
            label: label.to_string(),
            epsilon: granted,
        });
        Ok(granted_eps)
    }

    /// Spends everything that is left.
    ///
    /// # Errors
    /// [`DpError::BudgetExhausted`] when nothing remains.
    pub fn spend_rest(&mut self, label: &str) -> Result<Epsilon> {
        let rest = self.remaining();
        self.spend(rest, label)
    }

    /// Returns `epsilon` of previously-spent budget to the pool,
    /// reporting how much actually flowed back.
    ///
    /// This is the retention path of a continually-published series: when
    /// an expired epoch is tombstoned, the ε it consumed is no longer
    /// held against the series and may be re-spent on future epochs. The
    /// refund is clamped to what is currently spent (so `spent` never
    /// goes negative, however the caller races removals) and recorded as
    /// a negative ledger entry, keeping the history replayable: summing
    /// the ledger always reproduces `spent`.
    ///
    /// # Errors
    /// [`DpError::InvalidEpsilon`] for non-positive or non-finite
    /// requests.
    pub fn release(&mut self, epsilon: f64, label: &str) -> Result<f64> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(DpError::InvalidEpsilon { value: epsilon });
        }
        let refunded = epsilon.min(self.spent);
        self.spent -= refunded;
        self.ledger.push(LedgerEntry {
            label: label.to_string(),
            epsilon: -refunded,
        });
        Ok(refunded)
    }

    /// The recorded expenditure history.
    pub fn ledger(&self) -> &[LedgerEntry] {
        &self.ledger
    }
}

/// A point-in-time view of a budget ledger, shaped for metrics export.
///
/// This is what the serving layer's ε-budget gauges are built from: a
/// monitoring scrape needs the three totals (not the entry-by-entry
/// history) as one consistent reading, which a pile of separate
/// `total()` / `spent()` calls on a [`SharedAccountant`] cannot give.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BudgetSnapshot {
    /// Total budget the accountant started with.
    pub total: f64,
    /// Budget spent so far.
    pub spent: f64,
    /// Budget still available (never negative).
    pub remaining: f64,
    /// Number of recorded expenditures.
    pub entries: usize,
}

impl BudgetAccountant {
    /// A consistent snapshot of the budget state for metrics export.
    pub fn snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            total: self.total,
            spent: self.spent,
            remaining: self.remaining(),
            entries: self.ledger.len(),
        }
    }
}

/// A thread-safe accountant for instrumenting concurrent experiments.
///
/// The mechanisms themselves are single-threaded per sanitization run (the
/// DAF recursion is inherently sequential in its budget arithmetic), but
/// the reproduction harness runs many sanitizations in parallel and the
/// integration tests attach one shared ledger across a whole experiment.
#[derive(Debug, Clone)]
pub struct SharedAccountant {
    inner: Arc<Mutex<BudgetAccountant>>,
}

impl SharedAccountant {
    /// A fresh shared accountant holding `total` budget.
    pub fn new(total: Epsilon) -> Self {
        SharedAccountant {
            inner: Arc::new(Mutex::new(BudgetAccountant::new(total))),
        }
    }

    /// See [`BudgetAccountant::spend`].
    ///
    /// # Errors
    /// Same as [`BudgetAccountant::spend`].
    pub fn spend(&self, epsilon: f64, label: &str) -> Result<Epsilon> {
        self.inner.lock().spend(epsilon, label)
    }

    /// See [`BudgetAccountant::release`].
    ///
    /// # Errors
    /// Same as [`BudgetAccountant::release`].
    pub fn release(&self, epsilon: f64, label: &str) -> Result<f64> {
        self.inner.lock().release(epsilon, label)
    }

    /// See [`BudgetAccountant::remaining`].
    pub fn remaining(&self) -> f64 {
        self.inner.lock().remaining()
    }

    /// See [`BudgetAccountant::spent`].
    pub fn spent(&self) -> f64 {
        self.inner.lock().spent()
    }

    /// Snapshot of the ledger.
    pub fn ledger(&self) -> Vec<LedgerEntry> {
        self.inner.lock().ledger().to_vec()
    }

    /// See [`BudgetAccountant::snapshot`] — one lock acquisition, so the
    /// three totals are mutually consistent even under concurrent spends.
    pub fn snapshot(&self) -> BudgetSnapshot {
        self.inner.lock().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn spend_tracks_ledger() {
        let mut acc = BudgetAccountant::new(eps(1.0));
        acc.spend(0.3, "a").unwrap();
        acc.spend(0.2, "b").unwrap();
        assert!((acc.spent() - 0.5).abs() < 1e-12);
        assert_eq!(acc.ledger().len(), 2);
        assert_eq!(acc.ledger()[0].label, "a");
    }

    #[test]
    fn overspend_is_rejected() {
        let mut acc = BudgetAccountant::new(eps(0.5));
        acc.spend(0.4, "a").unwrap();
        let err = acc.spend(0.2, "b").unwrap_err();
        assert!(matches!(err, DpError::BudgetExhausted { .. }));
        // The failed spend must not alter state.
        assert!((acc.remaining() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn float_drift_within_slack_is_clamped() {
        let mut acc = BudgetAccountant::new(eps(1.0));
        // Ten spends of a tenth each, accumulating float error.
        for i in 0..9 {
            acc.spend(0.1, &format!("part {i}")).unwrap();
        }
        // The "last tenth" computed as 1.0 − 9·0.1 carries rounding error.
        let last = 1.0 - 9.0f64 * 0.1;
        let granted = acc.spend(last, "last").unwrap();
        assert!(granted.value() > 0.0);
        assert!(acc.remaining() < 1e-9);
    }

    #[test]
    fn spend_rest_drains_budget() {
        let mut acc = BudgetAccountant::new(eps(0.7));
        acc.spend(0.25, "half").unwrap();
        let rest = acc.spend_rest("rest").unwrap();
        assert!((rest.value() - 0.45).abs() < 1e-12);
        assert_eq!(acc.remaining(), 0.0);
        assert!(acc.spend_rest("again").is_err());
    }

    #[test]
    fn invalid_spends_rejected() {
        let mut acc = BudgetAccountant::new(eps(1.0));
        assert!(acc.spend(0.0, "zero").is_err());
        assert!(acc.spend(-0.1, "negative").is_err());
        assert!(acc.spend(f64::NAN, "nan").is_err());
    }

    #[test]
    fn snapshot_reports_consistent_totals() {
        let mut acc = BudgetAccountant::new(eps(1.0));
        acc.spend(0.3, "a").unwrap();
        acc.spend(0.2, "b").unwrap();
        let snap = acc.snapshot();
        assert_eq!(snap.total, 1.0);
        assert!((snap.spent - 0.5).abs() < 1e-12);
        assert!((snap.remaining - 0.5).abs() < 1e-12);
        assert_eq!(snap.entries, 2);
        let shared = SharedAccountant::new(eps(0.7));
        shared.spend(0.7, "all").unwrap();
        let snap = shared.snapshot();
        assert_eq!(snap.remaining, 0.0);
        assert_eq!(snap.entries, 1);
    }

    #[test]
    fn release_refunds_spent_budget() {
        let mut acc = BudgetAccountant::new(eps(1.0));
        acc.spend(0.6, "epoch 1").unwrap();
        acc.spend(0.3, "epoch 2").unwrap();
        // Retiring epoch 1 returns its ε for future epochs.
        let refunded = acc.release(0.6, "retire epoch 1").unwrap();
        assert!((refunded - 0.6).abs() < 1e-12);
        assert!((acc.spent() - 0.3).abs() < 1e-12);
        assert!((acc.remaining() - 0.7).abs() < 1e-12);
        // The refund is a ledger row, and the ledger still sums to spent.
        assert_eq!(acc.ledger().len(), 3);
        let sum: f64 = acc.ledger().iter().map(|e| e.epsilon).sum();
        assert!((sum - acc.spent()).abs() < 1e-12);
        // The returned budget is spendable again.
        acc.spend(0.7, "epoch 3").unwrap();
        assert!(acc.remaining() < 1e-12);
    }

    #[test]
    fn release_clamps_to_spent_and_rejects_invalid() {
        let mut acc = BudgetAccountant::new(eps(1.0));
        acc.spend(0.2, "a").unwrap();
        // Over-refunding (a racing double-remove) clamps: spent never
        // goes negative, remaining never exceeds total.
        let refunded = acc.release(0.5, "over").unwrap();
        assert!((refunded - 0.2).abs() < 1e-12);
        assert_eq!(acc.spent(), 0.0);
        assert_eq!(acc.remaining(), 1.0);
        assert!(acc.release(0.0, "zero").is_err());
        assert!(acc.release(-0.1, "negative").is_err());
        assert!(acc.release(f64::NAN, "nan").is_err());
    }

    /// Regression: scraping `snapshot()` while publishes spend and
    /// removals release must never observe double-counted or torn
    /// totals, and must never panic. Every snapshot is taken under the
    /// same lock as the mutations, so `total == spent + remaining` (up
    /// to float rounding) and `0 ≤ spent ≤ total` must hold in every
    /// observation, however the threads interleave.
    #[test]
    fn snapshot_stays_consistent_under_racing_spend_and_release() {
        let acc = SharedAccountant::new(eps(1.0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut workers = Vec::new();
        for t in 0..4u64 {
            let acc = acc.clone();
            workers.push(std::thread::spawn(move || {
                for i in 0..500 {
                    // Publish an epoch's worth, then retire it.
                    if acc.spend(0.01, &format!("t{t} epoch {i}")).is_ok() {
                        acc.release(0.01, &format!("t{t} retire {i}")).unwrap();
                    }
                }
            }));
        }
        let scrapers: Vec<_> = (0..2)
            .map(|_| {
                let acc = acc.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    loop {
                        let snap = acc.snapshot();
                        assert!(snap.spent >= 0.0, "spent went negative: {snap:?}");
                        assert!(
                            snap.spent <= snap.total + 1e-9,
                            "spent exceeds total: {snap:?}"
                        );
                        assert!(
                            (snap.total - (snap.spent + snap.remaining)).abs() < 1e-9,
                            "torn snapshot: {snap:?}"
                        );
                        seen += 1;
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for s in scrapers {
            assert!(s.join().unwrap() > 0, "scraper never ran");
        }
        // Every spend was matched by a release: the pool is whole again.
        assert!(acc.spent().abs() < 1e-9);
        assert!((acc.remaining() - 1.0).abs() < 1e-9);
        // And the full history (spends + refunds) is still replayable.
        let sum: f64 = acc.ledger().iter().map(|e| e.epsilon).sum();
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    fn shared_accountant_is_thread_safe() {
        let acc = SharedAccountant::new(eps(1.0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let acc = acc.clone();
                std::thread::spawn(move || acc.spend(0.1, &format!("t{i}")).is_ok())
            })
            .collect();
        let successes = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count();
        // 8 threads each requesting 0.1 of a 1.0 budget: all succeed.
        assert_eq!(successes, 8);
        assert!((acc.spent() - 0.8).abs() < 1e-9);
    }
}
