//! Property-based tests for the DP primitives.

use dpod_dp::{laplace::sample_laplace, BudgetAccountant, Epsilon};
use proptest::prelude::*;

proptest! {
    /// Laplace samples are always finite for any positive scale.
    #[test]
    fn laplace_samples_are_finite(scale in 1e-6f64..1e6, seed in any::<u64>()) {
        let mut rng = dpod_dp::seeded_rng(seed);
        for _ in 0..50 {
            let x = sample_laplace(&mut rng, scale);
            prop_assert!(x.is_finite());
        }
    }

    /// Any sequence of valid spends never drives the accountant negative
    /// and the ledger always sums to `spent`.
    #[test]
    fn accountant_invariants(
        total in 0.01f64..10.0,
        fracs in prop::collection::vec(0.01f64..0.5, 1..20)
    ) {
        let mut acc = BudgetAccountant::new(Epsilon::new(total).unwrap());
        for (i, f) in fracs.iter().enumerate() {
            let req = f * total;
            let _ = acc.spend(req, &format!("spend {i}"));
            prop_assert!(acc.spent() <= acc.total() + 1e-9);
            prop_assert!(acc.remaining() >= 0.0);
        }
        let ledger_sum: f64 = acc.ledger().iter().map(|e| e.epsilon).sum();
        prop_assert!((ledger_sum - acc.spent()).abs() < 1e-9);
    }

    /// split_fraction conserves the budget exactly for any valid fraction.
    #[test]
    fn split_fraction_conserves(v in 1e-6f64..100.0, f in 0.001f64..0.999) {
        let e = Epsilon::new(v).unwrap();
        let (a, b) = e.split_fraction(f).unwrap();
        prop_assert!(((a.value() + b.value()) - v).abs() <= 1e-12 * v.max(1.0));
        prop_assert!(a.value() > 0.0 && b.value() > 0.0);
    }

    /// Seeded sampling is reproducible.
    #[test]
    fn laplace_deterministic_per_seed(seed in any::<u64>()) {
        let mut r1 = dpod_dp::seeded_rng(seed);
        let mut r2 = dpod_dp::seeded_rng(seed);
        for _ in 0..10 {
            prop_assert_eq!(
                sample_laplace(&mut r1, 2.0),
                sample_laplace(&mut r2, 2.0)
            );
        }
    }
}
