//! The `DPRB` binary query protocol: length-prefixed frames for
//! interactive-rate analyst traffic.
//!
//! NDJSON (see [`crate::protocol`]) is self-describing and easy to drive
//! from a shell, but serialization dominates its cost: the in-process
//! engine answers ~30× more queries per second than a JSON-per-line
//! socket. `DPRB` closes that gap by packing the same [`Request`] /
//! [`Response`] values as raw little-endian words.
//!
//! ## Connection preamble
//!
//! The server sniffs the first four bytes of every connection. A client
//! that opens with the magic `DPRB` followed by a version byte speaks
//! binary for the lifetime of the connection; anything else is served as
//! newline-delimited JSON (so existing NDJSON clients need no change).
//!
//! ```text
//! preamble (client → server, once):
//!   magic   "DPRB"   4 bytes
//!   version u8       low 7 bits: currently 1; high bit: feature flag
//! ```
//!
//! The version byte's high bit ([`WIRE_FEATURE_PACKED`]) is a feature
//! advertisement, not a version bump: a client setting it declares it
//! understands the packed (varint) opcodes below, and the server is then
//! free to answer with them. Clients that never set the bit — every
//! pre-packing binary — get byte-identical legacy frames, and a packed
//! client talking to a pre-packing server is refused with the same named
//! version error any unknown version gets (the bit is only meaningful on
//! servers that know to mask it off).
//!
//! ## Frames
//!
//! After the preamble, each direction is a stream of length-prefixed
//! frames. The body reuses the workspace framing primitives
//! ([`FrameWriter`]/[`FrameReader`]), so it carries the same magic and
//! version redundantly — a cheap 5-byte self-check that keeps a desynced
//! stream from being misread as valid requests.
//!
//! ```text
//! frame:
//!   len     u32      body length, ≤ MAX_FRAME_BYTES
//!   body:
//!     magic   "DPRB" 4 bytes
//!     version u8     currently 1
//!     opcode  u8     see below
//!     payload …      opcode-specific, little-endian
//! ```
//!
//! Request opcodes: `0x01` Query (release, lo, hi), `0x02` Batch
//! (release + packed coordinate array), `0x03` List, `0x04` Stats,
//! `0x05` Plan (release + typed plan tree), `0x06` packed Batch
//! (delta+zigzag varint coordinates).
//! Response opcodes: `0x81` Value, `0x82` Values, `0x83` Releases,
//! `0x84` Stats, `0x85` Answer (typed answer tree), `0x86` packed
//! Values, `0x87` packed Answer, `0xEF` Error.
//! Opcodes `0x01`–`0x04`/`0x81`–`0x84`/`0xEF` are byte-for-byte
//! unchanged from before the plan algebra existed; `0x05`/`0x85` and
//! the packed trio are additive, so legacy clients are untouched.
//!
//! ## Packed opcodes (`0x06`/`0x86`/`0x87`)
//!
//! Negotiated via [`WIRE_FEATURE_PACKED`]; emitted only by
//! [`encode_request_packed`]/[`encode_response_packed`], decoded
//! unconditionally (additive, like the plan opcodes). A packed batch
//! flattens its `count × 2d` coordinates and stores each word as the
//! zigzag varint of its delta from the previous word — grid coordinates
//! cluster, so most words collapse to one byte against eight. Dense f64
//! vectors (`Values`, `Marginal` payloads inside a packed `Answer`)
//! store each value as the varint of its IEEE-754 bits XOR the previous
//! value's bits: repeated values collapse to one byte and shared
//! sign/exponent prefixes drop, while worst-case noise costs at most two
//! bytes over raw. Both blob forms are length-prefixed, so the usual
//! bytes-present validation still runs before any allocation.
//!
//! A homogeneous `Batch` — every range with the same dimensionality `d`
//! — is packed as `u16 d`, `u64 count`, then `count × 2d` raw `u64`
//! coordinates (`lo[0..d]` then `hi[0..d]` per range): zero per-range
//! framing, one memcpy-shaped decode. The degenerate heterogeneous case
//! (expressible in JSON, so it must round-trip) uses the sentinel
//! `d = 0xFFFF` and length-prefixed per-range corners. `Values`
//! responses are a `u64` count followed by raw IEEE-754 bit patterns.
//!
//! ## Plan and answer trees (opcodes `0x05`/`0x85`)
//!
//! A `Plan` payload is the release name then a tagged plan tree:
//! `0x01` Range (lo\[\], hi\[\]), `0x02` Od (presence-byte-prefixed
//! origin/destination regions of 4 raw u64 corners each, then
//! `u64 count` × (u64 stop index + region)), `0x03` Marginal (keep\[\]),
//! `0x04` TopK (u64 k), `0x05` Total, `0x06` Many (u64 count + nested
//! plans), `0x07` Window (selector tag + ids, merge tag, nested plan),
//! `0x08` DrillDown (u64 pyramid level + nested plan).
//! An `Answer` payload mirrors it with packed encodings for the
//! hot variants: `0x01` Value (f64), `0x02` Marginal (dims\[\] + a raw
//! f64 vector), `0x03` TopK (dims\[\], u64 count, then `count` packed
//! flat-index/value u64 word pairs), `0x04` Many (u64 count + nested
//! answers), `0x05` Epochs (u64 count + raw epoch ids, then u64 count +
//! nested answers). The `0x07`/`0x05` window tags are additive: earlier
//! encoders never emit them and earlier decoders reject them as unknown
//! tags, so legacy bytes are untouched.
//!
//! Every decode error is a descriptive [`WireError`], never a panic; the
//! declared lengths are validated against the bytes actually present
//! before any allocation.

use crate::protocol::{ReleaseHits, ReleaseInfo, Request, Response, ServerStats, StageLatency};
use dpod_fmatrix::codec::{FrameReader, FrameWriter};
use dpod_query::{Answer, EpochSelector, QueryPlan, Region, TopCell, WindowMerge};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Frame magic, shared with the workspace frame registry.
pub use dpod_fmatrix::codec::{WIRE_MAGIC, WIRE_VERSION};

/// Upper bound on one frame body; a peer declaring more is disconnected
/// (64 MiB holds a ~1.3M-range 2-d batch or a ~8M-value response).
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Preamble feature bit: the client understands the packed (varint)
/// opcodes and the server may answer with them. Or-ed onto the version
/// byte of the connection preamble only — frame bodies always carry the
/// plain [`WIRE_VERSION`], so every frame stays decodable in isolation.
pub const WIRE_FEATURE_PACKED: u8 = 0x80;

/// Sentinel dimensionality marking a heterogeneous batch encoding.
const MIXED_NDIM: u16 = u16::MAX;

const OP_QUERY: u8 = 0x01;
const OP_BATCH: u8 = 0x02;
const OP_LIST: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_PLAN: u8 = 0x05;
const OP_BATCH_PACKED: u8 = 0x06;
const OP_VALUE: u8 = 0x81;
const OP_VALUES: u8 = 0x82;
const OP_RELEASES: u8 = 0x83;
const OP_STATS_RESP: u8 = 0x84;
const OP_ANSWER: u8 = 0x85;
const OP_VALUES_PACKED: u8 = 0x86;
const OP_ANSWER_PACKED: u8 = 0x87;
const OP_ERROR: u8 = 0xEF;

// Plan tags inside an `OP_PLAN` payload (one per `QueryPlan` variant).
// `PLAN_WINDOW` and `PLAN_DRILL_DOWN` are additive: older encoders never
// emit them and older decoders reject them as unknown tags, so legacy
// bytes are untouched (the pinned-bytes tests below prove it).
const PLAN_RANGE: u8 = 0x01;
const PLAN_OD: u8 = 0x02;
const PLAN_MARGINAL: u8 = 0x03;
const PLAN_TOP_K: u8 = 0x04;
const PLAN_TOTAL: u8 = 0x05;
const PLAN_MANY: u8 = 0x06;
const PLAN_WINDOW: u8 = 0x07;
const PLAN_DRILL_DOWN: u8 = 0x08;

// Epoch-selector tags inside a `PLAN_WINDOW` payload.
const SELECT_AT: u8 = 0x01;
const SELECT_LAST_K: u8 = 0x02;
const SELECT_RANGE: u8 = 0x03;

// Window-merge tags inside a `PLAN_WINDOW` payload.
const MERGE_SUM: u8 = 0x01;
const MERGE_PER_EPOCH: u8 = 0x02;

// Answer tags inside an `OP_ANSWER` payload (one per `Answer` variant;
// `ANSWER_EPOCHS` is additive, as `PLAN_WINDOW` above).
const ANSWER_VALUE: u8 = 0x01;
const ANSWER_MARGINAL: u8 = 0x02;
const ANSWER_TOP_K: u8 = 0x03;
const ANSWER_MANY: u8 = 0x04;
const ANSWER_EPOCHS: u8 = 0x05;

/// Deepest `Many` nesting the decoder will follow. The executor rejects
/// nested `Many` anyway; this cap merely keeps an adversarial frame from
/// recursing the decoder off the stack.
const MAX_PLAN_DEPTH: usize = 32;

/// A batch's half-open ranges, as `(lo, hi)` corner pairs.
pub type RangeList = Vec<(Vec<usize>, Vec<usize>)>;

/// Message [`read_frame`] uses for a socket read timeout, so servers can
/// tell an idle peer (close silently, as the JSON path does) from a
/// protocol violation (answer with an error frame).
const IDLE_TIMEOUT_MSG: &str = "connection idle timeout";

/// A protocol violation: framing, length, or payload decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    /// `true` when this error is a socket read timeout (an idle peer,
    /// not a protocol violation).
    pub fn is_idle_timeout(&self) -> bool {
        self.0 == IDLE_TIMEOUT_MSG
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<dpod_fmatrix::FmError> for WireError {
    fn from(e: dpod_fmatrix::FmError) -> Self {
        WireError(format!("bad frame: {e}"))
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError(format!("io: {e}"))
    }
}

fn writer(cap: usize, opcode: u8) -> FrameWriter {
    let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, cap + 1);
    w.put_u8(opcode);
    w
}

/// Strings on the wire are u64-length-prefixed UTF-8 (release names and
/// error messages have no 64 KiB ceiling the way `put_str` assumes).
fn put_wire_str(w: &mut FrameWriter, s: &str) {
    w.put_bytes(s.as_bytes());
}

fn get_wire_str(r: &mut FrameReader<'_>, what: &str) -> Result<String, WireError> {
    let raw = r.get_bytes(what)?;
    String::from_utf8(raw.to_vec())
        .map_err(|_| WireError(format!("frame field {what} is not valid UTF-8")))
}

/// Zigzag-maps a signed delta so small magnitudes of either sign get
/// small unsigned codes (`0 → 0, -1 → 1, 1 → 2, -2 → 3, …`).
#[inline]
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
#[must_use]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Appends one LEB128 varint: 7 value bits per byte, high bit set on
/// every byte but the last. A u64 spans at most 10 bytes.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one LEB128 varint from `bytes` at `*pos`, advancing the cursor
/// past it.
///
/// # Errors
/// [`WireError`] when the blob ends mid-varint or the encoding carries
/// more than 64 significant bits.
pub fn get_uvarint(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u64, WireError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or_else(|| WireError(format!("frame field {what}: varint truncated")))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(WireError(format!(
                "frame field {what}: varint overflows u64"
            )));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Delta-encodes a flat word stream: each word is stored as the zigzag
/// varint of its difference from the previous word (the stream starts
/// from an implicit zero). Clustered coordinate streams collapse to one
/// or two bytes per word.
fn pack_words(words: impl Iterator<Item = u64>) -> Vec<u8> {
    let mut out = Vec::new();
    let mut prev = 0u64;
    for w in words {
        put_uvarint(&mut out, zigzag(w.wrapping_sub(prev) as i64));
        prev = w;
    }
    out
}

/// Decodes exactly `count` delta-packed words, rejecting a blob that is
/// short, long, or truncated mid-varint. Every word costs at least one
/// byte, so the up-front count check bounds the allocation.
fn unpack_words(blob: &[u8], count: usize, what: &str) -> Result<Vec<u64>, WireError> {
    if count > blob.len() {
        return Err(WireError(format!(
            "frame field {what}: {count} packed words cannot fit in {} bytes",
            blob.len()
        )));
    }
    let mut pos = 0usize;
    let mut prev = 0u64;
    let mut words = Vec::with_capacity(count);
    for _ in 0..count {
        let delta = unzigzag(get_uvarint(blob, &mut pos, what)?);
        prev = prev.wrapping_add(delta as u64);
        words.push(prev);
    }
    if pos != blob.len() {
        return Err(WireError(format!(
            "frame field {what}: {} trailing bytes after packed words",
            blob.len() - pos
        )));
    }
    Ok(words)
}

/// Packs a dense f64 vector as varints of each value's IEEE-754 bits
/// XOR the previous value's bits (implicit zero start): repeats cost one
/// byte, shared sign/exponent prefixes drop, worst-case noise costs 10
/// bytes against 8 raw.
fn pack_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut prev = 0u64;
    for &v in values {
        let bits = v.to_bits();
        put_uvarint(&mut out, bits ^ prev);
        prev = bits;
    }
    out
}

/// Decodes exactly `count` XOR-packed f64 values (see [`pack_f64s`]);
/// validation mirrors [`unpack_words`].
fn unpack_f64s(blob: &[u8], count: usize, what: &str) -> Result<Vec<f64>, WireError> {
    if count > blob.len() {
        return Err(WireError(format!(
            "frame field {what}: {count} packed values cannot fit in {} bytes",
            blob.len()
        )));
    }
    let mut pos = 0usize;
    let mut prev = 0u64;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        prev ^= get_uvarint(blob, &mut pos, what)?;
        values.push(f64::from_bits(prev));
    }
    if pos != blob.len() {
        return Err(WireError(format!(
            "frame field {what}: {} trailing bytes after packed values",
            blob.len() - pos
        )));
    }
    Ok(values)
}

/// Encodes one request as a `DPRB` frame body.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Query { release, lo, hi } => {
            let mut w = writer(release.len() + (lo.len() + hi.len() + 4) * 8, OP_QUERY);
            put_wire_str(&mut w, release);
            w.put_usize_slice(lo);
            w.put_usize_slice(hi);
            w.finish().to_vec()
        }
        Request::Batch { release, ranges } => encode_batch(release, ranges),
        Request::Plan { release, plan } => {
            let mut w = writer(release.len() + 64, OP_PLAN);
            put_wire_str(&mut w, release);
            encode_plan(&mut w, plan);
            w.finish().to_vec()
        }
        Request::List => writer(0, OP_LIST).finish().to_vec(),
        Request::Stats => writer(0, OP_STATS).finish().to_vec(),
    }
}

/// Encodes one request preferring the packed opcodes where they apply
/// (today: homogeneous batches). Every other shape falls back to
/// [`encode_request`] byte-identically, so a packed client's non-batch
/// traffic is indistinguishable from a legacy client's.
pub fn encode_request_packed(req: &Request) -> Vec<u8> {
    match req {
        Request::Batch { release, ranges } => encode_batch_packed(release, ranges),
        other => encode_request(other),
    }
}

/// A `Region` is four raw u64 corner coordinates.
fn put_region(w: &mut FrameWriter, r: &Region) {
    w.put_u64(r.lo.0 as u64);
    w.put_u64(r.lo.1 as u64);
    w.put_u64(r.hi.0 as u64);
    w.put_u64(r.hi.1 as u64);
}

fn get_region(r: &mut FrameReader<'_>, what: &str) -> Result<Region, WireError> {
    let raw = r.get_raw_u64s(4, what)?;
    let word = |i: usize| {
        u64::from_le_bytes(raw[i * 8..(i + 1) * 8].try_into().expect("8 bytes")) as usize
    };
    Ok(Region::new((word(0), word(1)), (word(2), word(3))))
}

/// An `Option<Region>` is a presence byte, then the region when present.
fn put_opt_region(w: &mut FrameWriter, r: &Option<Region>) {
    match r {
        None => w.put_u8(0),
        Some(region) => {
            w.put_u8(1);
            put_region(w, region);
        }
    }
}

fn get_opt_region(r: &mut FrameReader<'_>, what: &str) -> Result<Option<Region>, WireError> {
    match r.get_u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(get_region(r, what)?)),
        other => Err(WireError(format!(
            "frame field {what}: presence byte must be 0 or 1, got {other}"
        ))),
    }
}

/// Encodes one plan recursively (tag byte, then variant payload).
fn encode_plan(w: &mut FrameWriter, plan: &QueryPlan) {
    match plan {
        QueryPlan::Range { lo, hi } => {
            w.put_u8(PLAN_RANGE);
            w.put_usize_slice(lo);
            w.put_usize_slice(hi);
        }
        QueryPlan::Od {
            origin,
            stops,
            destination,
        } => {
            w.put_u8(PLAN_OD);
            put_opt_region(w, origin);
            put_opt_region(w, destination);
            w.put_u64(stops.len() as u64);
            for (index, region) in stops {
                w.put_u64(*index as u64);
                put_region(w, region);
            }
        }
        QueryPlan::Marginal { keep } => {
            w.put_u8(PLAN_MARGINAL);
            w.put_usize_slice(keep);
        }
        QueryPlan::TopK { k } => {
            w.put_u8(PLAN_TOP_K);
            w.put_u64(*k as u64);
        }
        QueryPlan::Total => w.put_u8(PLAN_TOTAL),
        QueryPlan::Many { plans } => {
            w.put_u8(PLAN_MANY);
            w.put_u64(plans.len() as u64);
            for p in plans {
                encode_plan(w, p);
            }
        }
        QueryPlan::Window {
            select,
            merge,
            plan,
        } => {
            w.put_u8(PLAN_WINDOW);
            match select {
                EpochSelector::At { epoch } => {
                    w.put_u8(SELECT_AT);
                    w.put_u64(*epoch);
                }
                EpochSelector::LastK { k } => {
                    w.put_u8(SELECT_LAST_K);
                    w.put_u64(*k);
                }
                EpochSelector::Range { from, to } => {
                    w.put_u8(SELECT_RANGE);
                    w.put_u64(*from);
                    w.put_u64(*to);
                }
            }
            w.put_u8(match merge {
                WindowMerge::Sum => MERGE_SUM,
                WindowMerge::PerEpoch => MERGE_PER_EPOCH,
            });
            encode_plan(w, plan);
        }
        QueryPlan::DrillDown { level, plan } => {
            w.put_u8(PLAN_DRILL_DOWN);
            w.put_u64(u64::from(*level));
            encode_plan(w, plan);
        }
    }
}

fn decode_plan(r: &mut FrameReader<'_>, depth: usize) -> Result<QueryPlan, WireError> {
    if depth > MAX_PLAN_DEPTH {
        return Err(WireError(format!(
            "plan nesting exceeds depth {MAX_PLAN_DEPTH}"
        )));
    }
    match r.get_u8("plan tag")? {
        PLAN_RANGE => Ok(QueryPlan::Range {
            lo: r.get_usize_vec("plan lo")?,
            hi: r.get_usize_vec("plan hi")?,
        }),
        PLAN_OD => {
            let origin = get_opt_region(r, "od origin")?;
            let destination = get_opt_region(r, "od destination")?;
            let count = usize::try_from(r.get_u64("od stop count")?)
                .map_err(|_| WireError("od stop count overflows".into()))?;
            // Each stop is 40 bytes; the byte budget is validated before
            // the vector allocates.
            let mut stops = Vec::with_capacity(count.min(1 << 12));
            for _ in 0..count {
                let index = usize::try_from(r.get_u64("od stop index")?)
                    .map_err(|_| WireError("od stop index overflows".into()))?;
                stops.push((index, get_region(r, "od stop region")?));
            }
            Ok(QueryPlan::Od {
                origin,
                stops,
                destination,
            })
        }
        PLAN_MARGINAL => Ok(QueryPlan::Marginal {
            keep: r.get_usize_vec("marginal keep")?,
        }),
        PLAN_TOP_K => Ok(QueryPlan::TopK {
            k: usize::try_from(r.get_u64("top-k k")?)
                .map_err(|_| WireError("top-k k overflows".into()))?,
        }),
        PLAN_TOTAL => Ok(QueryPlan::Total),
        PLAN_MANY => {
            let count = usize::try_from(r.get_u64("many count")?)
                .map_err(|_| WireError("many count overflows".into()))?;
            // Every sub-plan consumes at least its tag byte, so a huge
            // declared count fails on the first missing byte; only the
            // initial capacity needs capping.
            let mut plans = Vec::with_capacity(count.min(1 << 12));
            for _ in 0..count {
                plans.push(decode_plan(r, depth + 1)?);
            }
            Ok(QueryPlan::Many { plans })
        }
        PLAN_WINDOW => {
            let select = match r.get_u8("window selector tag")? {
                SELECT_AT => EpochSelector::At {
                    epoch: r.get_u64("window epoch")?,
                },
                SELECT_LAST_K => EpochSelector::LastK {
                    k: r.get_u64("window k")?,
                },
                SELECT_RANGE => EpochSelector::Range {
                    from: r.get_u64("window from")?,
                    to: r.get_u64("window to")?,
                },
                other => {
                    return Err(WireError(format!(
                        "unknown window selector tag {other:#04x}"
                    )))
                }
            };
            let merge = match r.get_u8("window merge tag")? {
                MERGE_SUM => WindowMerge::Sum,
                MERGE_PER_EPOCH => WindowMerge::PerEpoch,
                other => return Err(WireError(format!("unknown window merge tag {other:#04x}"))),
            };
            let plan = Box::new(decode_plan(r, depth + 1)?);
            Ok(QueryPlan::Window {
                select,
                merge,
                plan,
            })
        }
        PLAN_DRILL_DOWN => {
            let level = u32::try_from(r.get_u64("drill-down level")?)
                .map_err(|_| WireError("drill-down level overflows".into()))?;
            let plan = Box::new(decode_plan(r, depth + 1)?);
            Ok(QueryPlan::DrillDown { level, plan })
        }
        other => Err(WireError(format!("unknown plan tag {other:#04x}"))),
    }
}

/// Row-major strides for a dims list (last dimension contiguous).
/// Saturating: an overflowing (hence invalid) domain cannot panic the
/// encoder; the decoder rejects such dims via its checked size.
fn strides_for(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1].saturating_mul(dims[i + 1]);
    }
    strides
}

/// Encodes one answer recursively. Top-k cells pack as flat-index/value
/// word pairs against the answer's own `dims` (the hot variant: two raw
/// words per cell, no per-cell framing). Under `packed` (the
/// `OP_ANSWER_PACKED` body) dense marginal vectors switch to the
/// XOR-varint form; the tag tree and every other payload are unchanged.
fn encode_answer(w: &mut FrameWriter, answer: &Answer, packed: bool) {
    match answer {
        Answer::Value { value } => {
            w.put_u8(ANSWER_VALUE);
            w.put_f64(*value);
        }
        Answer::Marginal { dims, values } => {
            w.put_u8(ANSWER_MARGINAL);
            w.put_usize_slice(dims);
            if packed {
                w.put_u64(values.len() as u64);
                w.put_bytes(&pack_f64s(values));
            } else {
                w.put_f64_slice(values);
            }
        }
        Answer::TopK { dims, cells } => {
            w.put_u8(ANSWER_TOP_K);
            w.put_usize_slice(dims);
            let strides = strides_for(dims);
            w.put_u64(cells.len() as u64);
            for cell in cells {
                let flat: usize = cell
                    .coords
                    .iter()
                    .zip(&strides)
                    .map(|(&c, &s)| c.saturating_mul(s))
                    .fold(0usize, usize::saturating_add);
                w.put_u64(flat as u64);
                w.put_f64(cell.value);
            }
        }
        Answer::Many { answers } => {
            w.put_u8(ANSWER_MANY);
            w.put_u64(answers.len() as u64);
            for a in answers {
                encode_answer(w, a, packed);
            }
        }
        Answer::Epochs { epochs, answers } => {
            w.put_u8(ANSWER_EPOCHS);
            w.put_u64(epochs.len() as u64);
            for &e in epochs {
                w.put_u64(e);
            }
            w.put_u64(answers.len() as u64);
            for a in answers {
                encode_answer(w, a, packed);
            }
        }
    }
}

fn decode_answer(r: &mut FrameReader<'_>, depth: usize, packed: bool) -> Result<Answer, WireError> {
    if depth > MAX_PLAN_DEPTH {
        return Err(WireError(format!(
            "answer nesting exceeds depth {MAX_PLAN_DEPTH}"
        )));
    }
    match r.get_u8("answer tag")? {
        ANSWER_VALUE => Ok(Answer::Value {
            value: r.get_f64("answer value")?,
        }),
        ANSWER_MARGINAL => {
            let dims = r.get_usize_vec("marginal dims")?;
            let values = if packed {
                let count = usize::try_from(r.get_u64("marginal count")?)
                    .map_err(|_| WireError("marginal count overflows".into()))?;
                let blob = r.get_bytes("packed marginal values")?;
                unpack_f64s(blob, count, "packed marginal values")?
            } else {
                r.get_f64_vec("marginal values")?
            };
            Ok(Answer::Marginal { dims, values })
        }
        ANSWER_TOP_K => {
            let dims = r.get_usize_vec("top-k dims")?;
            let size = dims
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .ok_or_else(|| WireError("top-k dims overflow".into()))?;
            let strides = strides_for(&dims);
            let count = usize::try_from(r.get_u64("top-k count")?)
                .map_err(|_| WireError("top-k count overflows".into()))?;
            let words = count
                .checked_mul(2)
                .ok_or_else(|| WireError("top-k count overflows".into()))?;
            let raw = r.get_raw_u64s(words, "top-k cells")?;
            let mut cells = Vec::with_capacity(count);
            for pair in raw.chunks_exact(16) {
                let flat = u64::from_le_bytes(pair[..8].try_into().expect("8 bytes")) as usize;
                let value =
                    f64::from_bits(u64::from_le_bytes(pair[8..].try_into().expect("8 bytes")));
                if flat >= size {
                    return Err(WireError(format!(
                        "top-k cell index {flat} out of domain {dims:?}"
                    )));
                }
                let mut rem = flat;
                let coords = strides
                    .iter()
                    .map(|&s| {
                        let c = rem / s;
                        rem %= s;
                        c
                    })
                    .collect();
                cells.push(TopCell { coords, value });
            }
            Ok(Answer::TopK { dims, cells })
        }
        ANSWER_MANY => {
            let count = usize::try_from(r.get_u64("answer count")?)
                .map_err(|_| WireError("answer count overflows".into()))?;
            let mut answers = Vec::with_capacity(count.min(1 << 12));
            for _ in 0..count {
                answers.push(decode_answer(r, depth + 1, packed)?);
            }
            Ok(Answer::Many { answers })
        }
        ANSWER_EPOCHS => {
            let n = usize::try_from(r.get_u64("epoch count")?)
                .map_err(|_| WireError("epoch count overflows".into()))?;
            // Each epoch id is 8 bytes; the reader validates the byte
            // budget before the vector allocates.
            let raw = r.get_raw_u64s(n, "epoch ids")?;
            let epochs = raw
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            let count = usize::try_from(r.get_u64("epoch answer count")?)
                .map_err(|_| WireError("epoch answer count overflows".into()))?;
            let mut answers = Vec::with_capacity(count.min(1 << 12));
            for _ in 0..count {
                answers.push(decode_answer(r, depth + 1, packed)?);
            }
            Ok(Answer::Epochs { epochs, answers })
        }
        other => Err(WireError(format!("unknown answer tag {other:#04x}"))),
    }
}

fn encode_batch(release: &str, ranges: &[(Vec<usize>, Vec<usize>)]) -> Vec<u8> {
    let homogeneous_ndim = match ranges.first() {
        Some((lo, _)) if (lo.len() as u64) < u64::from(MIXED_NDIM) => {
            let d = lo.len();
            ranges
                .iter()
                .all(|(lo, hi)| lo.len() == d && hi.len() == d)
                .then_some(d)
        }
        _ => None,
    };
    match homogeneous_ndim {
        Some(d) => {
            let mut w = writer(release.len() + 32 + ranges.len() * 2 * d * 8, OP_BATCH);
            put_wire_str(&mut w, release);
            w.put_u16(d as u16);
            w.put_u64(ranges.len() as u64);
            for (lo, hi) in ranges {
                for &c in lo {
                    w.put_u64(c as u64);
                }
                for &c in hi {
                    w.put_u64(c as u64);
                }
            }
            w.finish().to_vec()
        }
        None => {
            // Heterogeneous (or empty) batch: length-prefixed corners.
            let mut w = writer(release.len() + 32, OP_BATCH);
            put_wire_str(&mut w, release);
            w.put_u16(MIXED_NDIM);
            w.put_u64(ranges.len() as u64);
            for (lo, hi) in ranges {
                w.put_usize_slice(lo);
                w.put_usize_slice(hi);
            }
            w.finish().to_vec()
        }
    }
}

/// The varint form of [`encode_batch`]: the flattened coordinate stream
/// (lo then hi per range, range after range) is delta+zigzag packed.
/// Heterogeneous and empty batches gain nothing from packing and fall
/// back to the legacy encoding, which every decoder accepts.
fn encode_batch_packed(release: &str, ranges: &[(Vec<usize>, Vec<usize>)]) -> Vec<u8> {
    let homogeneous_ndim = match ranges.first() {
        Some((lo, _)) if (lo.len() as u64) < u64::from(MIXED_NDIM) => {
            let d = lo.len();
            ranges
                .iter()
                .all(|(lo, hi)| lo.len() == d && hi.len() == d)
                .then_some(d)
        }
        _ => None,
    };
    let Some(d) = homogeneous_ndim else {
        return encode_batch(release, ranges);
    };
    let blob = pack_words(
        ranges
            .iter()
            .flat_map(|(lo, hi)| lo.iter().chain(hi.iter()).map(|&c| c as u64)),
    );
    let mut w = writer(release.len() + 32 + blob.len(), OP_BATCH_PACKED);
    put_wire_str(&mut w, release);
    w.put_u16(d as u16);
    w.put_u64(ranges.len() as u64);
    w.put_bytes(&blob);
    w.finish().to_vec()
}

/// Decodes a `DPRB` frame body into a request.
///
/// # Errors
/// [`WireError`] naming the first framing violation; truncated frames,
/// oversized declared lengths and unknown opcodes all land here.
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    let mut r = FrameReader::new(body, WIRE_MAGIC, WIRE_VERSION)?;
    let op = r.get_u8("opcode")?;
    let req = match op {
        OP_QUERY => {
            let release = get_wire_str(&mut r, "release")?;
            let lo = r.get_usize_vec("lo")?;
            let hi = r.get_usize_vec("hi")?;
            Request::Query { release, lo, hi }
        }
        OP_BATCH => {
            let release = get_wire_str(&mut r, "release")?;
            let ndim = r.get_u16("batch ndim")?;
            let count = usize::try_from(r.get_u64("batch count")?)
                .map_err(|_| WireError("batch count overflows".into()))?;
            let ranges = if ndim == MIXED_NDIM {
                let mut ranges = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    let lo = r.get_usize_vec("batch lo")?;
                    let hi = r.get_usize_vec("batch hi")?;
                    ranges.push((lo, hi));
                }
                ranges
            } else {
                decode_packed_ranges(&mut r, ndim as usize, count)?
            };
            Request::Batch { release, ranges }
        }
        OP_BATCH_PACKED => {
            let release = get_wire_str(&mut r, "release")?;
            let ndim = r.get_u16("batch ndim")? as usize;
            let count = usize::try_from(r.get_u64("batch count")?)
                .map_err(|_| WireError("batch count overflows".into()))?;
            if ndim == 0 && count > MAX_ZERO_DIM_RANGES {
                return Err(WireError(format!(
                    "zero-dimension batch count {count} exceeds limit {MAX_ZERO_DIM_RANGES}"
                )));
            }
            let words_n = count
                .checked_mul(2 * ndim)
                .ok_or_else(|| WireError("batch coordinate count overflows".into()))?;
            let blob = r.get_bytes("packed batch coordinates")?;
            let words = unpack_words(blob, words_n, "packed batch coordinates")?;
            let ranges = if ndim == 0 {
                vec![(Vec::new(), Vec::new()); count]
            } else {
                words
                    .chunks_exact(2 * ndim)
                    .map(|pair| {
                        let lo = pair[..ndim].iter().map(|&w| w as usize).collect();
                        let hi = pair[ndim..].iter().map(|&w| w as usize).collect();
                        (lo, hi)
                    })
                    .collect()
            };
            Request::Batch { release, ranges }
        }
        OP_PLAN => {
            let release = get_wire_str(&mut r, "release")?;
            let plan = decode_plan(&mut r, 0)?;
            Request::Plan { release, plan }
        }
        OP_LIST => Request::List,
        OP_STATS => Request::Stats,
        other => return Err(WireError(format!("unknown request opcode {other:#04x}"))),
    };
    r.finish()?;
    Ok(req)
}

/// Most zero-dimension ranges accepted in one packed batch. Zero-width
/// ranges occupy no payload bytes, so the usual bytes-present check
/// cannot bound `count`; without this cap an adversarial ~30-byte frame
/// declaring `count = u64::MAX` would panic the decode on allocation.
/// The limit mirrors what the NDJSON path could physically carry: ~8
/// bytes per `[[],[]]` under its 8 MiB line cap.
const MAX_ZERO_DIM_RANGES: usize = 1 << 20;

/// Reads `count × 2·ndim` raw u64 coordinates. The byte budget is
/// checked against the frame remainder before the vectors allocate.
fn decode_packed_ranges(
    r: &mut FrameReader<'_>,
    ndim: usize,
    count: usize,
) -> Result<RangeList, WireError> {
    if ndim == 0 && count > MAX_ZERO_DIM_RANGES {
        return Err(WireError(format!(
            "zero-dimension batch count {count} exceeds limit {MAX_ZERO_DIM_RANGES}"
        )));
    }
    let words = count
        .checked_mul(2 * ndim)
        .ok_or_else(|| WireError("batch coordinate count overflows".into()))?;
    let raw = r.get_raw_u64s(words, "batch coordinates")?;
    let mut ranges = Vec::with_capacity(count);
    let mut it = raw;
    for _ in 0..count {
        let (head, tail) = it.split_at(2 * ndim * 8);
        it = tail;
        let coord = |chunk: &[u8]| u64::from_le_bytes(chunk.try_into().expect("8 bytes")) as usize;
        let lo = head[..ndim * 8].chunks_exact(8).map(coord).collect();
        let hi = head[ndim * 8..].chunks_exact(8).map(coord).collect();
        ranges.push((lo, hi));
    }
    Ok(ranges)
}

/// Encodes one response as a `DPRB` frame body.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Value { value } => {
            let mut w = writer(8, OP_VALUE);
            w.put_f64(*value);
            w.finish().to_vec()
        }
        Response::Values { values } => {
            let mut w = writer(8 + values.len() * 8, OP_VALUES);
            w.put_f64_slice(values);
            w.finish().to_vec()
        }
        Response::Answer { answer } => {
            let mut w = writer(64, OP_ANSWER);
            encode_answer(&mut w, answer, false);
            w.finish().to_vec()
        }
        Response::Releases { releases } => {
            let mut w = writer(releases.len() * 64, OP_RELEASES);
            w.put_u64(releases.len() as u64);
            for info in releases {
                put_wire_str(&mut w, &info.name);
                w.put_u64(info.version);
                put_wire_str(&mut w, &info.mechanism);
                w.put_f64(info.epsilon);
                w.put_usize_slice(&info.domain);
                w.put_u64(info.released_values as u64);
            }
            w.finish().to_vec()
        }
        Response::Stats { stats } => {
            let mut w = writer(96 + stats.release_hits.len() * 32, OP_STATS_RESP);
            w.put_u64(stats.releases as u64);
            w.put_u64(stats.queries);
            w.put_u64(stats.cache_entries as u64);
            w.put_u64(stats.cache_bytes as u64);
            w.put_u64(stats.cache_hits);
            w.put_u64(stats.cache_misses);
            w.put_u64(stats.release_hits.len() as u64);
            for rh in &stats.release_hits {
                put_wire_str(&mut w, &rh.name);
                w.put_u64(rh.hits);
            }
            // The plan-index counters extend the frame at the *end*:
            // the `Stats`/`Releases` introspection frames track the
            // server version (unlike the pinned `Query`/`Batch`
            // opcodes), and appending keeps a mixed-version desync
            // failing with a named trailing-bytes/truncation error
            // instead of misreading rate bits as element counts.
            w.put_u64(stats.index_entries as u64);
            w.put_u64(stats.index_hits);
            w.put_u64(stats.index_misses);
            w.put_u64(stats.index_build_nanos);
            w.put_f64(stats.cache_hit_rate);
            w.put_f64(stats.index_hit_rate);
            w.put_u64(stats.open_connections);
            w.put_u64(stats.accepted_connections);
            // Observability tail, appended under the same convention —
            // and, from this revision on, *optional on decode*: a frame
            // ending right above is accepted with empty defaults, so a
            // new client reading an old server's stats frame keeps
            // working (the reverse — an old strict client reading this
            // tail — still fails with its named trailing-bytes error,
            // which the README's versioning note documents).
            w.put_u64(stats.evicted_stat_entries);
            w.put_u64(stats.stage_latencies.len() as u64);
            for sl in &stats.stage_latencies {
                put_wire_str(&mut w, &sl.stage);
                put_wire_str(&mut w, &sl.transport);
                w.put_u64(sl.count);
                w.put_u64(sl.p50_nanos);
                w.put_u64(sl.p90_nanos);
                w.put_u64(sl.p99_nanos);
                w.put_u64(sl.p999_nanos);
            }
            // Epoch tail, appended after the observability tail under
            // the same convention: optional on decode as a block, so
            // pre-epoch stats frames keep working.
            w.put_u64(stats.series as u64);
            w.put_u64(stats.partial_entries as u64);
            w.put_u64(stats.partial_hits);
            w.put_u64(stats.partial_misses);
            // Encoded-memo tail: the third optional block, appended
            // after the epoch tail under the same convention.
            w.put_u64(stats.encoded_entries as u64);
            w.put_u64(stats.encoded_hits);
            w.put_u64(stats.encoded_misses);
            w.put_u64(stats.encoded_bytes as u64);
            // Pyramid tail: the fourth optional block, appended after
            // the encoded-memo tail under the same convention.
            w.put_u64(stats.pyramid_entries as u64);
            w.put_u64(stats.pyramid_hits);
            w.put_u64(stats.pyramid_misses);
            w.put_u64(stats.pyramid_bytes as u64);
            w.finish().to_vec()
        }
        Response::Error { message } => {
            let mut w = writer(message.len() + 8, OP_ERROR);
            put_wire_str(&mut w, message);
            w.finish().to_vec()
        }
    }
}

/// Encodes one response preferring the packed opcodes where they apply
/// (dense value vectors and answer trees). Every other variant falls
/// back to [`encode_response`] byte-identically; emit these frames only
/// to peers that advertised [`WIRE_FEATURE_PACKED`].
pub fn encode_response_packed(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Values { values } => {
            let blob = pack_f64s(values);
            let mut w = writer(16 + blob.len(), OP_VALUES_PACKED);
            w.put_u64(values.len() as u64);
            w.put_bytes(&blob);
            w.finish().to_vec()
        }
        Response::Answer { answer } => {
            let mut w = writer(64, OP_ANSWER_PACKED);
            encode_answer(&mut w, answer, true);
            w.finish().to_vec()
        }
        other => encode_response(other),
    }
}

/// Decodes a `DPRB` frame body into a response.
///
/// # Errors
/// [`WireError`] naming the first framing violation.
pub fn decode_response(body: &[u8]) -> Result<Response, WireError> {
    let mut r = FrameReader::new(body, WIRE_MAGIC, WIRE_VERSION)?;
    let op = r.get_u8("opcode")?;
    let resp = match op {
        OP_VALUE => Response::Value {
            value: r.get_f64("value")?,
        },
        OP_VALUES => Response::Values {
            values: r.get_f64_vec("values")?,
        },
        OP_VALUES_PACKED => {
            let count = usize::try_from(r.get_u64("values count")?)
                .map_err(|_| WireError("values count overflows".into()))?;
            let blob = r.get_bytes("packed values")?;
            Response::Values {
                values: unpack_f64s(blob, count, "packed values")?,
            }
        }
        OP_ANSWER => Response::Answer {
            answer: decode_answer(&mut r, 0, false)?,
        },
        OP_ANSWER_PACKED => Response::Answer {
            answer: decode_answer(&mut r, 0, true)?,
        },
        OP_RELEASES => {
            let count = r.get_u64("release count")?;
            let mut releases = Vec::with_capacity(usize::try_from(count).unwrap_or(0).min(1 << 16));
            for _ in 0..count {
                releases.push(ReleaseInfo {
                    name: get_wire_str(&mut r, "name")?,
                    version: r.get_u64("version")?,
                    mechanism: get_wire_str(&mut r, "mechanism")?,
                    epsilon: r.get_f64("epsilon")?,
                    domain: r.get_usize_vec("domain")?,
                    released_values: r.get_u64("released_values")? as usize,
                });
            }
            Response::Releases { releases }
        }
        OP_STATS_RESP => {
            let releases = r.get_u64("releases")? as usize;
            let queries = r.get_u64("queries")?;
            let cache_entries = r.get_u64("cache_entries")? as usize;
            let cache_bytes = r.get_u64("cache_bytes")? as usize;
            let cache_hits = r.get_u64("cache_hits")?;
            let cache_misses = r.get_u64("cache_misses")?;
            let n = r.get_u64("release_hits count")?;
            let mut release_hits = Vec::with_capacity(usize::try_from(n).unwrap_or(0).min(1 << 16));
            for _ in 0..n {
                release_hits.push(ReleaseHits {
                    name: get_wire_str(&mut r, "hit name")?,
                    hits: r.get_u64("hit count")?,
                });
            }
            let index_entries = r.get_u64("index_entries")? as usize;
            let index_hits = r.get_u64("index_hits")?;
            let index_misses = r.get_u64("index_misses")?;
            let index_build_nanos = r.get_u64("index_build_nanos")?;
            let cache_hit_rate = r.get_f64("cache_hit_rate")?;
            let index_hit_rate = r.get_f64("index_hit_rate")?;
            let open_connections = r.get_u64("open_connections")?;
            let accepted_connections = r.get_u64("accepted_connections")?;
            // Optional observability tail: absent on frames from
            // pre-observability servers, which decode with empty
            // defaults rather than erroring.
            let (evicted_stat_entries, stage_latencies) = if r.remaining() > 0 {
                let evicted = r.get_u64("evicted_stat_entries")?;
                let n = r.get_u64("stage_latencies count")?;
                let mut rows = Vec::with_capacity(usize::try_from(n).unwrap_or(0).min(1 << 8));
                for _ in 0..n {
                    rows.push(StageLatency {
                        stage: get_wire_str(&mut r, "stage")?,
                        transport: get_wire_str(&mut r, "stage transport")?,
                        count: r.get_u64("stage count")?,
                        p50_nanos: r.get_u64("stage p50")?,
                        p90_nanos: r.get_u64("stage p90")?,
                        p99_nanos: r.get_u64("stage p99")?,
                        p999_nanos: r.get_u64("stage p999")?,
                    });
                }
                (evicted, rows)
            } else {
                (0, Vec::new())
            };
            // Epoch tail: same optional-block convention, one level
            // further out (a frame ending after the observability tail
            // is a pre-epoch server's — decode with zero defaults).
            let (series, partial_entries, partial_hits, partial_misses) = if r.remaining() > 0 {
                (
                    r.get_u64("series")? as usize,
                    r.get_u64("partial_entries")? as usize,
                    r.get_u64("partial_hits")?,
                    r.get_u64("partial_misses")?,
                )
            } else {
                (0, 0, 0, 0)
            };
            // Encoded-memo tail: third optional block (a frame ending
            // after the epoch tail is a pre-memo server's — decode
            // with zero defaults).
            let (encoded_entries, encoded_hits, encoded_misses, encoded_bytes) =
                if r.remaining() > 0 {
                    (
                        r.get_u64("encoded_entries")? as usize,
                        r.get_u64("encoded_hits")?,
                        r.get_u64("encoded_misses")?,
                        r.get_u64("encoded_bytes")? as usize,
                    )
                } else {
                    (0, 0, 0, 0)
                };
            // Pyramid tail: fourth optional block (a frame ending after
            // the encoded-memo tail is a pre-pyramid server's — decode
            // with zero defaults).
            let (pyramid_entries, pyramid_hits, pyramid_misses, pyramid_bytes) =
                if r.remaining() > 0 {
                    (
                        r.get_u64("pyramid_entries")? as usize,
                        r.get_u64("pyramid_hits")?,
                        r.get_u64("pyramid_misses")?,
                        r.get_u64("pyramid_bytes")? as usize,
                    )
                } else {
                    (0, 0, 0, 0)
                };
            Response::Stats {
                stats: ServerStats {
                    releases,
                    queries,
                    cache_entries,
                    cache_bytes,
                    cache_hits,
                    cache_misses,
                    index_entries,
                    index_hits,
                    index_misses,
                    index_build_nanos,
                    cache_hit_rate,
                    index_hit_rate,
                    open_connections,
                    accepted_connections,
                    release_hits,
                    evicted_stat_entries,
                    stage_latencies,
                    series,
                    partial_entries,
                    partial_hits,
                    partial_misses,
                    encoded_entries,
                    encoded_hits,
                    encoded_misses,
                    encoded_bytes,
                    pyramid_entries,
                    pyramid_hits,
                    pyramid_misses,
                    pyramid_bytes,
                },
            }
        }
        OP_ERROR => Response::Error {
            message: get_wire_str(&mut r, "message")?,
        },
        other => return Err(WireError(format!("unknown response opcode {other:#04x}"))),
    };
    r.finish()?;
    Ok(resp)
}

/// Writes one length-prefixed frame (no flush).
///
/// # Errors
/// [`WireError`] when `body` exceeds [`MAX_FRAME_BYTES`] or on IO failure.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            WireError(format!(
                "frame body of {} bytes exceeds max {MAX_FRAME_BYTES}",
                body.len()
            ))
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    Ok(())
}

/// Reads one length-prefixed frame body. Returns `Ok(None)` on a clean
/// EOF at a frame boundary.
///
/// # Errors
/// [`WireError`] on mid-frame EOF, a declared length beyond
/// [`MAX_FRAME_BYTES`] (the stream cannot be resynced — callers should
/// close), or IO failure.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let timeout =
        |e: &std::io::Error| matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut);
    // Read the length prefix byte-counted: EOF before the first byte is
    // a clean close, EOF after 1–3 bytes is a truncated stream and must
    // say so (read_exact would conflate the two).
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(WireError(format!(
                    "frame truncated: connection closed after {got} of 4 length bytes"
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if timeout(&e) => return Err(WireError(IDLE_TIMEOUT_MSG.into())),
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(WireError(format!(
            "declared frame length {len} exceeds max {MAX_FRAME_BYTES}"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|e| {
        if timeout(&e) {
            WireError(IDLE_TIMEOUT_MSG.into())
        } else {
            WireError(format!("frame truncated: {e}"))
        }
    })?;
    Ok(Some(body))
}

/// A blocking `DPRB` client over one TCP connection.
///
/// Sends the preamble on connect; thereafter [`Client::request`] is one
/// synchronous round trip and [`Client::send`]/[`Client::receive`]
/// support pipelining (write many, then read the answers back in order).
#[derive(Debug)]
pub struct Client {
    reader: std::io::BufReader<TcpStream>,
    writer: std::io::BufWriter<TcpStream>,
    packed: bool,
}

impl Client {
    /// Connects and speaks the `DPRB` preamble. Whether the packed
    /// opcodes are negotiated follows the `DPOD_WIRE_PACKED` environment
    /// variable (`1`/`true` to enable; default off, the legacy
    /// preamble); use [`Self::connect_with`] to pick explicitly.
    ///
    /// # Errors
    /// IO errors from connect or the preamble write.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let packed = std::env::var("DPOD_WIRE_PACKED")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        Self::connect_with(addr, packed)
    }

    /// Connects, advertising [`WIRE_FEATURE_PACKED`] in the preamble
    /// when `packed` is set; the client then sends packed batch frames
    /// and the server is free to answer with packed responses.
    ///
    /// # Errors
    /// IO errors from connect or the preamble write.
    pub fn connect_with(addr: impl ToSocketAddrs, packed: bool) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Batch frames span many segments; without NODELAY the tail of
        // a frame can sit behind Nagle waiting on a delayed ACK.
        stream.set_nodelay(true)?;
        let mut writer = std::io::BufWriter::new(stream.try_clone()?);
        writer.write_all(WIRE_MAGIC)?;
        let version = if packed {
            WIRE_VERSION | WIRE_FEATURE_PACKED
        } else {
            WIRE_VERSION
        };
        writer.write_all(&[version])?;
        Ok(Client {
            reader: std::io::BufReader::new(stream),
            writer,
            packed,
        })
    }

    /// Whether this connection negotiated the packed opcodes.
    #[must_use]
    pub fn is_packed(&self) -> bool {
        self.packed
    }

    /// Queues one request (buffered; flushed by [`Self::receive`]).
    ///
    /// # Errors
    /// [`WireError`] on encode or IO failure.
    pub fn send(&mut self, req: &Request) -> Result<(), WireError> {
        let body = if self.packed {
            encode_request_packed(req)
        } else {
            encode_request(req)
        };
        write_frame(&mut self.writer, &body)
    }

    /// Flushes queued requests and reads the next response.
    ///
    /// # Errors
    /// [`WireError`] on IO failure, a server disconnect, or a malformed
    /// response frame.
    pub fn receive(&mut self) -> Result<Response, WireError> {
        self.writer.flush()?;
        let body = read_frame(&mut self.reader)?
            .ok_or_else(|| WireError("server closed the connection".into()))?;
        decode_response(&body)
    }

    /// One synchronous request/response round trip.
    ///
    /// # Errors
    /// [`WireError`] as for [`Self::send`] and [`Self::receive`].
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        self.send(req)?;
        self.receive()
    }

    /// Answers a batch of ranges against `release`, unwrapping the
    /// values vector.
    ///
    /// # Errors
    /// [`WireError`] on transport failure or a server-side
    /// [`Response::Error`].
    pub fn batch(&mut self, release: &str, ranges: RangeList) -> Result<Vec<f64>, WireError> {
        match self.request(&Request::Batch {
            release: release.to_string(),
            ranges,
        })? {
            Response::Values { values } => Ok(values),
            Response::Error { message } => Err(WireError(message)),
            other => Err(WireError(format!("unexpected response {other:?}"))),
        }
    }

    /// Executes a typed [`QueryPlan`] against `release`, unwrapping the
    /// answer.
    ///
    /// # Errors
    /// [`WireError`] on transport failure or a server-side
    /// [`Response::Error`].
    pub fn plan(&mut self, release: &str, plan: QueryPlan) -> Result<Answer, WireError> {
        match self.request(&Request::Plan {
            release: release.to_string(),
            plan,
        })? {
            Response::Answer { answer } => Ok(answer),
            Response::Error { message } => Err(WireError(message)),
            other => Err(WireError(format!("unexpected response {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) -> Request {
        decode_request(&encode_request(req)).expect("request decodes")
    }

    fn round_trip_response(resp: &Response) -> Response {
        decode_response(&encode_response(resp)).expect("response decodes")
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Query {
                release: "city".into(),
                lo: vec![0, 0],
                hi: vec![4, 4],
            },
            Request::Batch {
                release: "city".into(),
                ranges: vec![(vec![0, 1], vec![2, 3]), (vec![4, 5], vec![6, 7])],
            },
            // Heterogeneous dims and degenerate corners must survive too.
            Request::Batch {
                release: "x".into(),
                ranges: vec![(vec![0], vec![1]), (vec![0, 0], vec![1, 1])],
            },
            Request::Batch {
                release: "x".into(),
                ranges: vec![(vec![], vec![]), (vec![9], vec![2])],
            },
            Request::Batch {
                release: "empty".into(),
                ranges: vec![],
            },
            Request::Plan {
                release: "city".into(),
                plan: QueryPlan::Many {
                    plans: vec![
                        QueryPlan::Range {
                            lo: vec![0, 0],
                            hi: vec![4, 4],
                        },
                        QueryPlan::od()
                            .with_origin(Region::new((0, 0), (2, 2)))
                            .with_stop(0, Region::new((1, 1), (3, 3)))
                            .with_destination(Region::new((4, 4), (8, 8))),
                        QueryPlan::Marginal { keep: vec![0, 3] },
                        QueryPlan::TopK { k: 17 },
                        QueryPlan::Total,
                    ],
                },
            },
            Request::Plan {
                release: "x".into(),
                plan: QueryPlan::od(),
            },
            Request::Plan {
                release: "series".into(),
                plan: QueryPlan::Window {
                    select: EpochSelector::LastK { k: 4 },
                    merge: WindowMerge::Sum,
                    plan: Box::new(QueryPlan::Marginal { keep: vec![0] }),
                },
            },
            Request::Plan {
                release: "series".into(),
                plan: QueryPlan::Window {
                    select: EpochSelector::Range { from: 2, to: 9 },
                    merge: WindowMerge::PerEpoch,
                    plan: Box::new(QueryPlan::TopK { k: 3 }),
                },
            },
            Request::Plan {
                release: "series".into(),
                plan: QueryPlan::Window {
                    select: EpochSelector::At { epoch: 7 },
                    merge: WindowMerge::Sum,
                    plan: Box::new(QueryPlan::Total),
                },
            },
            Request::Plan {
                release: "city".into(),
                plan: QueryPlan::DrillDown {
                    level: 3,
                    plan: Box::new(QueryPlan::Marginal { keep: vec![0, 1] }),
                },
            },
            Request::Plan {
                release: "city".into(),
                plan: QueryPlan::DrillDown {
                    level: 0,
                    plan: Box::new(QueryPlan::Range {
                        lo: vec![0, 0],
                        hi: vec![4, 4],
                    }),
                },
            },
            Request::List,
            Request::Stats,
        ];
        for req in &reqs {
            assert_eq!(&round_trip_request(req), req);
        }
    }

    #[test]
    fn answers_round_trip_packed() {
        let resps = vec![
            Response::Answer {
                answer: Answer::Value { value: -0.0 },
            },
            Response::Answer {
                answer: Answer::Marginal {
                    dims: vec![3, 2],
                    values: vec![1.5, -2.0, f64::MAX, 0.0, -1e-300, 7.0],
                },
            },
            Response::Answer {
                answer: Answer::TopK {
                    dims: vec![4, 4],
                    cells: vec![
                        TopCell {
                            coords: vec![3, 1],
                            value: 9.25,
                        },
                        TopCell {
                            coords: vec![0, 0],
                            value: -4.0,
                        },
                    ],
                },
            },
            // An empty-domain top-k (0-d release) packs as index 0.
            Response::Answer {
                answer: Answer::TopK {
                    dims: vec![],
                    cells: vec![TopCell {
                        coords: vec![],
                        value: 2.5,
                    }],
                },
            },
            Response::Answer {
                answer: Answer::Many {
                    answers: vec![
                        Answer::Value { value: 1.0 },
                        Answer::Marginal {
                            dims: vec![1],
                            values: vec![0.5],
                        },
                    ],
                },
            },
            Response::Answer {
                answer: Answer::Epochs {
                    epochs: vec![3, 4, 5],
                    answers: vec![
                        Answer::Value { value: 1.0 },
                        Answer::Value { value: -2.5 },
                        Answer::Marginal {
                            dims: vec![2],
                            values: vec![0.25, 0.75],
                        },
                    ],
                },
            },
        ];
        for resp in &resps {
            assert_eq!(&round_trip_response(resp), resp);
        }
    }

    /// Window plan tags past the legacy set are validated: an unknown
    /// selector or merge tag is a named error, never a misread.
    #[test]
    fn window_decode_rejects_unknown_tags() {
        let good = encode_request(&Request::Plan {
            release: "s".into(),
            plan: QueryPlan::Window {
                select: EpochSelector::LastK { k: 2 },
                merge: WindowMerge::Sum,
                plan: Box::new(QueryPlan::Total),
            },
        });
        for cut in 0..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "cut {cut}");
        }
        // Unknown selector tag.
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 32);
        w.put_u8(OP_PLAN);
        w.put_bytes(b"s");
        w.put_u8(PLAN_WINDOW);
        w.put_u8(0x7E);
        let err = decode_request(&w.finish()).expect_err("selector tag check");
        assert!(err.0.contains("selector"), "{err}");
        // Unknown merge tag.
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 32);
        w.put_u8(OP_PLAN);
        w.put_bytes(b"s");
        w.put_u8(PLAN_WINDOW);
        w.put_u8(SELECT_AT);
        w.put_u64(1);
        w.put_u8(0x7E);
        let err = decode_request(&w.finish()).expect_err("merge tag check");
        assert!(err.0.contains("merge"), "{err}");
        // An epochs answer declaring more ids than the frame holds must
        // fail on the byte budget, not allocate.
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 32);
        w.put_u8(OP_ANSWER);
        w.put_u8(ANSWER_EPOCHS);
        w.put_u64(u64::MAX / 16);
        assert!(decode_response(&w.finish()).is_err());
    }

    #[test]
    fn plan_decode_rejects_malice_without_panicking() {
        let good = encode_request(&Request::Plan {
            release: "r".into(),
            plan: QueryPlan::TopK { k: 3 },
        });
        for cut in 0..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "cut {cut}");
        }
        // Unknown plan tag.
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 16);
        w.put_u8(OP_PLAN);
        w.put_bytes(b"r");
        w.put_u8(0x7F);
        assert!(decode_request(&w.finish()).is_err());
        // A Many declaring far more plans than the frame holds must fail
        // on truncation, not allocate.
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 16);
        w.put_u8(OP_PLAN);
        w.put_bytes(b"r");
        w.put_u8(PLAN_MANY);
        w.put_u64(u64::MAX / 2);
        assert!(decode_request(&w.finish()).is_err());
        // Nesting past the depth cap is refused (the executor would
        // reject the plan anyway; the decoder must not recurse forever).
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 256);
        w.put_u8(OP_PLAN);
        w.put_bytes(b"r");
        for _ in 0..(MAX_PLAN_DEPTH + 2) {
            w.put_u8(PLAN_MANY);
            w.put_u64(1);
        }
        w.put_u8(PLAN_TOTAL);
        let err = decode_request(&w.finish()).expect_err("depth cap must fire");
        assert!(err.0.contains("depth"), "{err}");
        // A bad presence byte in an Od plan is a named error.
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 16);
        w.put_u8(OP_PLAN);
        w.put_bytes(b"r");
        w.put_u8(PLAN_OD);
        w.put_u8(9);
        assert!(decode_request(&w.finish()).is_err());
        // A drill-down level past u32 is a named overflow, not a wrap.
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 32);
        w.put_u8(OP_PLAN);
        w.put_bytes(b"r");
        w.put_u8(PLAN_DRILL_DOWN);
        w.put_u64(u64::MAX);
        w.put_u8(PLAN_TOTAL);
        let err = decode_request(&w.finish()).expect_err("level overflow must fire");
        assert!(err.0.contains("drill-down level overflows"), "{err}");
        // Every truncation of a drill-down plan frame is an error too.
        let good = encode_request(&Request::Plan {
            release: "r".into(),
            plan: QueryPlan::DrillDown {
                level: 2,
                plan: Box::new(QueryPlan::Total),
            },
        });
        for cut in 0..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "drill cut {cut}");
        }
        // A top-k answer cell pointing outside its declared dims is
        // refused on decode.
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 64);
        w.put_u8(OP_ANSWER);
        w.put_u8(ANSWER_TOP_K);
        w.put_usize_slice(&[2, 2]);
        w.put_u64(1);
        w.put_u64(99); // flat index ≥ 4
        w.put_f64(1.0);
        let err = decode_response(&w.finish()).expect_err("index check must fire");
        assert!(err.0.contains("out of domain"), "{err}");
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Value { value: -12.25 },
            Response::Values {
                values: vec![0.5, f64::MAX, -1e-300],
            },
            Response::Releases {
                releases: vec![ReleaseInfo {
                    name: "city".into(),
                    version: 7,
                    mechanism: "EBP".into(),
                    epsilon: 0.5,
                    domain: vec![16, 16],
                    released_values: 256,
                }],
            },
            Response::Stats {
                stats: ServerStats {
                    releases: 2,
                    queries: 99,
                    cache_entries: 1,
                    cache_bytes: 4096,
                    cache_hits: 98,
                    cache_misses: 1,
                    index_entries: 1,
                    index_hits: 10,
                    index_misses: 2,
                    index_build_nanos: 123_456_789,
                    cache_hit_rate: 98.0 / 99.0,
                    index_hit_rate: 10.0 / 12.0,
                    open_connections: 12,
                    accepted_connections: 345,
                    release_hits: vec![ReleaseHits {
                        name: "city".into(),
                        hits: 99,
                    }],
                    evicted_stat_entries: 3,
                    stage_latencies: vec![StageLatency {
                        stage: "execute".into(),
                        transport: "binary".into(),
                        count: 99,
                        p50_nanos: 900,
                        p90_nanos: 1_800,
                        p99_nanos: 3_600,
                        p999_nanos: 7_200,
                    }],
                    series: 1,
                    partial_entries: 4,
                    partial_hits: 6,
                    partial_misses: 2,
                    encoded_entries: 3,
                    encoded_hits: 11,
                    encoded_misses: 3,
                    encoded_bytes: 4096,
                    pyramid_entries: 2,
                    pyramid_hits: 8,
                    pyramid_misses: 2,
                    pyramid_bytes: 2048,
                },
            },
            Response::Error {
                message: "unknown release 'x'".into(),
            },
        ];
        for resp in &resps {
            assert_eq!(&round_trip_response(resp), resp);
        }
    }

    /// A stats frame from a pre-observability server — every field up to
    /// `accepted_connections`, nothing after — must still decode, with
    /// the observability tail defaulting to empty. This pins the
    /// forward-compatibility half of the stats-frame versioning story
    /// (new client, old server); the reverse direction is covered by the
    /// tail being strictly appended, never reordering existing fields.
    #[test]
    fn stats_frame_without_observability_tail_still_decodes() {
        let stats = ServerStats {
            releases: 2,
            queries: 40,
            cache_entries: 1,
            cache_bytes: 1024,
            cache_hits: 39,
            cache_misses: 1,
            index_entries: 1,
            index_hits: 5,
            index_misses: 1,
            index_build_nanos: 777,
            cache_hit_rate: 0.975,
            index_hit_rate: 5.0 / 6.0,
            open_connections: 2,
            accepted_connections: 9,
            release_hits: vec![ReleaseHits {
                name: "city".into(),
                hits: 40,
            }],
            evicted_stat_entries: 0,
            stage_latencies: Vec::new(),
            series: 0,
            partial_entries: 0,
            partial_hits: 0,
            partial_misses: 0,
            encoded_entries: 0,
            encoded_hits: 0,
            encoded_misses: 0,
            encoded_bytes: 0,
            pyramid_entries: 0,
            pyramid_hits: 0,
            pyramid_misses: 0,
            pyramid_bytes: 0,
        };
        // Re-encode the frame the way the previous wire revision did:
        // everything except the appended observability tail.
        let mut w = writer(256, OP_STATS_RESP);
        w.put_u64(stats.releases as u64);
        w.put_u64(stats.queries);
        w.put_u64(stats.cache_entries as u64);
        w.put_u64(stats.cache_bytes as u64);
        w.put_u64(stats.cache_hits);
        w.put_u64(stats.cache_misses);
        w.put_u64(stats.release_hits.len() as u64);
        for rh in &stats.release_hits {
            put_wire_str(&mut w, &rh.name);
            w.put_u64(rh.hits);
        }
        w.put_u64(stats.index_entries as u64);
        w.put_u64(stats.index_hits);
        w.put_u64(stats.index_misses);
        w.put_u64(stats.index_build_nanos);
        w.put_f64(stats.cache_hit_rate);
        w.put_f64(stats.index_hit_rate);
        w.put_u64(stats.open_connections);
        w.put_u64(stats.accepted_connections);
        let legacy_frame = w.finish().to_vec();
        // Sanity: the current encoder's output is a strict extension.
        let current = encode_response(&Response::Stats {
            stats: stats.clone(),
        });
        assert_eq!(
            &current[..legacy_frame.len()],
            &legacy_frame[..],
            "observability fields must extend the frame, not reshape it"
        );
        let decoded = decode_response(&legacy_frame).expect("legacy frame decodes");
        assert_eq!(decoded, Response::Stats { stats });
    }

    /// The tail is all-or-nothing: a frame truncated *inside* the tail
    /// is a named error, not a silent partial decode.
    #[test]
    fn stats_frame_with_torn_tail_is_rejected() {
        let full = encode_response(&Response::Stats {
            stats: ServerStats {
                releases: 1,
                queries: 1,
                cache_entries: 0,
                cache_bytes: 0,
                cache_hits: 0,
                cache_misses: 0,
                index_entries: 0,
                index_hits: 0,
                index_misses: 0,
                index_build_nanos: 0,
                cache_hit_rate: 0.0,
                index_hit_rate: 0.0,
                open_connections: 0,
                accepted_connections: 0,
                release_hits: Vec::new(),
                evicted_stat_entries: 7,
                stage_latencies: vec![StageLatency {
                    stage: "queue".into(),
                    transport: "json".into(),
                    count: 1,
                    p50_nanos: 10,
                    p90_nanos: 10,
                    p99_nanos: 10,
                    p999_nanos: 10,
                }],
                series: 1,
                partial_entries: 0,
                partial_hits: 0,
                partial_misses: 0,
                encoded_entries: 2,
                encoded_hits: 3,
                encoded_misses: 2,
                encoded_bytes: 128,
                pyramid_entries: 1,
                pyramid_hits: 4,
                pyramid_misses: 1,
                pyramid_bytes: 256,
            },
        });
        for cut in [full.len() - 1, full.len() - 9, full.len() - 40] {
            assert!(decode_response(&full[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn decode_rejects_malice_without_panicking() {
        let good = encode_request(&Request::List);
        // Truncations at every prefix length.
        for cut in 0..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "cut {cut}");
        }
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(decode_request(&bad).is_err());
        // Wrong version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(decode_request(&bad).is_err());
        // Unknown opcode.
        let mut bad = good.clone();
        bad[5] = 0x77;
        assert!(decode_request(&bad).is_err());
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert!(decode_request(&bad).is_err());
        // A batch declaring far more coordinates than the frame holds
        // must error before allocating.
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 64);
        w.put_u8(OP_BATCH);
        w.put_bytes(b"r");
        w.put_u16(2);
        w.put_u64(u64::MAX / 64);
        let body = w.finish();
        assert!(decode_request(&body).is_err());
        // Zero-width ranges consume no payload bytes, so the count cap —
        // not the bytes-present check — must stop an adversarial count
        // (u64::MAX here would otherwise panic on allocation).
        for count in [u64::MAX, u64::MAX / 64, (MAX_ZERO_DIM_RANGES as u64) + 1] {
            let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 64);
            w.put_u8(OP_BATCH);
            w.put_bytes(b"r");
            w.put_u16(0);
            w.put_u64(count);
            let body = w.finish();
            let err = decode_request(&body).expect_err("count cap must fire");
            assert!(err.0.contains("zero-dimension"), "{err}");
        }
        // A modest zero-dimension batch still round-trips.
        let req = Request::Batch {
            release: "r".into(),
            ranges: vec![(vec![], vec![]); 100],
        };
        assert_eq!(round_trip_request(&req), req);
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut buf = Vec::new();
        let a = encode_request(&Request::Stats);
        let b = encode_request(&Request::List);
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b);
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        // Declared length beyond the cap.
        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // Mid-frame EOF.
        let mut buf = Vec::new();
        write_frame(&mut buf, &encode_request(&Request::List)).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut &buf[..]).is_err());
        // EOF inside the length prefix is truncation, not a clean close.
        let err = read_frame(&mut &buf[..2]).expect_err("partial prefix");
        assert!(err.0.contains("2 of 4"), "{err}");
        // Writing an oversized body is refused client-side.
        let body = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        assert!(write_frame(&mut Vec::new(), &body).is_err());
    }

    #[test]
    fn varints_round_trip_edge_values() {
        for v in [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos, "t").unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // A truncated varint and an 11-byte varint are named errors.
        let mut pos = 0;
        assert!(get_uvarint(&[0x80], &mut pos, "t").is_err());
        let mut pos = 0;
        let over = [0xFFu8; 11];
        assert!(get_uvarint(&over, &mut pos, "t").is_err());
        // 10 bytes whose final byte carries more than u64's last bit.
        let mut pos = 0;
        let mut top_heavy = [0x80u8; 10];
        top_heavy[9] = 0x02;
        assert!(get_uvarint(&top_heavy, &mut pos, "t").is_err());
    }

    #[test]
    fn packed_requests_round_trip_and_shrink() {
        // A dense homogeneous batch round-trips through the packed
        // opcode and lands well under half the legacy size.
        let ranges: Vec<(Vec<usize>, Vec<usize>)> = (0..500)
            .map(|i| {
                (
                    vec![i % 64, (i * 7) % 64],
                    vec![i % 64 + 1, (i * 7) % 64 + 3],
                )
            })
            .collect();
        let req = Request::Batch {
            release: "city".into(),
            ranges,
        };
        let packed = encode_request_packed(&req);
        let legacy = encode_request(&req);
        assert_eq!(decode_request(&packed).unwrap(), req);
        assert_eq!(decode_request(&legacy).unwrap(), req);
        assert!(
            packed.len() * 2 < legacy.len(),
            "packed {} vs legacy {}",
            packed.len(),
            legacy.len()
        );
        // Truncations at every prefix length still error, never panic.
        for cut in 0..packed.len().min(64) {
            assert!(decode_request(&packed[..cut]).is_err(), "cut {cut}");
        }
        // Heterogeneous and empty batches fall back to legacy bytes.
        for req in [
            Request::Batch {
                release: "x".into(),
                ranges: vec![(vec![0], vec![1]), (vec![0, 0], vec![1, 1])],
            },
            Request::Batch {
                release: "empty".into(),
                ranges: vec![],
            },
            Request::Query {
                release: "city".into(),
                lo: vec![0, 0],
                hi: vec![4, 4],
            },
            Request::List,
        ] {
            assert_eq!(encode_request_packed(&req), encode_request(&req));
        }
        // Extreme coordinates survive the zigzag round trip.
        let req = Request::Batch {
            release: "x".into(),
            ranges: vec![(vec![usize::MAX, 0], vec![0, usize::MAX])],
        };
        assert_eq!(decode_request(&encode_request_packed(&req)).unwrap(), req);
        // Zero-dimension packed batches obey the same count cap.
        let req = Request::Batch {
            release: "r".into(),
            ranges: vec![(vec![], vec![]); 100],
        };
        assert_eq!(decode_request(&encode_request_packed(&req)).unwrap(), req);
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 64);
        w.put_u8(OP_BATCH_PACKED);
        w.put_bytes(b"r");
        w.put_u16(0);
        w.put_u64(u64::MAX);
        let err = decode_request(&w.finish()).expect_err("count cap must fire");
        assert!(err.0.contains("zero-dimension"), "{err}");
        // A declared word count the blob cannot hold errors before any
        // allocation.
        let mut w = FrameWriter::with_capacity(WIRE_MAGIC, WIRE_VERSION, 64);
        w.put_u8(OP_BATCH_PACKED);
        w.put_bytes(b"r");
        w.put_u16(2);
        w.put_u64(u64::MAX / 64);
        w.put_bytes(&[0, 0, 0]);
        assert!(decode_request(&w.finish()).is_err());
    }

    #[test]
    fn packed_responses_round_trip() {
        let resps = vec![
            Response::Values {
                values: vec![0.5, 0.5, -1e-300, f64::MAX, 0.0, -0.0, 42.0],
            },
            Response::Values { values: vec![] },
            Response::Answer {
                answer: Answer::Many {
                    answers: vec![
                        Answer::Marginal {
                            dims: vec![3, 2],
                            values: vec![1.5, -2.0, f64::MAX, 0.0, -1e-300, 7.0],
                        },
                        Answer::Value { value: -0.0 },
                        Answer::TopK {
                            dims: vec![4, 4],
                            cells: vec![TopCell {
                                coords: vec![3, 1],
                                value: 9.25,
                            }],
                        },
                    ],
                },
            },
            Response::Answer {
                answer: Answer::Epochs {
                    epochs: vec![3, 4],
                    answers: vec![
                        Answer::Marginal {
                            dims: vec![2],
                            values: vec![0.25, 0.75],
                        },
                        Answer::Value { value: 1.0 },
                    ],
                },
            },
        ];
        for resp in &resps {
            let packed = encode_response_packed(resp);
            assert_eq!(&decode_response(&packed).unwrap(), resp);
            // NaN-free payloads above: equality is exact bit equality
            // for these values, and legacy decode agrees.
            assert_eq!(&decode_response(&encode_response(resp)).unwrap(), resp);
        }
        // Non-packable variants emit legacy bytes from the packed
        // encoder too.
        for resp in [
            Response::Value { value: -12.25 },
            Response::Error {
                message: "x".into(),
            },
        ] {
            assert_eq!(encode_response_packed(&resp), encode_response(&resp));
        }
        // A repeated-value vector collapses to ~1 byte per value.
        let flat = Response::Values {
            values: vec![3.25; 1000],
        };
        let packed = encode_response_packed(&flat);
        let legacy = encode_response(&flat);
        assert!(
            packed.len() * 4 < legacy.len(),
            "packed {} vs legacy {}",
            packed.len(),
            legacy.len()
        );
        // Truncations inside a packed values frame are errors.
        let body = encode_response_packed(&Response::Values {
            values: vec![1.0, 2.0, 3.0],
        });
        for cut in 0..body.len() {
            assert!(decode_response(&body[..cut]).is_err(), "cut {cut}");
        }
    }
}
