//! # dpod-serve
//!
//! The analyst-facing serving layer of the publication model (Fig. 1 of
//! the paper): a trusted curator *publishes* sanitized releases; untrusted
//! analysts *query* them — at volume. This crate turns the workspace's
//! one-shot `PublishedRelease` artifact into a long-lived service:
//!
//! * [`Catalog`] — a sharded, `RwLock`-striped in-memory store of named,
//!   versioned releases, with directory persistence via the `DPRL` binary
//!   frame (`dpod_fmatrix::codec::RELEASE_MAGIC`);
//! * [`QueryEngine`] — rebuilds a release into its queryable
//!   [`SanitizedMatrix`](dpod_core::SanitizedMatrix) (prefix-sum table
//!   included) on first access and memoizes it under an LRU byte budget,
//!   so steady-state range queries are `O(2^d)` lookups; beside each
//!   rebuild it caches the release's prepared
//!   [`ReleaseIndex`](dpod_query::ReleaseIndex) (memoized marginal
//!   tables with their own prefix sums, descending cell order, cached
//!   total) under the same budget, so warm aggregate plans skip the
//!   rescan entirely;
//! * [`Server`] — the request front end: an in-process [`Server::handle`]
//!   API driven directly by the CLI, tests and benches, plus two
//!   std-only TCP serving cores ([`spawn_with`], selected by
//!   [`FrontEnd`]): an epoll-driven event loop where open connections
//!   are cheap state served by a small worker pool (the default), and
//!   the legacy thread-per-connection pool kept as a kill-switch. Both
//!   speak newline-delimited JSON and/or the length-prefixed `DPRB`
//!   binary protocol ([`wire`]), selected per connection by a preamble
//!   sniff ([`WireMode`]).
//!
//! Every transport serves the same typed query algebra: a
//! [`Request::Plan`](protocol::Request::Plan) carries any
//! [`QueryPlan`](dpod_query::QueryPlan) (range sum, OD query, axis
//! marginal, top-k, total, or a `Many` batch) and answers come back as
//! the matching [`Answer`](dpod_query::Answer) variant — bit-identical
//! whether the plan arrived in-process, as NDJSON, or as `DPRB` frames.
//! The algebra itself lives in `dpod-query` (`dpod_query::plan`), so
//! in-process analysts need no server at all.
//!
//! Everything released through this crate is DP post-processing: the
//! catalog stores only `PublishedRelease` artifacts, never raw counts.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod catalog;
#[cfg(unix)]
mod conn;
mod engine;
#[cfg(unix)]
mod event;
pub mod metrics;
pub mod protocol;
pub mod series;
mod server;
pub mod wire;

pub use catalog::{Catalog, CatalogEntry, SaveReport};
pub use engine::{EngineStats, QueryEngine};
#[cfg(unix)]
pub use event::WRITE_BACKPRESSURE_BYTES;
pub use metrics::{spawn_metrics_exporter, MetricsExporter, ServeMetrics, Stage, Transport};
pub use series::{EpochInfo, SeriesLedgers, EPOCH_SEP};
pub use server::{
    spawn, spawn_retention_timer, spawn_wire, spawn_with, FrontEnd, ResponseEncoding, Server,
    ServerHandle, SpawnOptions, WireMode, DEFAULT_CACHE_BYTES, IDLE_TIMEOUT, MAX_LINE_BYTES,
    MAX_RELEASE_HIT_ENTRIES,
};

/// Serving-layer error: a displayable message naming the failing operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ServeError {}

impl From<String> for ServeError {
    fn from(s: String) -> Self {
        ServeError(s)
    }
}

impl From<&str> for ServeError {
    fn from(s: &str) -> Self {
        ServeError(s.to_string())
    }
}
