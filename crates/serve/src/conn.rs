//! Per-connection protocol state machines for the event-driven front
//! end: incremental assembly of NDJSON lines and `DPRB` frames from
//! partial, nonblocking reads.
//!
//! The [`Assembler`] is deliberately socket-free — it consumes byte
//! chunks in whatever sizes the kernel delivers them and emits
//! [`WorkItem`]s, so a slow-loris client feeding one byte per read
//! produces exactly the same items as a pipelined client delivering a
//! megabyte at once (the unit tests below pin this byte-at-a-time).
//! All protocol semantics mirror the blocking thread-pool front end:
//!
//! * the encoding sniff matches the available prefix against the `DPRB`
//!   magic and never consumes bytes from a JSON client;
//! * JSON lines are bounded by [`MAX_LINE_BYTES`](crate::MAX_LINE_BYTES)
//!   (an unbounded line earns one error response, then disconnect);
//! * a `DPRB` frame declaring more than
//!   [`wire::MAX_FRAME_BYTES`] — or truncated by EOF mid-frame — cannot
//!   be resynced: the stream is poisoned with one final error item.
//!
//! Decoding (JSON parse, frame-body decode) and execution stay on the
//! worker pool; the event loop only runs this framing layer.

use crate::server::{WireMode, MAX_LINE_BYTES};
use crate::wire;

/// One unit of work extracted from a connection's byte stream, in
/// arrival order. The worker that owns the connection's queue turns
/// each item into response bytes (possibly none, for blank lines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WorkItem {
    /// One newline-delimited JSON request line (without the trailing
    /// `\n`; may be blank). Decoded and answered on a worker.
    JsonLine(Vec<u8>),
    /// One length-prefixed `DPRB` frame body (length already validated
    /// against [`wire::MAX_FRAME_BYTES`]). Decoded and answered on a
    /// worker.
    Frame(Vec<u8>),
    /// An unrecoverable transport violation or an encoding refusal: the
    /// worker emits `message` as one final `Response::Error` (a `DPRB`
    /// frame when `as_binary`, a JSON line otherwise) and the
    /// connection closes once it flushes. Always the queue's last item.
    Desync {
        /// Encode the farewell as a binary frame (`true`) or JSON line.
        as_binary: bool,
        /// Human-readable description of the violation.
        message: String,
    },
    /// EOF arrived before the stream committed to an encoding (e.g. a
    /// 5-byte preamble cut short): nothing to answer, close silently.
    SilentClose,
}

/// Which protocol the connection's bytes have committed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Encoding {
    /// Awaiting enough initial bytes to tell `DPRB` from JSON.
    Sniffing,
    /// Newline-delimited JSON for the connection's lifetime.
    Json,
    /// `DPRB` length-prefixed frames (preamble consumed and validated).
    Binary,
}

/// Incremental protocol assembler: bytes in, [`WorkItem`]s out.
#[derive(Debug)]
pub(crate) struct Assembler {
    mode: WireMode,
    enc: Encoding,
    buf: Vec<u8>,
    pos: usize,
    /// High-water mark of the newline scan: bytes in `buf[..scanned]`
    /// are known to hold no `\n` beyond consumed lines, so each push
    /// only scans its newly appended bytes (a slow-loris client feeding
    /// a near-cap line one byte at a time would otherwise make every
    /// push rescan the whole prefix — O(len²) on the loop thread).
    scanned: usize,
    items: Vec<WorkItem>,
    /// Set when a `Desync`/`SilentClose` was emitted: all further input
    /// is ignored (the stream cannot be trusted past the violation).
    poisoned: bool,
    /// Set once EOF was observed; finalizes partial lines/frames.
    eof: bool,
    /// Set when the `DPRB` preamble advertised
    /// [`wire::WIRE_FEATURE_PACKED`]: responses may use the packed
    /// opcodes.
    packed: bool,
}

impl Assembler {
    pub(crate) fn new(mode: WireMode) -> Self {
        Assembler {
            mode,
            enc: Encoding::Sniffing,
            buf: Vec::new(),
            pos: 0,
            scanned: 0,
            items: Vec::new(),
            poisoned: false,
            eof: false,
            packed: false,
        }
    }

    /// Whether the connection negotiated the packed response opcodes
    /// (meaningful only once the stream committed to `DPRB`).
    pub(crate) fn packed(&self) -> bool {
        self.packed
    }

    /// Whether the stream hit an unrecoverable state: once the pending
    /// items are answered the connection must close. (Production code
    /// learns this from the `Desync`/`SilentClose` item itself — the
    /// accessor is for tests.)
    #[cfg(test)]
    pub(crate) fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Feeds one chunk of inbound bytes and re-runs the state machine.
    pub(crate) fn push(&mut self, chunk: &[u8]) {
        if self.poisoned {
            return;
        }
        self.buf.extend_from_slice(chunk);
        self.advance();
        self.compact();
    }

    /// Marks end-of-stream: a trailing unterminated JSON line is served
    /// (exactly as the blocking front end's `read_line` would), while a
    /// partial `DPRB` frame or preamble is a truncation.
    pub(crate) fn push_eof(&mut self) {
        if self.poisoned || self.eof {
            return;
        }
        self.eof = true;
        self.advance();
        self.compact();
    }

    /// Takes every item assembled so far (arrival order).
    pub(crate) fn take_items(&mut self) -> Vec<WorkItem> {
        std::mem::take(&mut self.items)
    }

    /// Whether unconsumed bytes are buffered — a request (or preamble)
    /// caught mid-assembly. The event loop uses this to time the
    /// `parse` stage: a partial's start is stamped when this first
    /// turns true, and the next completed item records the spread.
    pub(crate) fn has_partial(&self) -> bool {
        self.buf.len() > self.pos
    }

    fn poison(&mut self, item: WorkItem) {
        self.items.push(item);
        self.poisoned = true;
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            self.scanned = 0;
        } else if self.pos > 64 << 10 {
            self.buf.drain(..self.pos);
            self.scanned = self.scanned.saturating_sub(self.pos);
            self.pos = 0;
        }
    }

    fn advance(&mut self) {
        loop {
            if self.poisoned {
                return;
            }
            let made_progress = match self.enc {
                Encoding::Sniffing => self.sniff(),
                Encoding::Json => self.take_json_line(),
                Encoding::Binary => self.take_frame(),
            };
            if !made_progress {
                return;
            }
        }
    }

    /// The encoding sniff, byte-for-byte the blocking front end's: the
    /// available prefix is matched against the `DPRB` magic, committing
    /// to binary (and consuming the 5-byte preamble) only on a full
    /// match — so no byte of a JSON stream is ever consumed, and a
    /// preamble arriving one byte at a time still selects binary.
    fn sniff(&mut self) -> bool {
        let avail = &self.buf[self.pos..];
        if avail.is_empty() {
            if self.eof {
                self.poison(WorkItem::SilentClose);
            }
            return false;
        }
        let n = avail.len().min(wire::WIRE_MAGIC.len());
        if avail[..n] != wire::WIRE_MAGIC[..n] {
            // Not a binary preamble; the bytes are a JSON stream.
            if self.mode == WireMode::Binary {
                self.poison(WorkItem::Desync {
                    as_binary: true,
                    message: "this endpoint serves DPRB only (--wire binary)".into(),
                });
                return false;
            }
            self.enc = Encoding::Json;
            return true;
        }
        if avail.len() < 5 {
            // Prefix of the magic so far: wait for more (a JSON client
            // cannot produce these bytes, `{`/`"`-initial as JSON is).
            if self.eof {
                self.poison(WorkItem::SilentClose);
            }
            return false;
        }
        // Full magic + version byte present: consume the preamble.
        let version = avail[4];
        self.pos += 5;
        if self.mode == WireMode::Json {
            self.poison(WorkItem::Desync {
                as_binary: true,
                message: "this endpoint serves JSON only (--wire json)".into(),
            });
            return false;
        }
        // The high bit of the version byte is the packed-opcode feature
        // advertisement, not part of the version number.
        if version & !wire::WIRE_FEATURE_PACKED != wire::WIRE_VERSION {
            self.poison(WorkItem::Desync {
                as_binary: true,
                message: format!(
                    "unsupported DPRB version {version}, expected {}",
                    wire::WIRE_VERSION
                ),
            });
            return false;
        }
        self.packed = version & wire::WIRE_FEATURE_PACKED != 0;
        self.enc = Encoding::Binary;
        true
    }

    fn take_json_line(&mut self) -> bool {
        let avail = &self.buf[self.pos..];
        let start = self.scanned.max(self.pos) - self.pos;
        match avail[start..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|rel| start + rel)
        {
            Some(i) => {
                // The bound applies even when the newline shows up in
                // the same chunk that crossed it: the blocking front
                // end's `Read::take(MAX_LINE_BYTES)` refuses any line
                // whose content reaches the cap, newline or not.
                if i as u64 >= MAX_LINE_BYTES {
                    self.poison(WorkItem::Desync {
                        as_binary: false,
                        message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    });
                    return false;
                }
                self.items.push(WorkItem::JsonLine(avail[..i].to_vec()));
                self.pos += i + 1;
                self.scanned = self.pos;
                true
            }
            None => {
                self.scanned = self.buf.len();
                if avail.len() as u64 >= MAX_LINE_BYTES {
                    self.poison(WorkItem::Desync {
                        as_binary: false,
                        message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    });
                } else if self.eof && !avail.is_empty() {
                    // A final unterminated line is still a request, as
                    // it is under the blocking `read_line` loop.
                    let line = avail.to_vec();
                    self.pos = self.buf.len();
                    self.items.push(WorkItem::JsonLine(line));
                }
                false
            }
        }
    }

    fn take_frame(&mut self) -> bool {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            if self.eof && !avail.is_empty() {
                self.poison(WorkItem::Desync {
                    as_binary: true,
                    message: format!(
                        "protocol error: frame truncated: connection closed after {} of 4 \
                         length bytes",
                        avail.len()
                    ),
                });
            }
            return false;
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes"));
        if len > wire::MAX_FRAME_BYTES {
            self.poison(WorkItem::Desync {
                as_binary: true,
                message: format!(
                    "protocol error: declared frame length {len} exceeds max {}",
                    wire::MAX_FRAME_BYTES
                ),
            });
            return false;
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            if self.eof {
                self.poison(WorkItem::Desync {
                    as_binary: true,
                    message: format!(
                        "protocol error: frame truncated: connection closed with {} of {} \
                         body bytes",
                        avail.len() - 4,
                        len
                    ),
                });
            }
            return false;
        }
        self.items.push(WorkItem::Frame(avail[4..total].to_vec()));
        self.pos += total;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    /// Feeds `bytes` one at a time and returns everything assembled.
    fn drip(mode: WireMode, bytes: &[u8], eof: bool) -> (Vec<WorkItem>, bool) {
        let mut a = Assembler::new(mode);
        for &b in bytes {
            a.push(&[b]);
        }
        if eof {
            a.push_eof();
        }
        (a.take_items(), a.poisoned())
    }

    #[test]
    fn json_lines_assemble_byte_at_a_time() {
        let stream = b"{\"x\":1}\n\n  \n\"List\"\n";
        let (items, poisoned) = drip(WireMode::Auto, stream, false);
        assert!(!poisoned);
        assert_eq!(
            items,
            vec![
                WorkItem::JsonLine(b"{\"x\":1}".to_vec()),
                WorkItem::JsonLine(b"".to_vec()),
                WorkItem::JsonLine(b"  ".to_vec()),
                WorkItem::JsonLine(b"\"List\"".to_vec()),
            ]
        );
        // Identical to the all-at-once delivery.
        let mut bulk = Assembler::new(WireMode::Auto);
        bulk.push(stream);
        assert_eq!(bulk.take_items(), items);
    }

    #[test]
    fn binary_preamble_and_frames_assemble_byte_at_a_time() {
        let mut stream = Vec::new();
        stream.extend_from_slice(wire::WIRE_MAGIC);
        stream.push(wire::WIRE_VERSION);
        let body = wire::encode_request(&Request::List);
        wire::write_frame(&mut stream, &body).unwrap();
        wire::write_frame(&mut stream, &body).unwrap();
        let (items, poisoned) = drip(WireMode::Auto, &stream, false);
        assert!(!poisoned);
        assert_eq!(
            items,
            vec![WorkItem::Frame(body.clone()), WorkItem::Frame(body)]
        );
    }

    #[test]
    fn sniff_never_consumes_json_bytes_and_short_lines_pass() {
        // A sub-4-byte line that mismatches the magic routes to JSON
        // immediately (no stall waiting for 4 bytes).
        let (items, _) = drip(WireMode::Auto, b"{}\n", false);
        assert_eq!(items, vec![WorkItem::JsonLine(b"{}".to_vec())]);

        // A 'D'-initial prefix is held until it mismatches…
        let mut a = Assembler::new(WireMode::Auto);
        a.push(b"DP");
        assert!(a.take_items().is_empty());
        a.push(b"X rest\n");
        assert_eq!(
            a.take_items(),
            vec![WorkItem::JsonLine(b"DPX rest".to_vec())]
        );
    }

    #[test]
    fn eof_semantics_differ_by_encoding() {
        // JSON: a trailing unterminated line is served (the event loop
        // closes on its `peer_closed` flag, not via poisoning).
        let (items, poisoned) = drip(WireMode::Auto, b"\"List\"", true);
        assert_eq!(items, vec![WorkItem::JsonLine(b"\"List\"".to_vec())]);
        assert!(!poisoned);

        // Binary: EOF inside the length prefix is a named truncation.
        let mut stream = Vec::new();
        stream.extend_from_slice(wire::WIRE_MAGIC);
        stream.push(wire::WIRE_VERSION);
        stream.extend_from_slice(&[7, 0]); // 2 of 4 length bytes
        let (items, _) = drip(WireMode::Auto, &stream, true);
        match items.last() {
            Some(WorkItem::Desync { as_binary, message }) => {
                assert!(*as_binary);
                assert!(message.contains("2 of 4"), "{message}");
            }
            other => panic!("expected truncation, got {other:?}"),
        }

        // Binary: EOF mid-body is a named truncation too.
        let mut stream = Vec::new();
        stream.extend_from_slice(wire::WIRE_MAGIC);
        stream.push(wire::WIRE_VERSION);
        stream.extend_from_slice(&100u32.to_le_bytes());
        stream.extend_from_slice(&[0u8; 10]);
        let (items, _) = drip(WireMode::Auto, &stream, true);
        match items.last() {
            Some(WorkItem::Desync { message, .. }) => {
                assert!(message.contains("frame truncated"), "{message}");
            }
            other => panic!("expected truncation, got {other:?}"),
        }

        // EOF before the preamble resolves closes silently.
        let (items, _) = drip(WireMode::Auto, b"DPRB", true);
        assert_eq!(items, vec![WorkItem::SilentClose]);
        let (items, _) = drip(WireMode::Auto, b"", true);
        assert_eq!(items, vec![WorkItem::SilentClose]);
    }

    #[test]
    fn oversized_declarations_poison_the_stream() {
        // Oversized frame length.
        let mut stream = Vec::new();
        stream.extend_from_slice(wire::WIRE_MAGIC);
        stream.push(wire::WIRE_VERSION);
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.extend_from_slice(b"ignored tail");
        let (items, poisoned) = drip(WireMode::Auto, &stream, false);
        assert!(poisoned);
        assert_eq!(items.len(), 1);
        match &items[0] {
            WorkItem::Desync { as_binary, message } => {
                assert!(*as_binary);
                assert!(message.contains("exceeds max"), "{message}");
            }
            other => panic!("expected desync, got {other:?}"),
        }

        // A JSON line that never ends.
        let mut a = Assembler::new(WireMode::Auto);
        let chunk = vec![b'x'; 1 << 20];
        for _ in 0..9 {
            a.push(&chunk);
        }
        assert!(a.poisoned());
        match a.take_items().last() {
            Some(WorkItem::Desync { as_binary, message }) => {
                assert!(!*as_binary);
                assert!(message.contains("request line exceeds"), "{message}");
            }
            other => panic!("expected line-length desync, got {other:?}"),
        }
        // Poisoned streams ignore further input.
        a.push(b"\"List\"\n");
        assert!(a.take_items().is_empty());

        // The cap binds even when the newline arrives in the chunk
        // that crosses it (parity with the blocking `Read::take` path):
        // content of exactly MAX_LINE_BYTES is refused…
        let mut a = Assembler::new(WireMode::Auto);
        a.push(&vec![b'x'; MAX_LINE_BYTES as usize]);
        a.push(b"\n");
        assert!(a.poisoned());
        match a.take_items().last() {
            Some(WorkItem::Desync { message, .. }) => {
                assert!(message.contains("request line exceeds"), "{message}");
            }
            other => panic!("expected line-length desync, got {other:?}"),
        }
        // …while one byte under the cap is served.
        let mut a = Assembler::new(WireMode::Auto);
        a.push(&vec![b'y'; MAX_LINE_BYTES as usize - 1]);
        a.push(b"\n");
        assert!(!a.poisoned());
        assert_eq!(a.take_items().len(), 1);
    }

    #[test]
    fn wire_mode_restrictions_refuse_in_protocol() {
        // Binary preamble on a JSON-only endpoint.
        let mut stream = Vec::new();
        stream.extend_from_slice(wire::WIRE_MAGIC);
        stream.push(wire::WIRE_VERSION);
        let (items, _) = drip(WireMode::Json, &stream, false);
        match &items[0] {
            WorkItem::Desync { as_binary, message } => {
                assert!(*as_binary);
                assert!(message.contains("JSON only"), "{message}");
            }
            other => panic!("expected refusal, got {other:?}"),
        }

        // JSON bytes on a binary-only endpoint.
        let (items, _) = drip(WireMode::Binary, b"\"List\"\n", false);
        match &items[0] {
            WorkItem::Desync { as_binary, message } => {
                assert!(*as_binary);
                assert!(message.contains("DPRB only"), "{message}");
            }
            other => panic!("expected refusal, got {other:?}"),
        }

        // Bad version byte.
        let mut stream = Vec::new();
        stream.extend_from_slice(wire::WIRE_MAGIC);
        stream.push(wire::WIRE_VERSION + 7);
        let (items, _) = drip(WireMode::Auto, &stream, false);
        match &items[0] {
            WorkItem::Desync { message, .. } => {
                assert!(message.contains("version"), "{message}");
            }
            other => panic!("expected version refusal, got {other:?}"),
        }
    }

    #[test]
    fn packed_preamble_negotiates_the_feature_bit() {
        // The feature bit commits to binary and records the
        // negotiation; frames flow as usual.
        let mut stream = Vec::new();
        stream.extend_from_slice(wire::WIRE_MAGIC);
        stream.push(wire::WIRE_VERSION | wire::WIRE_FEATURE_PACKED);
        let body = wire::encode_request(&Request::List);
        wire::write_frame(&mut stream, &body).unwrap();
        let mut a = Assembler::new(WireMode::Auto);
        for &b in &stream {
            a.push(&[b]);
        }
        assert!(!a.poisoned());
        assert!(a.packed());
        assert_eq!(a.take_items(), vec![WorkItem::Frame(body)]);

        // A plain preamble leaves the flag off.
        let mut a = Assembler::new(WireMode::Auto);
        a.push(wire::WIRE_MAGIC);
        a.push(&[wire::WIRE_VERSION]);
        assert!(!a.packed());
        assert!(!a.poisoned());

        // The feature bit excuses nothing about the version bits: a
        // wrong version under the flag is still refused.
        let mut stream = Vec::new();
        stream.extend_from_slice(wire::WIRE_MAGIC);
        stream.push((wire::WIRE_VERSION + 1) | wire::WIRE_FEATURE_PACKED);
        let (items, poisoned) = drip(WireMode::Auto, &stream, false);
        assert!(poisoned);
        match &items[0] {
            WorkItem::Desync { message, .. } => {
                assert!(message.contains("version"), "{message}");
            }
            other => panic!("expected version refusal, got {other:?}"),
        }
    }

    #[test]
    fn garbage_frames_stay_in_sync() {
        // A length-correct garbage frame is one item; the valid frame
        // behind it is another — the boundary holds.
        let mut stream = Vec::new();
        stream.extend_from_slice(wire::WIRE_MAGIC);
        stream.push(wire::WIRE_VERSION);
        let noise = [0xABu8; 16];
        stream.extend_from_slice(&(noise.len() as u32).to_le_bytes());
        stream.extend_from_slice(&noise);
        let good = wire::encode_request(&Request::List);
        wire::write_frame(&mut stream, &good).unwrap();
        let (items, poisoned) = drip(WireMode::Auto, &stream, false);
        assert!(!poisoned);
        assert_eq!(
            items,
            vec![WorkItem::Frame(noise.to_vec()), WorkItem::Frame(good)]
        );
    }
}
