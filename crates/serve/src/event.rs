//! The event-driven TCP front end: one epoll loop owns every socket,
//! `N` pool workers serve `M ≫ N` connections.
//!
//! The thread-pool front end ([`crate::spawn_with`] with
//! [`FrontEnd::Pool`](crate::FrontEnd::Pool)) dedicates a worker to each
//! open connection, so an idle analyst pins a thread and concurrency is
//! capped at the pool size. Here, open connections are plain state — a
//! [`conn::Assembler`](crate::conn) plus byte buffers — registered with
//! a [`polling::Poller`]; the loop reads whatever the kernel has,
//! assembles complete requests, and dispatches them to the same worker
//! pool the legacy front end uses. Division of labor:
//!
//! * **loop thread** — accept, nonblocking reads, protocol framing
//!   (newline scan / length prefix), slow-path writes, timeouts;
//! * **workers** — request decode, [`Server::handle`], response encode
//!   (all the CPU-bound work), and the **direct-write fast path**: when
//!   the connection had no backlogged outbound bytes at dispatch, the
//!   worker writes the encoded response straight to the nonblocking
//!   socket itself, so the reply path is worker → client with no loop
//!   hop and no `eventfd` syscall. Whatever does not fit (a stalled
//!   peer) is handed back over the done channel and the loop finishes
//!   it under write readiness.
//!
//! Responses stay in request order because each connection has at most
//! one job in flight: its parsed items queue up while a worker owns it,
//! and the next batch dispatches when the previous one lands. The
//! direct write is safe for the same reason — the single in-flight
//! worker is the only writer while the loop's buffer is empty, and the
//! loop only writes when no job is in flight or bytes were handed back.
//!
//! ## Backpressure and timeouts
//!
//! A pipelining client that stops draining responses fills the
//! connection's outbound buffer; past
//! [`WRITE_BACKPRESSURE_BYTES`] the loop stops reading (and stops
//! dispatching) for that connection, and once no byte moves in either
//! direction for the configured idle timeout the connection is dropped —
//! no worker ever blocks on a slow socket. Purely idle connections are
//! closed after the same timeout, matching the pool front end.
//!
//! ## Graceful shutdown
//!
//! Setting the shutdown flag (and waking the loop) stops the acceptor,
//! pauses all reads, finishes every parsed-or-running request, flushes
//! the outbound buffers, then exits — bounded by the configured drain
//! deadline, after which stragglers are dropped.

use crate::conn::{Assembler, WorkItem};
use crate::metrics::{Stage, Transport, KIND_UNDECODABLE};
use crate::protocol::{Request, Response};
use crate::server::{Server, WireMode};
use crate::wire;
use dpod_obs::Span;
use polling::{Interest, Poller, Waker};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Outbound bytes buffered for one connection above which the loop
/// stops reading (and dispatching) more of its requests until the
/// buffer drains — the write-side backpressure threshold.
pub const WRITE_BACKPRESSURE_BYTES: usize = 4 << 20;

/// Parsed-but-undispatched requests one connection may queue before its
/// reads pause (bounds memory against a client that pipelines faster
/// than workers answer).
const MAX_PENDING_ITEMS: usize = 4096;

/// Byte twin of [`MAX_PENDING_ITEMS`]: parsed request *payload* bytes
/// one connection may queue before its reads pause. The item count
/// alone would let a client pipeline thousands of near-cap (8 MiB)
/// lines and pin tens of GiB.
const MAX_PENDING_BYTES: usize = 16 << 20;

/// Most work items handed to a worker in one job unit, so one
/// connection's deep pipeline cannot monopolize a worker unboundedly.
const MAX_JOB_ITEMS: usize = 512;

/// Most connection units packed into one dispatch batch: bounds the
/// latency a unit can sit behind its batch-mates while still amortizing
/// the channel round across a large readiness batch.
const MAX_UNITS_PER_JOB: usize = 32;

/// Most bytes read from one connection per readiness event (fairness
/// across connections; level-triggered epoll re-reports the remainder).
const READ_BUDGET: usize = 256 << 10;

/// Loop tick: the upper bound on epoll_wait blocking, so timeout sweeps
/// and the shutdown flag are observed promptly.
const TICK: Duration = Duration::from_millis(100);

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Tunables handed down from [`crate::SpawnOptions`].
#[derive(Debug, Clone)]
pub(crate) struct EventConfig {
    pub workers: usize,
    pub mode: WireMode,
    pub idle_timeout: Duration,
}

/// Completion signalling from workers to the loop. The `eventfd` wake
/// is a syscall per call, so workers elide it twice over: while the
/// loop is awake (`loop_sleeping == false` — the loop publishes its
/// intent to sleep and *then* drains the done channel and re-scans for
/// dispatchable work, so nothing can fall between the final checks and
/// the blocking `epoll_wait`), and for fully-direct-written
/// completions nothing waits on (`urgent == false`): those only clear
/// the connection's `busy` flag, and the loop's pre-sleep scan picks
/// up any parsed requests that were queued behind the job. The
/// worker-side `has_pending` check and the loop-side pre-sleep `busy`
/// check form a Dekker-style pair of SeqCst store→load sequences: at
/// least one side always observes the other, so a request can never be
/// stranded with neither a dispatch nor a wake.
#[derive(Debug)]
struct WorkerSignal {
    waker: Arc<Waker>,
    loop_sleeping: Arc<AtomicBool>,
}

impl WorkerSignal {
    fn notify(&self, urgent: bool) {
        if urgent && self.loop_sleeping.load(Ordering::SeqCst) {
            self.waker.wake();
        }
    }
}

/// The slice of one connection visible to its in-flight worker: the
/// socket plus the two flags of the completion handshake, in one `Arc`
/// so dispatch clones a single refcount.
#[derive(Debug)]
struct ConnShared {
    stream: TcpStream,
    /// A worker owns an in-flight job for this connection. Set by the
    /// loop at dispatch; cleared by the worker on a fully-direct-
    /// written completion, by the loop in `collect_done` otherwise.
    busy: AtomicBool,
    /// Mirror of "the loop has parsed requests queued behind this job"
    /// (maintained by the loop). Checked by the worker *after* clearing
    /// `busy`: seeing it set makes the completion urgent, closing the
    /// race against the loop's pre-sleep dispatch scan.
    has_pending: AtomicBool,
    /// Milliseconds since the loop's epoch at the connection's last job
    /// completion, stored by the worker. Fast-path completions send
    /// nothing over the done channel, so without this stamp a response
    /// delivered after a slow query would not count as activity and the
    /// idle sweep could close a connection it just answered.
    last_done_ms: AtomicU64,
}

/// One connection's work, owned by a worker until it completes: either
/// entirely on the worker (response fully written directly → the worker
/// clears `busy` itself and nothing crosses the done channel), or by
/// handing leftovers back as a [`DoneUnit`].
struct JobUnit {
    slot: usize,
    gen: u32,
    /// The parsed items with their queue-entry stamps (nanoseconds on
    /// the server's metrics clock), so the worker can account each
    /// item's queue wait at dequeue.
    items: Vec<(WorkItem, u64)>,
    shared: Arc<ConnShared>,
    /// The loop's outbound buffer was empty at dispatch: the worker may
    /// write the response bytes straight to the socket (it is the
    /// connection's only writer until it completes).
    direct: bool,
}

/// A dispatch batch: ready work from **several connections** travels in
/// one channel send (responses across connections have no ordering
/// contract, only responses *within* one). Batching is what amortizes
/// the channel round and the worker wake-up across the whole epoll
/// readiness batch instead of paying them per connection.
struct Job {
    units: Vec<JobUnit>,
}

/// One connection's completion: whatever response bytes the worker did
/// not manage to write directly (all of them when the fast path was not
/// available).
struct DoneUnit {
    slot: usize,
    gen: u32,
    bytes: Vec<u8>,
    close: bool,
    /// The direct write hit a hard IO error: drop the connection.
    io_failed: bool,
}

/// A finished batch, mirroring [`Job`].
struct Done {
    units: Vec<DoneUnit>,
}

/// Per-connection state owned by the loop. The [`ConnShared`] half is
/// visible to at most one in-flight job at a time (`Arc` keeps the
/// descriptor alive — and un-recycled — if the loop closes the
/// connection while that job still runs).
struct EvConn {
    shared: Arc<ConnShared>,
    asm: Assembler,
    out: Vec<u8>,
    outpos: usize,
    /// Parsed items queued for dispatch, each with its queue-entry
    /// stamp on the server's metrics clock.
    pending: VecDeque<(WorkItem, u64)>,
    /// Payload bytes held in `pending` (see [`MAX_PENDING_BYTES`]).
    pending_bytes: usize,
    close_after_flush: bool,
    peer_closed: bool,
    last_activity: Instant,
    registered: Interest,
    /// Metrics-clock stamp of when the assembler first went partial
    /// (bytes buffered, no complete item) — the `parse` stage measures
    /// from here to the next completed item.
    partial_since: Option<u64>,
    /// The transport the connection settled on, learned from its first
    /// parsed item (labels loop-side `write` stage samples).
    transport: Option<Transport>,
}

impl EvConn {
    fn outstanding(&self) -> usize {
        self.out.len() - self.outpos
    }

    fn busy(&self) -> bool {
        self.shared.busy.load(Ordering::SeqCst)
    }

    /// Anything left that graceful shutdown should wait for?
    fn quiesced(&self) -> bool {
        !self.busy() && self.pending.is_empty() && self.outstanding() == 0
    }
}

/// The worker half of the direct-write fast path: pushes `bytes` into
/// the nonblocking socket until done or `WouldBlock`, draining written
/// prefixes in place (on return, `bytes` holds only the unwritten
/// tail).
///
/// # Errors
/// Hard IO failures (reset, broken pipe); the caller drops the
/// connection through the loop.
fn write_direct(stream: &TcpStream, bytes: &mut Vec<u8>) -> std::io::Result<()> {
    let mut pos = 0usize;
    let result = loop {
        if pos == bytes.len() {
            break Ok(());
        }
        match (&*stream).write(&bytes[pos..]) {
            Ok(0) => break Ok(()), // treat as a stall; the loop retries
            Ok(n) => pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => break Err(e),
        }
    };
    bytes.drain(..pos);
    result
}

/// The transport a batch of work items travels on, from the first
/// item's framing (a connection never mixes framings mid-stream).
fn transport_of(items: &[(WorkItem, u64)]) -> Transport {
    match items.first().map(|(item, _)| item) {
        Some(WorkItem::JsonLine(_)) => Transport::Json,
        Some(WorkItem::Desync { as_binary, .. }) => {
            if *as_binary {
                Transport::Binary
            } else {
                Transport::Json
            }
        }
        _ => Transport::Binary,
    }
}

/// Turns one connection's ordered work items into response bytes.
/// Returns `(bytes, close_after)`; shared by every worker.
///
/// Each item carries its queue-entry stamp so the worker can record the
/// queue wait at dequeue; the execute and encode stages are timed here
/// too, where the work actually runs.
fn run_job(server: &Server, items: Vec<(WorkItem, u64)>) -> (Vec<u8>, bool) {
    let metrics = server.metrics();
    let dequeued = metrics.now_nanos();
    let mut out = Vec::new();
    for (item, queued_at) in items {
        match item {
            WorkItem::JsonLine(bytes) => {
                metrics.record_stage(
                    Transport::Json,
                    Stage::Queue,
                    dequeued.saturating_sub(queued_at),
                );
                let mut span = Span::start();
                // Invalid UTF-8 closes the connection, as the blocking
                // front end's `read_line` error does.
                let Ok(line) = std::str::from_utf8(&bytes) else {
                    return (out, true);
                };
                if line.trim().is_empty() {
                    continue;
                }
                let response = match serde_json::from_str::<Request>(line.trim_end()) {
                    Ok(request) => {
                        metrics.count_request(Transport::Json, &request);
                        server.handle(&request)
                    }
                    Err(e) => {
                        metrics.count_request_index(Transport::Json, KIND_UNDECODABLE);
                        Response::Error {
                            message: format!("bad request: {e}"),
                        }
                    }
                };
                span.lap(metrics.stage(Transport::Json, Stage::Execute));
                let body = serde_json::to_string(&response).unwrap_or_else(|e| {
                    format!("{{\"Error\":{{\"message\":\"serialization failed: {e}\"}}}}")
                });
                out.extend_from_slice(body.as_bytes());
                out.push(b'\n');
                span.finish(metrics.stage(Transport::Json, Stage::Encode));
            }
            WorkItem::Frame(body) => {
                metrics.record_stage(
                    Transport::Binary,
                    Stage::Queue,
                    dequeued.saturating_sub(queued_at),
                );
                let mut span = Span::start();
                let response = match wire::decode_request(&body) {
                    Ok(request) => {
                        metrics.count_request(Transport::Binary, &request);
                        server.handle(&request)
                    }
                    Err(e) => {
                        metrics.count_request_index(Transport::Binary, KIND_UNDECODABLE);
                        Response::Error {
                            message: format!("bad request: {e}"),
                        }
                    }
                };
                span.lap(metrics.stage(Transport::Binary, Stage::Execute));
                if wire::write_frame(&mut out, &wire::encode_response(&response)).is_err() {
                    return (out, true);
                }
                span.finish(metrics.stage(Transport::Binary, Stage::Encode));
            }
            WorkItem::Desync { as_binary, message } => {
                let transport = if as_binary {
                    Transport::Binary
                } else {
                    Transport::Json
                };
                metrics.count_request_index(transport, KIND_UNDECODABLE);
                let farewell = Response::Error { message };
                if as_binary {
                    let _ = wire::write_frame(&mut out, &wire::encode_response(&farewell));
                } else {
                    if let Ok(body) = serde_json::to_string(&farewell) {
                        out.extend_from_slice(body.as_bytes());
                    }
                    out.push(b'\n');
                }
                return (out, true);
            }
            WorkItem::SilentClose => return (out, true),
        }
    }
    (out, false)
}

/// Spawns the event front end over an already-bound listener: the loop
/// thread, `cfg.workers` pool workers, and the waker/shutdown plumbing
/// the [`crate::ServerHandle`] drives.
///
/// # Errors
/// Creating the poller or waker (notably `Unsupported` off Linux, which
/// [`crate::spawn_with`] turns into a thread-pool fallback).
pub(crate) fn spawn(
    server: Arc<Server>,
    listener: TcpListener,
    cfg: EventConfig,
    shutdown: Arc<AtomicBool>,
    drain_ms: Arc<AtomicU64>,
) -> std::io::Result<(std::thread::JoinHandle<()>, Arc<Waker>)> {
    let poller = Poller::new()?;
    let waker = Arc::new(Waker::new(&poller, TOKEN_WAKER)?);
    listener.set_nonblocking(true)?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;

    // Shared clock origin for the workers' completion stamps.
    let epoch = Instant::now();
    let loop_sleeping = Arc::new(AtomicBool::new(false));
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (done_tx, done_rx) = mpsc::channel::<Done>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    for _ in 0..cfg.workers.max(1) {
        let job_rx = Arc::clone(&job_rx);
        let done_tx = done_tx.clone();
        let server = Arc::clone(&server);
        let signal = WorkerSignal {
            waker: Arc::clone(&waker),
            loop_sleeping: Arc::clone(&loop_sleeping),
        };
        std::thread::spawn(move || {
            // Batch scheduling class: a waking worker no longer preempts
            // running clients mid-burst, so readiness accumulates and
            // both the loop's and the workers' batches grow (a real
            // effect only when cores are scarce; harmless otherwise).
            let _ = polling::sched::set_current_thread_batch();
            loop {
                let job = {
                    let guard = job_rx.lock().unwrap_or_else(|e| e.into_inner());
                    guard.recv()
                };
                match job {
                    Ok(job) => {
                        let mut units = Vec::new();
                        let mut urgent = false;
                        for unit in job.units {
                            let transport = transport_of(&unit.items);
                            let (mut bytes, close) = run_job(&server, unit.items);
                            unit.shared
                                .last_done_ms
                                .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
                            let mut io_failed = false;
                            if unit.direct && !bytes.is_empty() {
                                let span = Span::start();
                                if write_direct(&unit.shared.stream, &mut bytes).is_err() {
                                    io_failed = true;
                                }
                                span.finish(server.metrics().stage(transport, Stage::Write));
                            }
                            if bytes.is_empty() && !close && !io_failed {
                                // The hot path: response fully on the wire.
                                // Clearing `busy` here (after the write, so
                                // the next job's bytes cannot overtake)
                                // completes the unit with nothing sent back
                                // to the loop at all — unless requests are
                                // already parsed behind this job, in which
                                // case only a wake lets the loop dispatch
                                // them (Dekker pair with the pre-sleep
                                // scan; see `WorkerSignal`).
                                unit.shared.busy.store(false, Ordering::SeqCst);
                                urgent |= unit.shared.has_pending.load(Ordering::SeqCst);
                                continue;
                            }
                            units.push(DoneUnit {
                                slot: unit.slot,
                                gen: unit.gen,
                                bytes,
                                close,
                                io_failed,
                            });
                        }
                        // Leftovers, closes, and failures need the loop
                        // promptly; fast-path completions at most need a
                        // wake when requests are queued behind them.
                        urgent |= !units.is_empty();
                        if !units.is_empty() && done_tx.send(Done { units }).is_err() {
                            return; // loop gone: server stopped
                        }
                        signal.notify(urgent);
                    }
                    Err(_) => return, // job channel closed: server stopped
                }
            }
        });
    }
    drop(done_tx);

    let loop_waker = Arc::clone(&waker);
    let thread = std::thread::spawn(move || {
        // Same batch class as the workers: on core-starved hosts the
        // loop then wakes with fuller readiness batches instead of
        // preempting clients after every single request.
        let _ = polling::sched::set_current_thread_batch();
        EventLoop {
            server,
            poller,
            listener: Some(listener),
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            job_tx,
            done_rx,
            waker: loop_waker,
            sleeping: loop_sleeping,
            epoch,
            cfg,
            shutdown,
            drain_ms,
            scratch: vec![0u8; 64 << 10],
            staged: Vec::new(),
        }
        .run();
    });
    Ok((thread, waker))
}

struct EventLoop {
    server: Arc<Server>,
    poller: Poller,
    listener: Option<TcpListener>,
    conns: Vec<Option<EvConn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    job_tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<Done>,
    waker: Arc<Waker>,
    sleeping: Arc<AtomicBool>,
    epoch: Instant,
    cfg: EventConfig,
    shutdown: Arc<AtomicBool>,
    drain_ms: Arc<AtomicU64>,
    scratch: Vec<u8>,
    /// Units staged by [`EventLoop::maybe_dispatch`] within the current
    /// iteration, shipped in batches by [`EventLoop::flush_staged`].
    staged: Vec<JobUnit>,
}

impl EventLoop {
    fn token(&self, slot: usize) -> u64 {
        (slot as u64) | (u64::from(self.gens[slot]) << 32)
    }

    fn slot_of(&self, token: u64) -> Option<usize> {
        let slot = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        (slot < self.gens.len() && self.gens[slot] == gen && self.conns[slot].is_some())
            .then_some(slot)
    }

    fn run(mut self) {
        let mut events = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let draining = self.shutdown.load(Ordering::SeqCst);
            if draining && self.listener.is_some() {
                // Stop accepting: deregister and close the listen socket
                // (pending backlog entries are reset by the kernel), and
                // pause reads everywhere — already-parsed requests still
                // get answered and flushed.
                if let Some(listener) = self.listener.take() {
                    let _ = self.poller.delete(listener.as_raw_fd());
                }
                let deadline = Duration::from_millis(self.drain_ms.load(Ordering::SeqCst));
                drain_deadline = Some(Instant::now() + deadline);
                for slot in 0..self.conns.len() {
                    if self.conns[slot].is_some() {
                        self.update_interest(slot);
                    }
                }
            }
            if let Some(deadline) = drain_deadline {
                // Close connections as they quiesce; leave when all are
                // gone or the deadline passes (stragglers dropped).
                for slot in 0..self.conns.len() {
                    let done = matches!(&self.conns[slot], Some(c) if c.quiesced());
                    if done {
                        self.close(slot);
                    }
                }
                let open = self.conns.iter().filter(|c| c.is_some()).count();
                if open == 0 || Instant::now() >= deadline {
                    for slot in 0..self.conns.len() {
                        if self.conns[slot].is_some() {
                            self.close(slot);
                        }
                    }
                    return; // dropping job_tx stops the workers
                }
            }

            // Publish the intent to sleep, then take the final looks: a
            // worker that saw `sleeping == false` (and skipped its wake
            // syscall) must have completed before these checks, so the
            // done drain — or, for fast-path completions, the dispatch
            // scan over now-idle connections with parsed requests —
            // observes its effects; anything later sees `true` and
            // wakes.
            // Give every runnable client/worker a turn before
            // blocking: on core-starved hosts this coalesces their
            // writes so the next wait returns one large batch instead
            // of many single-event wakes (a no-op when idle).
            std::thread::yield_now();
            self.sleeping.store(true, Ordering::SeqCst);
            let mut pending_total = 0u64;
            for slot in 0..self.conns.len() {
                let (dispatchable, reap) = match &self.conns[slot] {
                    Some(c) => {
                        pending_total += c.pending.len() as u64;
                        (
                            !c.pending.is_empty() && !c.busy(),
                            c.peer_closed || c.close_after_flush,
                        )
                    }
                    None => (false, false),
                };
                if dispatchable {
                    self.maybe_dispatch(slot);
                    // Draining `pending` may lift the read pause (a
                    // deep pipeline past MAX_PENDING_ITEMS is resumed
                    // here once fast-path completions shrink the
                    // queue); without the re-arm the connection would
                    // starve against a client that already sent
                    // everything.
                    self.update_interest(slot);
                }
                if reap {
                    // A gone peer whose last job completed on the
                    // worker fast path reaches quiescence without any
                    // further event; reap it here rather than waiting
                    // out the idle sweep.
                    self.maybe_close(slot);
                }
            }
            self.flush_staged();
            self.collect_done();
            // The depth gauge snapshots this iteration's scan (dispatch
            // may have drained some queues since, making it a slight
            // over-estimate — fine for a health gauge).
            self.server.metrics().pending_depth.set(pending_total);
            let wait_start = Instant::now();
            let waited = self.poller.wait(&mut events, Some(TICK));
            {
                let metrics = self.server.metrics();
                metrics
                    .epoll_wait_nanos
                    .add(u64::try_from(wait_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                metrics.epoll_wakes.inc();
            }
            self.sleeping.store(false, Ordering::SeqCst);
            if waited.is_err() {
                // An unrecoverable poller failure: nothing can make
                // progress, so stop serving rather than spin.
                return;
            }
            for ev in events.iter().copied() {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.waker.drain(),
                    token => {
                        if let Some(slot) = self.slot_of(token) {
                            if ev.writable {
                                self.write_ready(slot);
                            }
                            if ev.readable && self.conns[slot].is_some() {
                                self.read_ready(slot);
                            }
                        }
                    }
                }
            }
            self.flush_staged();
            self.collect_done();
            self.sweep_timeouts();
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    self.server.connection_opened();
                    let conn = EvConn {
                        shared: Arc::new(ConnShared {
                            stream,
                            busy: AtomicBool::new(false),
                            has_pending: AtomicBool::new(false),
                            last_done_ms: AtomicU64::new(self.epoch.elapsed().as_millis() as u64),
                        }),
                        asm: Assembler::new(self.cfg.mode),
                        out: Vec::new(),
                        outpos: 0,
                        pending: VecDeque::new(),
                        pending_bytes: 0,
                        close_after_flush: false,
                        peer_closed: false,
                        last_activity: Instant::now(),
                        registered: Interest::READABLE,
                        partial_since: None,
                        transport: None,
                    };
                    let slot = match self.free.pop() {
                        Some(slot) => {
                            self.conns[slot] = Some(conn);
                            slot
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.gens.push(0);
                            self.conns.len() - 1
                        }
                    };
                    let token = self.token(slot);
                    let fd = self.conns[slot]
                        .as_ref()
                        .expect("just placed")
                        .shared
                        .stream
                        .as_raw_fd();
                    if self.poller.add(fd, token, Interest::READABLE).is_err() {
                        self.close(slot);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return, // transient accept failure; retry on next event
            }
        }
    }

    fn read_ready(&mut self, slot: usize) {
        let mut dead = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if !conn.registered.readable {
                return; // readiness raced a pause; the re-arm will re-report
            }
            let mut budget = READ_BUDGET;
            loop {
                match (&conn.shared.stream).read(&mut self.scratch) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        conn.asm.push_eof();
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        conn.asm.push(&self.scratch[..n]);
                        budget = budget.saturating_sub(n);
                        if budget == 0 {
                            break;
                        }
                        // A short read means the socket buffer is
                        // (momentarily) empty: skip the guaranteed
                        // EAGAIN syscall. Level-triggered epoll
                        // re-reports anything that arrives meanwhile.
                        if n < self.scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Reset or similar: the connection is gone.
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                let items = conn.asm.take_items();
                let metrics = self.server.metrics();
                let now = metrics.now_nanos();
                if conn.transport.is_none() {
                    if let Some(first) = items.first() {
                        conn.transport = Some(match first {
                            WorkItem::JsonLine(_) => Transport::Json,
                            _ => Transport::Binary,
                        });
                    }
                }
                let transport = conn.transport.unwrap_or(Transport::Binary);
                // Parse-stage samples: the first completed item closes
                // out any partial the assembler was holding (its latency
                // is partial-start → now); items completed within this
                // same read cost ~0 wall time.
                for (idx, item) in items.iter().enumerate() {
                    conn.pending_bytes += item.payload_len();
                    let nanos = if idx == 0 {
                        conn.partial_since.map_or(0, |t| now.saturating_sub(t))
                    } else {
                        0
                    };
                    metrics.record_stage(transport, Stage::Parse, nanos);
                }
                conn.partial_since = if conn.asm.has_partial() {
                    // Keep the original stamp when no item completed:
                    // the partial is still the same in-flight request.
                    if items.is_empty() {
                        conn.partial_since.or(Some(now))
                    } else {
                        Some(now)
                    }
                } else {
                    None
                };
                conn.pending.extend(items.into_iter().map(|i| (i, now)));
                if !conn.pending.is_empty() {
                    // Published before the `busy` check in
                    // maybe_dispatch below: the Dekker ordering that
                    // guarantees either this thread sees `busy ==
                    // false` or the finishing worker sees the flag.
                    conn.shared.has_pending.store(true, Ordering::SeqCst);
                }
            }
        }
        if dead {
            self.close(slot);
            return;
        }
        self.maybe_dispatch(slot);
        self.update_interest(slot);
        self.maybe_close(slot);
    }

    fn write_ready(&mut self, slot: usize) {
        let mut dead = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            let flush_span = (conn.outstanding() > 0).then(Span::start);
            loop {
                if conn.outpos == conn.out.len() {
                    conn.out.clear();
                    conn.outpos = 0;
                    break;
                }
                match (&conn.shared.stream).write(&conn.out[conn.outpos..]) {
                    Ok(0) => break,
                    Ok(n) => {
                        conn.outpos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead && conn.outpos > (1 << 20) {
                conn.out.drain(..conn.outpos);
                conn.outpos = 0;
            }
            if let Some(span) = flush_span {
                let transport = conn.transport.unwrap_or(Transport::Binary);
                span.finish(self.server.metrics().stage(transport, Stage::Write));
            }
        }
        if dead {
            self.close(slot);
            return;
        }
        self.maybe_dispatch(slot);
        self.update_interest(slot);
        self.maybe_close(slot);
    }

    /// Stages the connection's parsed queue (up to [`MAX_JOB_ITEMS`])
    /// for dispatch, unless a worker already owns it or backpressure
    /// gates it. Staged units ship when the iteration's events have all
    /// been handled ([`EventLoop::flush_staged`]), so one readiness
    /// batch becomes a handful of channel sends, not one per socket.
    fn maybe_dispatch(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.busy()
            || conn.close_after_flush
            || conn.pending.is_empty()
            || conn.outstanding() > WRITE_BACKPRESSURE_BYTES
        {
            return;
        }
        let n = conn.pending.len().min(MAX_JOB_ITEMS);
        let items: Vec<(WorkItem, u64)> = conn.pending.drain(..n).collect();
        conn.pending_bytes = conn
            .pending_bytes
            .saturating_sub(items.iter().map(|(item, _)| item.payload_len()).sum());
        self.server
            .metrics()
            .dispatch_batch
            .record(items.len() as u64);
        // Relaxed is enough off the Dekker path: a worker reading a
        // stale `true` only issues a spurious wake, and `busy = true`
        // is read back by this thread alone (the job itself reaches the
        // worker through the channel, which synchronizes).
        conn.shared
            .has_pending
            .store(!conn.pending.is_empty(), Ordering::Relaxed);
        conn.shared.busy.store(true, Ordering::Relaxed);
        // The fast path: with nothing backlogged, the worker is the
        // connection's only writer until its done lands, so it may push
        // the response into the socket itself.
        let direct = conn.outstanding() == 0;
        self.staged.push(JobUnit {
            slot,
            gen: self.gens[slot],
            items,
            shared: Arc::clone(&conn.shared),
            direct,
        });
    }

    /// Ships the staged units, spread over the pool: enough jobs that
    /// every worker can pull one, each capped at [`MAX_UNITS_PER_JOB`].
    fn flush_staged(&mut self) {
        while !self.staged.is_empty() {
            let take = self.staged.len().min(MAX_UNITS_PER_JOB);
            let units: Vec<JobUnit> = self.staged.drain(..take).collect();
            // A send failure means every worker died (only possible
            // during teardown); drop the connections rather than wedge
            // them.
            if self.job_tx.send(Job { units }).is_err() {
                for slot in 0..self.conns.len() {
                    if matches!(&self.conns[slot], Some(c) if c.busy()) {
                        self.close(slot);
                    }
                }
                self.staged.clear();
                return;
            }
        }
    }

    fn collect_done(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            for unit in done.units {
                let slot = unit.slot;
                let current = slot < self.gens.len()
                    && self.gens[slot] == unit.gen
                    && self.conns[slot].is_some();
                if !current {
                    continue; // the connection closed while the job ran
                }
                if unit.io_failed {
                    // The worker's direct write hit a hard error; clear
                    // the in-flight flag and drop the connection.
                    let conn = self.conns[slot].as_mut().expect("open");
                    conn.shared.busy.store(false, Ordering::SeqCst);
                    self.close(slot);
                    continue;
                }
                {
                    let conn = self.conns[slot].as_mut().expect("open");
                    conn.shared.busy.store(false, Ordering::SeqCst);
                    conn.last_activity = Instant::now();
                    if conn.out.is_empty() {
                        conn.out = unit.bytes;
                        conn.outpos = 0;
                    } else {
                        conn.out.extend_from_slice(&unit.bytes);
                    }
                    if unit.close {
                        conn.close_after_flush = true;
                        conn.pending.clear();
                        conn.pending_bytes = 0;
                    }
                }
                self.write_ready(slot); // flush without another epoll round
                if self.conns[slot].is_some() {
                    self.maybe_dispatch(slot);
                    self.update_interest(slot);
                    self.maybe_close(slot);
                }
            }
        }
        self.flush_staged();
    }

    /// Closes connections with no byte movement in either direction for
    /// the idle timeout: quiet analysts are reclaimed silently (as on
    /// the pool front end) and stalled writers — a pipelining peer that
    /// stopped draining — are dropped instead of wedging resources.
    /// Connections with a job in flight are exempt; the job's completion
    /// refreshes their activity stamp.
    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let expired = match &self.conns[slot] {
                Some(conn) => {
                    // A fast-path completion crosses no channel, so the
                    // worker's stamp is the only record of the response
                    // it just delivered; idle means *both* the loop-side
                    // and worker-side clocks are stale.
                    let last_done = self.epoch
                        + Duration::from_millis(conn.shared.last_done_ms.load(Ordering::Relaxed));
                    let last = conn.last_activity.max(last_done);
                    !conn.busy() && now.duration_since(last) > self.cfg.idle_timeout
                }
                None => false,
            };
            if expired {
                self.server.metrics().sweep_evictions.inc();
                self.close(slot);
            }
        }
    }

    fn update_interest(&mut self, slot: usize) {
        let draining = self.shutdown.load(Ordering::SeqCst);
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let backpressured = conn.pending.len() >= MAX_PENDING_ITEMS
            || conn.pending_bytes >= MAX_PENDING_BYTES
            || conn.outstanding() > WRITE_BACKPRESSURE_BYTES;
        let read_paused = conn.close_after_flush
            || conn.peer_closed
            || conn.asm.poisoned()
            || draining
            || backpressured;
        let desired = Interest {
            readable: !read_paused,
            writable: conn.outstanding() > 0,
        };
        if conn.registered.readable && !desired.readable && backpressured {
            // Count only pauses *caused* by backpressure, not closes or
            // drains that happen to coincide.
            self.server.metrics().backpressure_pauses.inc();
        }
        if desired != conn.registered {
            conn.registered = desired;
            let fd = conn.shared.stream.as_raw_fd();
            let token = (slot as u64) | (u64::from(self.gens[slot]) << 32);
            if self.poller.modify(fd, token, desired).is_err() {
                self.close(slot);
            }
        }
    }

    /// Closes the connection if its stream is finished: everything
    /// flushed after a fatal item, or the peer is gone and no work
    /// remains.
    fn maybe_close(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_ref() else {
            return;
        };
        let flushed = conn.outstanding() == 0;
        let fatal = conn.close_after_flush && !conn.busy() && flushed;
        let finished = conn.peer_closed && conn.quiesced();
        if fatal || finished {
            self.close(slot);
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.delete(conn.shared.stream.as_raw_fd());
            self.server.connection_closed();
            self.gens[slot] = self.gens[slot].wrapping_add(1);
            self.free.push(slot);
        }
    }
}
