//! The event-driven TCP front end: `L` epoll loop **shards**, each
//! owning its own poller, connection slab, and waker; `N` pool workers
//! serve `M ≫ N` connections across all shards.
//!
//! The thread-pool front end ([`crate::spawn_with`] with
//! [`FrontEnd::Pool`](crate::FrontEnd::Pool)) dedicates a worker to each
//! open connection, so an idle analyst pins a thread and concurrency is
//! capped at the pool size. Here, open connections are plain state —
//! byte buffers plus a worker-side [`conn::Assembler`](crate::conn) —
//! registered with one shard's [`polling::Poller`]. Division of labor:
//!
//! * **loop shards** — accept, nonblocking reads (raw bytes only — no
//!   protocol framing), slow-path writes, idle sweeps over their own
//!   slab. A single loop thread was the ceiling at high fan-in: every
//!   read *and* every newline scan / length-prefix parse serialized on
//!   it. Sharding splits the socket work `L` ways, and framing moved
//!   off the loops entirely;
//! * **workers** — protocol framing (the connection's `Assembler` lives
//!   in [`ConnShared`] behind a mutex only the single in-flight worker
//!   takes), request decode, [`Server::handle`], response encode, and
//!   the **direct-write fast path**: when the connection had no
//!   backlogged outbound bytes at dispatch, the worker writes the
//!   encoded response straight to the nonblocking socket itself, so the
//!   reply path is worker → client with no loop hop and no `eventfd`
//!   syscall. Whatever does not fit (a stalled peer) is handed back
//!   over the owning shard's done channel and that shard finishes it
//!   under write readiness.
//!
//! ## Shard ownership and accept
//!
//! Every connection belongs to exactly one shard for its whole life:
//! the shard that registered it owns its slab entry, readiness events,
//! timeouts, and slow-path writes. With `SO_REUSEPORT`
//! ([`polling::net::bind_reuseport`]) each shard accepts from its *own*
//! listener bound to the same address and the kernel spreads incoming
//! connections across them. Where `SO_REUSEPORT` is unavailable the
//! shards fall back to **striped accept**: shard 0 owns the single
//! listener and hands accepted sockets round-robin to its peers over
//! per-shard channels.
//!
//! Responses stay in request order because each connection has at most
//! one job in flight: its unread bytes queue in the owning shard while
//! a worker owns it, and the next batch dispatches when the previous
//! one lands. Framing on the worker is safe for the same reason — the
//! single in-flight worker is the only thread that touches the
//! connection's parser, and raw bytes reach it in arrival order.
//!
//! ## The per-shard completion handshake
//!
//! Each shard publishes its intent to sleep (`sleeping`), then re-scans
//! *its own* slab for dispatchable work and drains *its own* done
//! channel before blocking. A worker finishing a fast-path completion
//! clears the connection's `busy` flag and then checks `has_pending`;
//! the shard's read path stores `has_pending` before its dispatch scan
//! checks `busy`. These SeqCst store→load pairs are Dekker-style: at
//! least one side observes the other, so a request can never be
//! stranded with neither a dispatch nor a wake. The proof is purely
//! shard-local — every flag involved lives on a connection owned by
//! exactly one shard, and the worker's wake targets that shard's waker.
//!
//! ## Backpressure and timeouts
//!
//! A pipelining client that stops draining responses fills the
//! connection's outbound buffer; past [`WRITE_BACKPRESSURE_BYTES`] the
//! owning shard stops reading (and stops dispatching) for that
//! connection, and once no byte moves in either direction for the
//! configured idle timeout the connection is dropped — no worker ever
//! blocks on a slow socket. Each shard sweeps only its own slab, so a
//! stalled connection affects nothing outside its shard. Purely idle
//! connections are closed after the same timeout, matching the pool
//! front end.
//!
//! ## Graceful shutdown
//!
//! Setting the shutdown flag (and waking every shard) stops all
//! acceptors, pauses all reads, finishes every queued-or-running
//! request, flushes the outbound buffers, then exits. The drain
//! deadline is **global**: the first shard to observe shutdown anchors
//! `now + drain_ms` in shared state and every shard drains toward that
//! same instant, so a shard that wakes late cannot extend the barrier.

use crate::conn::{Assembler, WorkItem};
use crate::metrics::{ShardMetrics, Stage, Transport, KIND_UNDECODABLE};
use crate::protocol::{Request, Response};
use crate::server::{ResponseEncoding, Server, WireMode};
use crate::wire;
use dpod_obs::Span;
use polling::{Interest, Poller, Waker};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Outbound bytes buffered for one connection above which its shard
/// stops reading (and dispatching) more of its requests until the
/// buffer drains — the write-side backpressure threshold.
pub const WRITE_BACKPRESSURE_BYTES: usize = 4 << 20;

/// Read-but-undispatched request bytes one connection may queue before
/// its reads pause (bounds memory against a client that pipelines
/// faster than workers answer).
const MAX_PENDING_BYTES: usize = 16 << 20;

/// Most raw bytes handed to a worker in one job unit, so one
/// connection's deep pipeline cannot monopolize a worker unboundedly.
/// A unit boundary may fall mid-frame; the worker-side assembler keeps
/// the partial and the remainder arrives in the next unit.
const MAX_JOB_BYTES: usize = 256 << 10;

/// Most connection units packed into one dispatch batch: bounds the
/// latency a unit can sit behind its batch-mates while still amortizing
/// the channel round across a large readiness batch.
const MAX_UNITS_PER_JOB: usize = 32;

/// Most bytes read from one connection per readiness event (fairness
/// across connections; level-triggered epoll re-reports the remainder).
const READ_BUDGET: usize = 256 << 10;

/// Loop tick: the upper bound on epoll_wait blocking, so timeout sweeps
/// and the shutdown flag are observed promptly.
const TICK: Duration = Duration::from_millis(100);

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// `ConnShared::transport` codes: unknown until the first parsed item.
const TRANSPORT_UNKNOWN: u8 = 0;
const TRANSPORT_JSON: u8 = 1;
const TRANSPORT_BINARY: u8 = 2;

/// Tunables handed down from [`crate::SpawnOptions`].
#[derive(Debug, Clone)]
pub(crate) struct EventConfig {
    pub workers: usize,
    /// Loop shards (each its own epoll fd + slab); clamped to ≥ 1.
    pub loops: usize,
    pub mode: WireMode,
    pub idle_timeout: Duration,
}

/// One shard's completion plumbing, carried by every job dispatched
/// from that shard so workers finish units back to the owning loop.
///
/// The `eventfd` wake is a syscall per call, so workers elide it twice
/// over: while the owning shard is awake (`sleeping == false` — the
/// shard publishes its intent to sleep and *then* drains its done
/// channel and re-scans its slab for dispatchable work, so nothing can
/// fall between the final checks and the blocking `epoll_wait`), and
/// for fully-direct-written completions nothing waits on
/// (`urgent == false`): those only clear the connection's `busy` flag,
/// and the shard's pre-sleep scan picks up any bytes that were queued
/// behind the job. The worker-side `has_pending` check and the
/// shard-side pre-sleep `busy` check form a Dekker-style pair of SeqCst
/// store→load sequences: at least one side always observes the other,
/// so a request can never be stranded with neither a dispatch nor a
/// wake (see the module docs — the proof is shard-local).
#[derive(Debug)]
struct ShardSignal {
    done_tx: mpsc::Sender<Done>,
    waker: Arc<Waker>,
    sleeping: Arc<AtomicBool>,
}

impl ShardSignal {
    fn notify(&self, urgent: bool) {
        if urgent && self.sleeping.load(Ordering::SeqCst) {
            self.waker.wake();
        }
    }
}

/// A peer shard's intake for striped accept: the owning shard sends the
/// freshly accepted socket and wakes the peer to register it.
#[derive(Debug)]
struct ShardLink {
    incoming: mpsc::Sender<TcpStream>,
    waker: Arc<Waker>,
}

/// The worker's view of one connection's framing state: the protocol
/// assembler plus the partial-request stamp that feeds the `parse`
/// stage histogram. Behind [`ConnShared::parser`], locked only by the
/// connection's single in-flight worker — never by the loop — so the
/// mutex is uncontended by construction.
#[derive(Debug)]
struct Parser {
    asm: Assembler,
    /// Metrics-clock stamp of when the assembler first went partial
    /// (bytes buffered, no complete item) — the `parse` stage measures
    /// from here to the next completed item.
    partial_since: Option<u64>,
}

/// The slice of one connection visible to its in-flight worker: the
/// socket, the framing state, and the flags of the completion
/// handshake, in one `Arc` so dispatch clones a single refcount.
#[derive(Debug)]
struct ConnShared {
    stream: TcpStream,
    /// A worker owns an in-flight job for this connection. Set by the
    /// owning shard at dispatch; cleared by the worker on a fully-
    /// direct-written completion, by the shard in `collect_done`
    /// otherwise.
    busy: AtomicBool,
    /// Mirror of "the owning shard has unread-request bytes queued
    /// behind this job" (maintained by the shard). Checked by the
    /// worker *after* clearing `busy`: seeing it set makes the
    /// completion urgent, closing the race against the shard's
    /// pre-sleep dispatch scan.
    has_pending: AtomicBool,
    /// Milliseconds since the loop epoch at the connection's last job
    /// completion, stored by the worker. Fast-path completions send
    /// nothing over the done channel, so without this stamp a response
    /// delivered after a slow query would not count as activity and the
    /// idle sweep could close a connection it just answered.
    last_done_ms: AtomicU64,
    /// Protocol framing state; see [`Parser`].
    parser: Mutex<Parser>,
    /// The transport the connection settled on ([`TRANSPORT_UNKNOWN`]
    /// until the worker parses the first item), for loop-side `write`
    /// stage labels.
    transport: AtomicU8,
}

/// One connection's work, owned by a worker until it completes: either
/// entirely on the worker (response fully written directly → the worker
/// clears `busy` itself and nothing crosses the done channel), or by
/// handing leftovers back as a [`DoneUnit`].
struct JobUnit {
    slot: usize,
    gen: u32,
    /// Raw request bytes in arrival order; the worker feeds them to the
    /// connection's assembler. May be empty when only `eof` is being
    /// delivered.
    raw: Vec<u8>,
    /// The peer half-closed after these bytes: the worker pushes EOF
    /// into the assembler so a trailing unterminated request surfaces.
    eof: bool,
    /// Metrics-clock stamp at dispatch; the worker accounts the queue
    /// wait per parsed item at dequeue.
    queued_at: u64,
    shared: Arc<ConnShared>,
    /// The shard's outbound buffer was empty at dispatch: the worker
    /// may write the response bytes straight to the socket (it is the
    /// connection's only writer until it completes).
    direct: bool,
}

/// A dispatch batch: ready work from **several connections** of one
/// shard travels in one channel send (responses across connections have
/// no ordering contract, only responses *within* one). Batching is what
/// amortizes the channel round and the worker wake-up across the whole
/// epoll readiness batch instead of paying them per connection.
struct Job {
    units: Vec<JobUnit>,
    /// Completion plumbing of the shard every unit here belongs to.
    signal: Arc<ShardSignal>,
}

/// One connection's completion: whatever response bytes the worker did
/// not manage to write directly (all of them when the fast path was not
/// available).
struct DoneUnit {
    slot: usize,
    gen: u32,
    bytes: Vec<u8>,
    close: bool,
    /// The direct write hit a hard IO error: drop the connection.
    io_failed: bool,
}

/// A finished batch, mirroring [`Job`].
struct Done {
    units: Vec<DoneUnit>,
}

/// Per-connection state owned by one shard. The [`ConnShared`] half is
/// visible to at most one in-flight job at a time (`Arc` keeps the
/// descriptor alive — and un-recycled — if the shard closes the
/// connection while that job still runs).
struct EvConn {
    shared: Arc<ConnShared>,
    /// Raw bytes read off the socket, not yet dispatched to a worker.
    inbuf: Vec<u8>,
    /// The peer half-closed and the EOF has not yet been shipped to the
    /// worker-side assembler.
    eof_pending: bool,
    out: Vec<u8>,
    outpos: usize,
    close_after_flush: bool,
    peer_closed: bool,
    last_activity: Instant,
    registered: Interest,
}

impl EvConn {
    fn outstanding(&self) -> usize {
        self.out.len() - self.outpos
    }

    fn busy(&self) -> bool {
        self.shared.busy.load(Ordering::SeqCst)
    }

    /// Undelivered ingest: raw bytes or an unshipped EOF.
    fn has_ingest(&self) -> bool {
        !self.inbuf.is_empty() || self.eof_pending
    }

    /// Anything left that graceful shutdown should wait for?
    fn quiesced(&self) -> bool {
        !self.busy() && !self.has_ingest() && self.outstanding() == 0
    }

    /// The settled transport for loop-side write-stage labels (binary
    /// until the first item says otherwise, matching the preamble
    /// sniffer's default).
    fn transport(&self) -> Transport {
        match self.shared.transport.load(Ordering::Relaxed) {
            TRANSPORT_JSON => Transport::Json,
            _ => Transport::Binary,
        }
    }
}

/// The worker half of the direct-write fast path: pushes `bytes` into
/// the nonblocking socket until done or `WouldBlock`, draining written
/// prefixes in place (on return, `bytes` holds only the unwritten
/// tail).
///
/// # Errors
/// Hard IO failures (reset, broken pipe); the caller drops the
/// connection through the owning shard.
fn write_direct(stream: &TcpStream, bytes: &mut Vec<u8>) -> std::io::Result<()> {
    let mut pos = 0usize;
    let result = loop {
        if pos == bytes.len() {
            break Ok(());
        }
        match (&*stream).write(&bytes[pos..]) {
            Ok(0) => break Ok(()), // treat as a stall; the loop retries
            Ok(n) => pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => break Err(e),
        }
    };
    bytes.drain(..pos);
    result
}

/// The transport a parsed item travels on (a connection never mixes
/// framings mid-stream).
fn transport_code(item: &WorkItem) -> u8 {
    match item {
        WorkItem::JsonLine(_) => TRANSPORT_JSON,
        WorkItem::Desync { as_binary, .. } => {
            if *as_binary {
                TRANSPORT_BINARY
            } else {
                TRANSPORT_JSON
            }
        }
        _ => TRANSPORT_BINARY,
    }
}

/// Worker-side framing for one unit: feeds the raw bytes (and EOF) into
/// the connection's assembler, settles the transport, and accounts the
/// `parse` and `queue` stages. Returns the completed items, the settled
/// transport, and whether the peer negotiated packed response frames
/// (read from the assembler under the same lock).
///
/// The parser mutex is taken here and only here — the single in-flight
/// worker is the only thread that ever locks it, so this is a plain
/// uncontended acquire, not a synchronization point.
fn parse_unit(server: &Server, unit: &JobUnit) -> (Transport, bool, Vec<WorkItem>) {
    let metrics = server.metrics();
    let dequeued = metrics.now_nanos();
    let mut parser = unit.shared.parser.lock().unwrap_or_else(|e| e.into_inner());
    if !unit.raw.is_empty() {
        parser.asm.push(&unit.raw);
    }
    if unit.eof {
        parser.asm.push_eof();
    }
    let items = parser.asm.take_items();
    let packed = parser.asm.packed();
    if unit.shared.transport.load(Ordering::Relaxed) == TRANSPORT_UNKNOWN {
        if let Some(first) = items.first() {
            unit.shared
                .transport
                .store(transport_code(first), Ordering::Relaxed);
        }
    }
    let transport = match unit.shared.transport.load(Ordering::Relaxed) {
        TRANSPORT_JSON => Transport::Json,
        _ => Transport::Binary,
    };
    // Parse-stage samples: the first completed item closes out any
    // partial the assembler was holding (its latency is partial-start →
    // now); items completed within this same unit cost ~0 wall time.
    for idx in 0..items.len() {
        let nanos = if idx == 0 {
            parser
                .partial_since
                .map_or(0, |t| dequeued.saturating_sub(t))
        } else {
            0
        };
        metrics.record_stage(transport, Stage::Parse, nanos);
    }
    parser.partial_since = if parser.asm.has_partial() {
        // Keep the original stamp when no item completed: the partial
        // is still the same in-flight request.
        if items.is_empty() {
            parser.partial_since.or(Some(dequeued))
        } else {
            Some(dequeued)
        }
    } else {
        None
    };
    drop(parser);
    // Queue wait: dispatch stamp → this dequeue, per item.
    for _ in &items {
        metrics.record_stage(
            transport,
            Stage::Queue,
            dequeued.saturating_sub(unit.queued_at),
        );
    }
    (transport, packed, items)
}

/// Turns one connection's ordered work items into response bytes.
/// Returns `(bytes, close_after)`; shared by every worker. Execution
/// and serialization are fused in [`Server::handle_encoded`] (that
/// fusion is what lets a warm encoded-memo hit skip both), so the
/// execute lap covers them and the encode lap is the memcpy into the
/// connection's write buffer. `packed` selects the packed `DPRB`
/// response opcodes for peers that negotiated them.
fn run_job(server: &Server, items: Vec<WorkItem>, packed: bool) -> (Vec<u8>, bool) {
    let metrics = server.metrics();
    let frame_enc = if packed {
        ResponseEncoding::BinaryPacked
    } else {
        ResponseEncoding::Binary
    };
    let mut out = Vec::new();
    for item in items {
        match item {
            WorkItem::JsonLine(bytes) => {
                let mut span = Span::start();
                // Invalid UTF-8 closes the connection, as the blocking
                // front end's `read_line` error does.
                let Ok(line) = std::str::from_utf8(&bytes) else {
                    return (out, true);
                };
                if line.trim().is_empty() {
                    continue;
                }
                let encoded = match serde_json::from_str::<Request>(line.trim_end()) {
                    Ok(request) => {
                        metrics.count_request(Transport::Json, &request);
                        server.handle_encoded(&request, ResponseEncoding::Json)
                    }
                    Err(e) => {
                        metrics.count_request_index(Transport::Json, KIND_UNDECODABLE);
                        Arc::new(ResponseEncoding::Json.encode(&Response::Error {
                            message: format!("bad request: {e}"),
                        }))
                    }
                };
                span.lap(metrics.stage(Transport::Json, Stage::Execute));
                out.extend_from_slice(&encoded);
                span.finish(metrics.stage(Transport::Json, Stage::Encode));
            }
            WorkItem::Frame(body) => {
                let mut span = Span::start();
                let encoded = match wire::decode_request(&body) {
                    Ok(request) => {
                        metrics.count_request(Transport::Binary, &request);
                        server.handle_encoded(&request, frame_enc)
                    }
                    Err(e) => {
                        metrics.count_request_index(Transport::Binary, KIND_UNDECODABLE);
                        Arc::new(frame_enc.encode(&Response::Error {
                            message: format!("bad request: {e}"),
                        }))
                    }
                };
                span.lap(metrics.stage(Transport::Binary, Stage::Execute));
                out.extend_from_slice(&encoded);
                span.finish(metrics.stage(Transport::Binary, Stage::Encode));
            }
            WorkItem::Desync { as_binary, message } => {
                let transport = if as_binary {
                    Transport::Binary
                } else {
                    Transport::Json
                };
                metrics.count_request_index(transport, KIND_UNDECODABLE);
                let farewell = Response::Error { message };
                if as_binary {
                    let _ = wire::write_frame(&mut out, &wire::encode_response(&farewell));
                } else {
                    if let Ok(body) = serde_json::to_string(&farewell) {
                        out.extend_from_slice(body.as_bytes());
                    }
                    out.push(b'\n');
                }
                return (out, true);
            }
            WorkItem::SilentClose => return (out, true),
        }
    }
    (out, false)
}

/// Everything one shard needs, assembled before its thread starts so
/// all fallible setup happens up front.
struct ShardParts {
    poller: Poller,
    waker: Arc<Waker>,
    listener: Option<TcpListener>,
    sleeping: Arc<AtomicBool>,
    done_rx: mpsc::Receiver<Done>,
    incoming_rx: mpsc::Receiver<TcpStream>,
    signal: Arc<ShardSignal>,
}

/// What [`spawn`] hands back to the [`crate::ServerHandle`]: one join
/// handle and one waker per loop shard, index-aligned.
pub(crate) type SpawnedShards = (Vec<std::thread::JoinHandle<()>>, Vec<Arc<Waker>>);

/// Spawns the event front end: `cfg.loops` loop shards over the given
/// listeners, `cfg.workers` pool workers shared by all shards, and the
/// waker/shutdown plumbing the [`crate::ServerHandle`] drives.
///
/// `listeners` is either one listener **per shard** (all bound to the
/// same address via `SO_REUSEPORT` — the kernel spreads accepts) or a
/// **single** listener (shard 0 accepts and hands sockets round-robin
/// to its peers: the striped-accept fallback for platforms without
/// `SO_REUSEPORT`).
///
/// # Errors
/// Creating a poller or waker (notably `Unsupported` off Linux, which
/// [`crate::spawn_with`] turns into a thread-pool fallback), or
/// registering a listener.
pub(crate) fn spawn(
    server: Arc<Server>,
    listeners: Vec<TcpListener>,
    cfg: EventConfig,
    shutdown: Arc<AtomicBool>,
    drain_ms: Arc<AtomicU64>,
) -> std::io::Result<SpawnedShards> {
    let loops = cfg.loops.max(1);
    debug_assert!(
        listeners.len() == loops || listeners.len() == 1,
        "one listener per shard (SO_REUSEPORT) or a single striped one"
    );
    let striped = listeners.len() < loops;
    // Shared clock origin for the workers' completion stamps.
    let epoch = Instant::now();

    // All fallible setup first: a `?` here drops every half-built part
    // before any thread exists.
    let mut listeners = listeners.into_iter();
    let mut shards = Vec::with_capacity(loops);
    let mut links = Vec::with_capacity(loops);
    for _ in 0..loops {
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new(&poller, TOKEN_WAKER)?);
        let listener = listeners.next();
        if let Some(l) = &listener {
            l.set_nonblocking(true)?;
            poller.add(l.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        }
        let sleeping = Arc::new(AtomicBool::new(false));
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let (incoming_tx, incoming_rx) = mpsc::channel::<TcpStream>();
        let signal = Arc::new(ShardSignal {
            done_tx,
            waker: Arc::clone(&waker),
            sleeping: Arc::clone(&sleeping),
        });
        links.push(ShardLink {
            incoming: incoming_tx,
            waker: Arc::clone(&waker),
        });
        shards.push(ShardParts {
            poller,
            waker,
            listener,
            sleeping,
            done_rx,
            incoming_rx,
            signal,
        });
    }
    let links = Arc::new(links);

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    for _ in 0..cfg.workers.max(1) {
        let job_rx = Arc::clone(&job_rx);
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            // Batch scheduling class: a waking worker no longer preempts
            // running clients mid-burst, so readiness accumulates and
            // both the shards' and the workers' batches grow (a real
            // effect only when cores are scarce; harmless otherwise).
            let _ = polling::sched::set_current_thread_batch();
            loop {
                let job = {
                    let guard = job_rx.lock().unwrap_or_else(|e| e.into_inner());
                    guard.recv()
                };
                match job {
                    Ok(job) => {
                        let mut units = Vec::new();
                        let mut urgent = false;
                        for unit in job.units {
                            let (transport, packed, items) = parse_unit(&server, &unit);
                            let (mut bytes, close) = run_job(&server, items, packed);
                            unit.shared
                                .last_done_ms
                                .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
                            let mut io_failed = false;
                            if unit.direct && !bytes.is_empty() {
                                let span = Span::start();
                                if write_direct(&unit.shared.stream, &mut bytes).is_err() {
                                    io_failed = true;
                                }
                                span.finish(server.metrics().stage(transport, Stage::Write));
                            }
                            if bytes.is_empty() && !close && !io_failed {
                                // The hot path: response fully on the wire.
                                // Clearing `busy` here (after the write, so
                                // the next job's bytes cannot overtake)
                                // completes the unit with nothing sent back
                                // to the shard at all — unless request
                                // bytes are already queued behind this job,
                                // in which case only a wake lets the shard
                                // dispatch them (Dekker pair with the
                                // pre-sleep scan; see `ShardSignal`).
                                unit.shared.busy.store(false, Ordering::SeqCst);
                                urgent |= unit.shared.has_pending.load(Ordering::SeqCst);
                                continue;
                            }
                            units.push(DoneUnit {
                                slot: unit.slot,
                                gen: unit.gen,
                                bytes,
                                close,
                                io_failed,
                            });
                        }
                        // Leftovers, closes, and failures need the shard
                        // promptly; fast-path completions at most need a
                        // wake when requests are queued behind them.
                        urgent |= !units.is_empty();
                        if !units.is_empty() && job.signal.done_tx.send(Done { units }).is_err() {
                            // That shard's loop is gone (poller failure or
                            // teardown); keep serving the other shards.
                            continue;
                        }
                        job.signal.notify(urgent);
                    }
                    Err(_) => return, // job channel closed: server stopped
                }
            }
        });
    }

    // The drain deadline is shared: whichever shard observes shutdown
    // first anchors it, and all shards converge on the same instant.
    let drain_anchor = Arc::new(Mutex::new(None::<Instant>));
    let mut joins = Vec::with_capacity(loops);
    let mut wakers = Vec::with_capacity(loops);
    for (shard, parts) in shards.into_iter().enumerate() {
        wakers.push(Arc::clone(&parts.waker));
        let state = EventLoop {
            server: Arc::clone(&server),
            poller: parts.poller,
            listener: parts.listener,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            shard,
            loops,
            striped,
            next_stripe: (shard + 1) % loops,
            peers: Arc::clone(&links),
            incoming_rx: parts.incoming_rx,
            job_tx: job_tx.clone(),
            done_rx: parts.done_rx,
            waker: parts.waker,
            sleeping: parts.sleeping,
            signal: parts.signal,
            metrics: server.metrics().shard(shard),
            epoch,
            cfg: cfg.clone(),
            shutdown: Arc::clone(&shutdown),
            drain_ms: Arc::clone(&drain_ms),
            drain_anchor: Arc::clone(&drain_anchor),
            scratch: vec![0u8; 64 << 10],
            staged: Vec::new(),
        };
        joins.push(std::thread::spawn(move || {
            // Same batch class as the workers: on core-starved hosts a
            // shard then wakes with fuller readiness batches instead of
            // preempting clients after every single request.
            let _ = polling::sched::set_current_thread_batch();
            state.run();
        }));
    }
    // Workers exit when the last shard drops its `job_tx` clone.
    drop(job_tx);
    Ok((joins, wakers))
}

struct EventLoop {
    server: Arc<Server>,
    poller: Poller,
    listener: Option<TcpListener>,
    conns: Vec<Option<EvConn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    /// This shard's index (metrics label; striping skips self-sends).
    shard: usize,
    /// Total shard count, for the striped-accept round-robin.
    loops: usize,
    /// Single-listener mode: the listener-owning shard deals accepted
    /// sockets to its peers instead of the kernel spreading them.
    striped: bool,
    /// Next shard in the striped round-robin.
    next_stripe: usize,
    /// Every shard's intake (index-aligned), for striped handoff.
    peers: Arc<Vec<ShardLink>>,
    /// Sockets handed to this shard by the striping accept shard.
    incoming_rx: mpsc::Receiver<TcpStream>,
    job_tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<Done>,
    waker: Arc<Waker>,
    sleeping: Arc<AtomicBool>,
    /// This shard's completion plumbing, attached to every job it
    /// dispatches.
    signal: Arc<ShardSignal>,
    /// This shard's labelled health series.
    metrics: ShardMetrics,
    epoch: Instant,
    cfg: EventConfig,
    shutdown: Arc<AtomicBool>,
    drain_ms: Arc<AtomicU64>,
    /// Globally shared drain deadline (see the module docs).
    drain_anchor: Arc<Mutex<Option<Instant>>>,
    scratch: Vec<u8>,
    /// Units staged by [`EventLoop::maybe_dispatch`] within the current
    /// iteration, shipped in batches by [`EventLoop::flush_staged`].
    staged: Vec<JobUnit>,
}

impl EventLoop {
    fn token(&self, slot: usize) -> u64 {
        (slot as u64) | (u64::from(self.gens[slot]) << 32)
    }

    fn slot_of(&self, token: u64) -> Option<usize> {
        let slot = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        (slot < self.gens.len() && self.gens[slot] == gen && self.conns[slot].is_some())
            .then_some(slot)
    }

    fn run(mut self) {
        let mut events = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let draining = self.shutdown.load(Ordering::SeqCst);
            if draining && drain_deadline.is_none() {
                // Stop accepting: deregister and close the listen socket
                // (pending backlog entries are reset by the kernel), and
                // pause reads everywhere — already-read requests still
                // get answered and flushed. Keyed on the deadline, not
                // the listener: striped non-zero shards never had one.
                if let Some(listener) = self.listener.take() {
                    let _ = self.poller.delete(listener.as_raw_fd());
                }
                let deadline = {
                    let mut anchor = self.drain_anchor.lock().unwrap_or_else(|e| e.into_inner());
                    *anchor.get_or_insert_with(|| {
                        Instant::now() + Duration::from_millis(self.drain_ms.load(Ordering::SeqCst))
                    })
                };
                drain_deadline = Some(deadline);
                for slot in 0..self.conns.len() {
                    if self.conns[slot].is_some() {
                        self.update_interest(slot);
                    }
                }
            }
            if let Some(deadline) = drain_deadline {
                // Close connections as they quiesce; leave when all are
                // gone or the deadline passes (stragglers dropped).
                for slot in 0..self.conns.len() {
                    let done = matches!(&self.conns[slot], Some(c) if c.quiesced());
                    if done {
                        self.close(slot);
                    }
                }
                let open = self.conns.iter().filter(|c| c.is_some()).count();
                if open == 0 || Instant::now() >= deadline {
                    for slot in 0..self.conns.len() {
                        if self.conns[slot].is_some() {
                            self.close(slot);
                        }
                    }
                    return; // dropping this shard's job_tx clone (last one out stops the workers)
                }
            }

            // Publish the intent to sleep, then take the final looks: a
            // worker that saw `sleeping == false` (and skipped its wake
            // syscall) must have completed before these checks, so the
            // done drain — or, for fast-path completions, the dispatch
            // scan over now-idle connections with queued bytes —
            // observes its effects; anything later sees `true` and
            // wakes.
            // Give every runnable client/worker a turn before
            // blocking: on core-starved hosts this coalesces their
            // writes so the next wait returns one large batch instead
            // of many single-event wakes (a no-op when idle).
            std::thread::yield_now();
            self.sleeping.store(true, Ordering::SeqCst);
            self.collect_incoming();
            let mut pending_total = 0u64;
            for slot in 0..self.conns.len() {
                let (dispatchable, reap) = match &self.conns[slot] {
                    Some(c) => {
                        pending_total += c.inbuf.len() as u64;
                        (
                            c.has_ingest() && !c.busy(),
                            c.peer_closed || c.close_after_flush,
                        )
                    }
                    None => (false, false),
                };
                if dispatchable {
                    self.maybe_dispatch(slot);
                    // Draining `inbuf` may lift the read pause (a deep
                    // pipeline past MAX_PENDING_BYTES is resumed here
                    // once fast-path completions shrink the queue);
                    // without the re-arm the connection would starve
                    // against a client that already sent everything.
                    self.update_interest(slot);
                }
                if reap {
                    // A gone peer whose last job completed on the
                    // worker fast path reaches quiescence without any
                    // further event; reap it here rather than waiting
                    // out the idle sweep.
                    self.maybe_close(slot);
                }
            }
            self.flush_staged();
            self.collect_done();
            // The depth gauge snapshots this iteration's scan (dispatch
            // may have drained some queues since, making it a slight
            // over-estimate — fine for a health gauge).
            self.metrics.pending_bytes.set(pending_total);
            let wait_start = Instant::now();
            let waited = self.poller.wait(&mut events, Some(TICK));
            self.metrics
                .epoll_wait_nanos
                .add(u64::try_from(wait_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            self.metrics.epoll_wakes.inc();
            self.sleeping.store(false, Ordering::SeqCst);
            if waited.is_err() {
                // An unrecoverable poller failure: nothing can make
                // progress on this shard, so stop it rather than spin.
                return;
            }
            for ev in events.iter().copied() {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.waker.drain(),
                    token => {
                        if let Some(slot) = self.slot_of(token) {
                            if ev.writable {
                                self.write_ready(slot);
                            }
                            if ev.readable && self.conns[slot].is_some() {
                                self.read_ready(slot);
                            }
                        }
                    }
                }
            }
            self.collect_incoming();
            self.flush_staged();
            self.collect_done();
            self.sweep_timeouts();
        }
    }

    /// Registers sockets striped over from the accepting shard. During
    /// drain, late handoffs are dropped (reset) — same fate as unserved
    /// backlog entries on the closed listener.
    fn collect_incoming(&mut self) {
        while let Ok(stream) = self.incoming_rx.try_recv() {
            if self.shutdown.load(Ordering::SeqCst) {
                continue;
            }
            self.register(stream);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.striped && self.loops > 1 {
                        let target = self.next_stripe;
                        self.next_stripe = (self.next_stripe + 1) % self.loops;
                        if target != self.shard {
                            match self.peers[target].incoming.send(stream) {
                                Ok(()) => {
                                    // Accepts are rare next to reads;
                                    // wake unconditionally rather than
                                    // extending the Dekker protocol to
                                    // the handoff.
                                    self.peers[target].waker.wake();
                                    continue;
                                }
                                // Peer shard is gone: serve it here.
                                Err(e) => self.register(e.0),
                            }
                            continue;
                        }
                    }
                    self.register(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return, // transient accept failure; retry on next event
            }
        }
    }

    /// Takes ownership of a freshly accepted socket: slab entry, poller
    /// registration, connection gauges.
    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        stream.set_nodelay(true).ok();
        self.server.connection_opened();
        let conn = EvConn {
            shared: Arc::new(ConnShared {
                stream,
                busy: AtomicBool::new(false),
                has_pending: AtomicBool::new(false),
                last_done_ms: AtomicU64::new(self.epoch.elapsed().as_millis() as u64),
                parser: Mutex::new(Parser {
                    asm: Assembler::new(self.cfg.mode),
                    partial_since: None,
                }),
                transport: AtomicU8::new(TRANSPORT_UNKNOWN),
            }),
            inbuf: Vec::new(),
            eof_pending: false,
            out: Vec::new(),
            outpos: 0,
            close_after_flush: false,
            peer_closed: false,
            last_activity: Instant::now(),
            registered: Interest::READABLE,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        let token = self.token(slot);
        let fd = self.conns[slot]
            .as_ref()
            .expect("just placed")
            .shared
            .stream
            .as_raw_fd();
        if self.poller.add(fd, token, Interest::READABLE).is_err() {
            self.close(slot);
        }
    }

    fn read_ready(&mut self, slot: usize) {
        let mut dead = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if !conn.registered.readable {
                return; // readiness raced a pause; the re-arm will re-report
            }
            let mut budget = READ_BUDGET;
            loop {
                match (&conn.shared.stream).read(&mut self.scratch) {
                    Ok(0) => {
                        if !conn.peer_closed {
                            conn.peer_closed = true;
                            conn.eof_pending = true;
                        }
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        conn.inbuf.extend_from_slice(&self.scratch[..n]);
                        budget = budget.saturating_sub(n);
                        if budget == 0 {
                            break;
                        }
                        // A short read means the socket buffer is
                        // (momentarily) empty: skip the guaranteed
                        // EAGAIN syscall. Level-triggered epoll
                        // re-reports anything that arrives meanwhile.
                        if n < self.scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Reset or similar: the connection is gone.
                        dead = true;
                        break;
                    }
                }
            }
            if !dead && conn.has_ingest() {
                // Published before the `busy` check in maybe_dispatch
                // below: the Dekker ordering that guarantees either
                // this thread sees `busy == false` or the finishing
                // worker sees the flag.
                conn.shared.has_pending.store(true, Ordering::SeqCst);
            }
        }
        if dead {
            self.close(slot);
            return;
        }
        self.maybe_dispatch(slot);
        self.update_interest(slot);
        self.maybe_close(slot);
    }

    fn write_ready(&mut self, slot: usize) {
        let mut dead = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            let flush_span = (conn.outstanding() > 0).then(Span::start);
            loop {
                if conn.outpos == conn.out.len() {
                    conn.out.clear();
                    conn.outpos = 0;
                    break;
                }
                match (&conn.shared.stream).write(&conn.out[conn.outpos..]) {
                    Ok(0) => break,
                    Ok(n) => {
                        conn.outpos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead && conn.outpos > (1 << 20) {
                conn.out.drain(..conn.outpos);
                conn.outpos = 0;
            }
            if let Some(span) = flush_span {
                let transport = conn.transport();
                span.finish(self.server.metrics().stage(transport, Stage::Write));
            }
        }
        if dead {
            self.close(slot);
            return;
        }
        self.maybe_dispatch(slot);
        self.update_interest(slot);
        self.maybe_close(slot);
    }

    /// Stages the connection's queued raw bytes (up to
    /// [`MAX_JOB_BYTES`]) and any unshipped EOF for dispatch, unless a
    /// worker already owns it or backpressure gates it. Staged units
    /// ship when the iteration's events have all been handled
    /// ([`EventLoop::flush_staged`]), so one readiness batch becomes a
    /// handful of channel sends, not one per socket.
    fn maybe_dispatch(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.busy()
            || conn.close_after_flush
            || !conn.has_ingest()
            || conn.outstanding() > WRITE_BACKPRESSURE_BYTES
        {
            return;
        }
        let raw: Vec<u8> = if conn.inbuf.len() <= MAX_JOB_BYTES {
            std::mem::take(&mut conn.inbuf)
        } else {
            conn.inbuf.drain(..MAX_JOB_BYTES).collect()
        };
        // EOF rides along only once every preceding byte has shipped,
        // so the worker-side assembler sees it in order.
        let eof = conn.eof_pending && conn.inbuf.is_empty();
        if eof {
            conn.eof_pending = false;
        }
        self.metrics.dispatch_bytes.record(raw.len() as u64);
        // Relaxed is enough off the Dekker path: a worker reading a
        // stale `true` only issues a spurious wake, and `busy = true`
        // is read back by this thread alone (the job itself reaches the
        // worker through the channel, which synchronizes).
        conn.shared
            .has_pending
            .store(conn.has_ingest(), Ordering::Relaxed);
        conn.shared.busy.store(true, Ordering::Relaxed);
        // The fast path: with nothing backlogged, the worker is the
        // connection's only writer until its done lands, so it may push
        // the response into the socket itself.
        let direct = conn.outstanding() == 0;
        self.staged.push(JobUnit {
            slot,
            gen: self.gens[slot],
            raw,
            eof,
            queued_at: self.server.metrics().now_nanos(),
            shared: Arc::clone(&conn.shared),
            direct,
        });
    }

    /// Ships the staged units, spread over the pool: enough jobs that
    /// every worker can pull one, each capped at [`MAX_UNITS_PER_JOB`].
    fn flush_staged(&mut self) {
        while !self.staged.is_empty() {
            let take = self.staged.len().min(MAX_UNITS_PER_JOB);
            let units: Vec<JobUnit> = self.staged.drain(..take).collect();
            // A send failure means every worker died (only possible
            // during teardown); drop the connections rather than wedge
            // them.
            let job = Job {
                units,
                signal: Arc::clone(&self.signal),
            };
            if self.job_tx.send(job).is_err() {
                for slot in 0..self.conns.len() {
                    if matches!(&self.conns[slot], Some(c) if c.busy()) {
                        self.close(slot);
                    }
                }
                self.staged.clear();
                return;
            }
        }
    }

    fn collect_done(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            for unit in done.units {
                let slot = unit.slot;
                let current = slot < self.gens.len()
                    && self.gens[slot] == unit.gen
                    && self.conns[slot].is_some();
                if !current {
                    continue; // the connection closed while the job ran
                }
                if unit.io_failed {
                    // The worker's direct write hit a hard error; clear
                    // the in-flight flag and drop the connection.
                    let conn = self.conns[slot].as_mut().expect("open");
                    conn.shared.busy.store(false, Ordering::SeqCst);
                    self.close(slot);
                    continue;
                }
                {
                    let conn = self.conns[slot].as_mut().expect("open");
                    conn.shared.busy.store(false, Ordering::SeqCst);
                    conn.last_activity = Instant::now();
                    if conn.out.is_empty() {
                        conn.out = unit.bytes;
                        conn.outpos = 0;
                    } else {
                        conn.out.extend_from_slice(&unit.bytes);
                    }
                    if unit.close {
                        conn.close_after_flush = true;
                        conn.inbuf.clear();
                        conn.eof_pending = false;
                    }
                }
                self.write_ready(slot); // flush without another epoll round
                if self.conns[slot].is_some() {
                    self.maybe_dispatch(slot);
                    self.update_interest(slot);
                    self.maybe_close(slot);
                }
            }
        }
        self.flush_staged();
    }

    /// Closes connections with no byte movement in either direction for
    /// the idle timeout: quiet analysts are reclaimed silently (as on
    /// the pool front end) and stalled writers — a pipelining peer that
    /// stopped draining — are dropped instead of wedging resources.
    /// Connections with a job in flight are exempt; the job's completion
    /// refreshes their activity stamp. Sweeps only this shard's slab —
    /// a connection is owned by exactly one shard for its whole life.
    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let expired = match &self.conns[slot] {
                Some(conn) => {
                    // A fast-path completion crosses no channel, so the
                    // worker's stamp is the only record of the response
                    // it just delivered; idle means *both* the loop-side
                    // and worker-side clocks are stale.
                    let last_done = self.epoch
                        + Duration::from_millis(conn.shared.last_done_ms.load(Ordering::Relaxed));
                    let last = conn.last_activity.max(last_done);
                    !conn.busy() && now.duration_since(last) > self.cfg.idle_timeout
                }
                None => false,
            };
            if expired {
                self.metrics.sweep_evictions.inc();
                self.close(slot);
            }
        }
    }

    fn update_interest(&mut self, slot: usize) {
        let draining = self.shutdown.load(Ordering::SeqCst);
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let backpressured =
            conn.inbuf.len() >= MAX_PENDING_BYTES || conn.outstanding() > WRITE_BACKPRESSURE_BYTES;
        let read_paused = conn.close_after_flush || conn.peer_closed || draining || backpressured;
        let desired = Interest {
            readable: !read_paused,
            writable: conn.outstanding() > 0,
        };
        if conn.registered.readable && !desired.readable && backpressured {
            // Count only pauses *caused* by backpressure, not closes or
            // drains that happen to coincide.
            self.metrics.backpressure_pauses.inc();
        }
        if desired != conn.registered {
            conn.registered = desired;
            let fd = conn.shared.stream.as_raw_fd();
            let token = (slot as u64) | (u64::from(self.gens[slot]) << 32);
            if self.poller.modify(fd, token, desired).is_err() {
                self.close(slot);
            }
        }
    }

    /// Closes the connection if its stream is finished: everything
    /// flushed after a fatal item, or the peer is gone and no work
    /// remains.
    fn maybe_close(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_ref() else {
            return;
        };
        let flushed = conn.outstanding() == 0;
        let fatal = conn.close_after_flush && !conn.busy() && flushed;
        let finished = conn.peer_closed && conn.quiesced();
        if fatal || finished {
            self.close(slot);
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.delete(conn.shared.stream.as_raw_fd());
            self.server.connection_closed();
            self.gens[slot] = self.gens[slot].wrapping_add(1);
            self.free.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;
    use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
    use dpod_dp::Epsilon;
    use dpod_fmatrix::{DenseMatrix, Shape};
    use std::io::{BufRead, BufReader};

    fn test_server() -> Arc<Server> {
        let catalog = Arc::new(Catalog::new());
        let shape = Shape::new(vec![16, 16]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(shape);
        m.add_at(&[3, 9], 700).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(11))
            .unwrap();
        catalog.publish("city", PublishedRelease::from_sanitized(&out));
        Arc::new(Server::new(catalog, 1 << 22))
    }

    /// The `SO_REUSEPORT`-less fallback, driven directly: one listener,
    /// four shards. Shard 0 accepts and stripes sockets round-robin to
    /// its peers, so three of the four shards serve connections they
    /// never accepted — every round trip below crosses the handoff
    /// channel plus an unconditional peer wake.
    #[test]
    fn striped_accept_serves_connections_on_listenerless_shards() {
        let server = test_server();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let drain_ms = Arc::new(AtomicU64::new(0));
        let cfg = EventConfig {
            workers: 2,
            loops: 4,
            mode: WireMode::Auto,
            idle_timeout: Duration::from_secs(30),
        };
        let (joins, wakers) = spawn(
            Arc::clone(&server),
            vec![listener],
            cfg,
            Arc::clone(&shutdown),
            drain_ms,
        )
        .expect("striped spawn");
        assert_eq!(joins.len(), 4);

        // More connections than shards: the round-robin wraps and every
        // shard (listener-owning or not) serves several.
        let req = serde_json::to_string(&Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![16, 16],
        })
        .unwrap();
        let mut conns = Vec::new();
        for _ in 0..12 {
            let stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            conns.push(stream);
        }
        let mut values = Vec::new();
        for stream in &conns {
            (&*stream).write_all(format!("{req}\n").as_bytes()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut answer = String::new();
            reader.read_line(&mut answer).unwrap();
            let Response::Value { value } =
                serde_json::from_str::<Response>(answer.trim()).unwrap()
            else {
                panic!("striped connection unanswered: {answer:?}");
            };
            values.push(value);
        }
        assert_eq!(values.len(), 12);
        assert!(values.windows(2).all(|w| w[0] == w[1]), "answers diverged");
        assert_eq!(server.queries_answered(), 12);

        drop(conns);
        shutdown.store(true, Ordering::SeqCst);
        for w in &wakers {
            w.wake();
        }
        for j in joins {
            j.join().unwrap();
        }
    }
}
