//! The request front end: in-process dispatch plus a std-only TCP loop.
//!
//! [`Server::handle`] is the whole request surface — the CLI, tests and
//! benches call it directly with zero serialization. [`spawn`] wraps the
//! same dispatch in a fixed thread pool reading newline-delimited JSON
//! from a `TcpListener`: one acceptor thread hands sockets to workers
//! over an `mpsc` channel, each worker answers its connection's lines in
//! order. No async runtime. Each worker serves one connection at a time,
//! so a connection that stays open holds its worker; the
//! [`IDLE_TIMEOUT`] reclaims workers from clients that go quiet, which
//! bounds how long a queued connection can wait.

use crate::protocol::{ReleaseInfo, Request, Response, ServerStats};
use crate::{Catalog, QueryEngine, ServeError};
use dpod_fmatrix::AxisBox;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Default rebuild-cache budget: 256 MiB.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// A connection with no readable line for this long is closed so its
/// worker can serve the next queued connection.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Longest accepted request line; a client exceeding it (e.g. streaming
/// bytes with no newline to exhaust memory) is disconnected.
pub const MAX_LINE_BYTES: u64 = 8 << 20;

/// The serving core: catalog + engine + counters.
#[derive(Debug)]
pub struct Server {
    catalog: Arc<Catalog>,
    engine: QueryEngine,
    queries: AtomicU64,
}

impl Server {
    /// A server over `catalog` with `cache_bytes` of rebuild cache.
    pub fn new(catalog: Arc<Catalog>, cache_bytes: usize) -> Self {
        Server {
            catalog,
            engine: QueryEngine::new(cache_bytes),
            queries: AtomicU64::new(0),
        }
    }

    /// The underlying catalog (shared with publishers).
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Answers one request. Never panics on analyst input: every failure
    /// is a [`Response::Error`].
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Query { release, lo, hi } => {
                let answer = self.resolve(release).and_then(|m| self.sum_on(&m, lo, hi));
                match answer {
                    Ok(value) => Response::Value { value },
                    Err(e) => Response::Error { message: e.0 },
                }
            }
            Request::Batch { release, ranges } => {
                // Resolve the release once: one catalog lookup and one
                // cache access for the whole batch.
                let matrix = match self.resolve(release) {
                    Ok(m) => m,
                    Err(e) => return Response::Error { message: e.0 },
                };
                let mut values = Vec::with_capacity(ranges.len());
                for (lo, hi) in ranges {
                    match self.sum_on(&matrix, lo, hi) {
                        Ok(v) => values.push(v),
                        Err(e) => return Response::Error { message: e.0 },
                    }
                }
                Response::Values { values }
            }
            Request::List => Response::Releases {
                releases: self
                    .catalog
                    .entries()
                    .iter()
                    .map(|e| ReleaseInfo {
                        name: e.name.clone(),
                        version: e.version,
                        mechanism: e.release.mechanism.clone(),
                        epsilon: e.release.epsilon,
                        domain: e.release.domain.clone(),
                        released_values: e.release.len(),
                    })
                    .collect(),
            },
            Request::Stats => {
                let engine = self.engine.stats();
                Response::Stats {
                    stats: ServerStats {
                        releases: self.catalog.len(),
                        queries: self.queries.load(Ordering::Relaxed),
                        cache_entries: engine.entries,
                        cache_bytes: engine.bytes,
                        cache_hits: engine.hits,
                        cache_misses: engine.misses,
                    },
                }
            }
        }
    }

    /// Resolves a release name to its cached queryable rebuild.
    fn resolve(&self, release: &str) -> Result<Arc<dpod_core::SanitizedMatrix>, ServeError> {
        let entry = self
            .catalog
            .get(release)
            .ok_or_else(|| ServeError(format!("unknown release '{release}'")))?;
        self.engine.sanitized(&entry)
    }

    /// Validates one range against `matrix` and answers it.
    fn sum_on(
        &self,
        matrix: &dpod_core::SanitizedMatrix,
        lo: &[usize],
        hi: &[usize],
    ) -> Result<f64, ServeError> {
        let q = AxisBox::new(lo.to_vec(), hi.to_vec())
            .map_err(|e| ServeError(format!("bad range: {e}")))?;
        let shape = matrix.matrix().shape();
        if q.ndim() != shape.ndim() || !q.fits(shape) {
            return Err(ServeError(format!(
                "range {:?}..{:?} does not fit domain {:?}",
                q.lo(),
                q.hi(),
                shape.dims()
            )));
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(matrix.range_sum(&q))
    }

    /// Engine counters (for benches and tests).
    pub fn engine_stats(&self) -> crate::EngineStats {
        self.engine.stats()
    }

    /// Range queries answered since start.
    pub fn queries_answered(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

/// Handle to a running TCP front end; dropping it does **not** stop the
/// server — call [`ServerHandle::stop`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the acceptor thread.
    /// Connections already handed to workers keep being served until the
    /// peer closes or goes idle past [`IDLE_TIMEOUT`].
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Binds `addr` and serves `server` on `workers` pool threads.
///
/// # Errors
/// IO errors from binding the listener.
pub fn spawn(
    server: Arc<Server>,
    addr: impl ToSocketAddrs,
    workers: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = workers.max(1);

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let server = Arc::clone(&server);
        std::thread::spawn(move || loop {
            let stream = {
                let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                guard.recv()
            };
            match stream {
                Ok(s) => {
                    // Per-connection failures are that connection's
                    // problem; the worker lives on.
                    let _ = handle_connection(&server, s);
                }
                Err(_) => return, // channel closed: server stopped
            }
        });
    }

    let accept_shutdown = Arc::clone(&shutdown);
    let acceptor = std::thread::spawn(move || {
        listener
            .set_nonblocking(true)
            .expect("listener supports non-blocking");
        loop {
            if accept_shutdown.load(Ordering::SeqCst) {
                return; // dropping `tx` drains and stops the workers
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false).ok();
                    if tx.send(stream).is_err() {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    });

    Ok(ServerHandle {
        addr: local,
        shutdown,
        acceptor: Some(acceptor),
    })
}

/// Answers every request line on one connection, in order, until the
/// peer closes or stays silent past [`IDLE_TIMEOUT`].
///
/// The write side also carries [`IDLE_TIMEOUT`]: a pipelining client
/// that stops draining responses would otherwise block the worker in
/// `flush` forever once the socket buffers fill (the client itself still
/// writing — a mutual deadlock). With the timeout the worker errors out
/// and the connection closes instead. Responses are flushed only when no
/// further request is already buffered, so a pipelined batch is answered
/// in large writes rather than one syscall per line.
fn handle_connection(server: &Server, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IDLE_TIMEOUT))?;
    stream.set_write_timeout(Some(IDLE_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Bound the line so a client cannot grow the buffer without limit.
        let n = std::io::Read::take(std::io::Read::by_ref(&mut reader), MAX_LINE_BYTES)
            .read_line(&mut line)?;
        if n == 0 {
            return Ok(()); // EOF
        }
        if n as u64 == MAX_LINE_BYTES && !line.ends_with('\n') {
            let msg = format!(
                "{{\"Error\":{{\"message\":\"request line exceeds {MAX_LINE_BYTES} bytes\"}}}}\n"
            );
            writer.write_all(msg.as_bytes())?;
            writer.flush()?;
            return Ok(()); // disconnect the abusive client
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(line.trim_end()) {
            Ok(request) => server.handle(&request),
            Err(e) => Response::Error {
                message: format!("bad request: {e}"),
            },
        };
        let body = serde_json::to_string(&response).unwrap_or_else(|e| {
            format!("{{\"Error\":{{\"message\":\"serialization failed: {e}\"}}}}")
        });
        writer.write_all(body.as_bytes())?;
        writer.write_all(b"\n")?;
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
    use dpod_dp::Epsilon;
    use dpod_fmatrix::{DenseMatrix, Shape};

    fn test_server(names: &[&str]) -> Arc<Server> {
        let catalog = Arc::new(Catalog::new());
        for (i, name) in names.iter().enumerate() {
            let s = Shape::new(vec![8, 8]).unwrap();
            let mut m = DenseMatrix::<u64>::zeros(s);
            m.add_at(&[2, 2], 500).unwrap();
            let out = Ebp::default()
                .sanitize(
                    &m,
                    Epsilon::new(0.5).unwrap(),
                    &mut dpod_dp::seeded_rng(i as u64),
                )
                .unwrap();
            catalog.publish(name, PublishedRelease::from_sanitized(&out));
        }
        Arc::new(Server::new(catalog, 1 << 20))
    }

    #[test]
    fn handle_answers_queries_and_batches() {
        let server = test_server(&["city"]);
        let q = Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![8, 8],
        };
        let Response::Value { value } = server.handle(&q) else {
            panic!("expected value");
        };
        assert!(value.is_finite());

        let b = Request::Batch {
            release: "city".into(),
            ranges: vec![(vec![0, 0], vec![4, 4]), (vec![0, 0], vec![8, 8])],
        };
        let Response::Values { values } = server.handle(&b) else {
            panic!("expected values");
        };
        assert_eq!(values.len(), 2);
        assert_eq!(values[1], value);
        assert_eq!(server.queries_answered(), 3);
    }

    #[test]
    fn handle_reports_errors_not_panics() {
        let server = test_server(&["city"]);
        for bad in [
            Request::Query {
                release: "nope".into(),
                lo: vec![0, 0],
                hi: vec![4, 4],
            },
            Request::Query {
                release: "city".into(),
                lo: vec![0],
                hi: vec![4],
            },
            Request::Query {
                release: "city".into(),
                lo: vec![0, 0],
                hi: vec![9, 9],
            },
            Request::Query {
                release: "city".into(),
                lo: vec![5, 5],
                hi: vec![2, 2],
            },
        ] {
            let Response::Error { message } = server.handle(&bad) else {
                panic!("expected error for {bad:?}");
            };
            assert!(!message.is_empty());
        }
    }

    #[test]
    fn list_and_stats_reflect_catalog() {
        let server = test_server(&["a", "b"]);
        let Response::Releases { releases } = server.handle(&Request::List) else {
            panic!("expected releases");
        };
        assert_eq!(releases.len(), 2);
        assert_eq!(releases[0].name, "a");
        assert_eq!(releases[0].domain, vec![8, 8]);

        server.handle(&Request::Query {
            release: "a".into(),
            lo: vec![0, 0],
            hi: vec![1, 1],
        });
        let Response::Stats { stats } = server.handle(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(stats.releases, 2);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn tcp_round_trip_with_concurrent_clients() {
        let server = test_server(&["city", "transit"]);
        let handle = spawn(Arc::clone(&server), "127.0.0.1:0", 4).unwrap();
        let addr = handle.addr();

        let mut joins = Vec::new();
        for t in 0..4 {
            joins.push(std::thread::spawn(move || {
                let release = if t % 2 == 0 { "city" } else { "transit" };
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                for i in 0..25usize {
                    let hi = 1 + (i % 8);
                    let req = Request::Query {
                        release: release.into(),
                        lo: vec![0, 0],
                        hi: vec![hi, hi],
                    };
                    writer
                        .write_all(serde_json::to_string(&req).unwrap().as_bytes())
                        .unwrap();
                    writer.write_all(b"\n").unwrap();
                    writer.flush().unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let resp: Response = serde_json::from_str(line.trim()).unwrap();
                    assert!(matches!(resp, Response::Value { .. }), "{resp:?}");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(server.queries_answered(), 100);
        handle.stop();
    }

    #[test]
    fn malformed_lines_get_error_responses() {
        let server = test_server(&["city"]);
        let handle = spawn(server, "127.0.0.1:0", 1).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer.write_all(b"this is not json\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(resp, Response::Error { .. }));

        // The connection survives and still answers valid requests.
        let req = Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![2, 2],
        };
        writer
            .write_all(serde_json::to_string(&req).unwrap().as_bytes())
            .unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(resp, Response::Value { .. }));
        handle.stop();
    }
}
