//! The request front end: in-process dispatch plus two TCP serving
//! cores.
//!
//! [`Server::handle`] is the whole request surface — the CLI, tests and
//! benches call it directly with zero serialization. [`spawn_with`]
//! wraps the same dispatch behind a `TcpListener` using one of two
//! front ends (selected by [`FrontEnd`], no async runtime either way):
//!
//! * **`event`** (the default) — a readiness-driven core
//!   ([`crate::event`]): one epoll loop owns every socket as cheap
//!   nonblocking state, assembles requests incrementally
//!   ([`crate::conn`]), and dispatches them to the worker pool — `N`
//!   workers serve `M ≫ N` connections, so an idle analyst costs a few
//!   kilobytes, not a thread.
//! * **`pool`** — the legacy thread-per-connection core kept as an
//!   operational kill-switch (`dpod serve --front-end pool`): one
//!   acceptor hands sockets to workers over an `mpsc` channel, each
//!   worker answers one connection's requests in order, and the
//!   [`IDLE_TIMEOUT`] reclaims workers from clients that go quiet.
//!
//! Both front ends serve bit-identical bytes (pinned by test) and both
//! maintain the open/accepted-connection gauges surfaced in
//! [`ServerStats`]. Each connection speaks one of two encodings,
//! selected by its first bytes (see [`WireMode`]): the `DPRB` binary
//! preamble switches to length-prefixed frames ([`crate::wire`]),
//! anything else is served as newline-delimited JSON exactly as before
//! the binary protocol existed.

use crate::metrics::{ServeMetrics, Stage, Transport};
use crate::protocol::{ReleaseHits, ReleaseInfo, Request, Response, ServerStats};
use crate::series::{self, SeriesLedgers};
use crate::{wire, Catalog, QueryEngine, ServeError};
use dpod_fmatrix::AxisBox;
use dpod_obs::Span;
use dpod_query::{Answer, EpochSelector, QueryPlan, WindowMerge};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Default rebuild-cache budget: 256 MiB.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// Which encodings a TCP front end accepts.
///
/// `Auto` sniffs the first bytes of each connection: the `DPRB` magic
/// selects binary framing, anything else is newline-delimited JSON. The
/// restricted modes exist for operators who want a single-protocol
/// endpoint (e.g. JSON only behind a line-oriented proxy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Accept both encodings, sniffed per connection (the default).
    #[default]
    Auto,
    /// Newline-delimited JSON only; `DPRB` preambles are refused.
    Json,
    /// `DPRB` binary frames only; JSON connections are refused.
    Binary,
}

impl std::str::FromStr for WireMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(WireMode::Auto),
            "json" => Ok(WireMode::Json),
            "binary" => Ok(WireMode::Binary),
            other => Err(format!(
                "unknown wire mode '{other}' (expected auto|json|binary)"
            )),
        }
    }
}

/// Which TCP serving core accepts and answers connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontEnd {
    /// The readiness-driven core (the default): one epoll loop owns all
    /// sockets, workers serve ready requests, open connections are
    /// cheap state rather than threads.
    #[default]
    Event,
    /// The legacy thread-per-connection pool, kept as a kill-switch:
    /// concurrency is capped at the worker count, but no epoll is
    /// required. Also the automatic fallback on targets without epoll.
    Pool,
}

impl std::str::FromStr for FrontEnd {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "event" => Ok(FrontEnd::Event),
            "pool" => Ok(FrontEnd::Pool),
            other => Err(format!("unknown front end '{other}' (expected event|pool)")),
        }
    }
}

/// How [`Server::handle_encoded`] serializes a response into final
/// socket bytes — one variant per wire shape a connection can be in.
/// The discriminant keys the engine's encoded-response memo, so each
/// encoding memoizes its own bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseEncoding {
    /// One JSON document plus the trailing newline (NDJSON transport
    /// and the event loop's JSON-line connections).
    Json,
    /// A length-prefixed `DPRB` frame with the legacy opcodes.
    Binary,
    /// A length-prefixed `DPRB` frame preferring the packed opcodes
    /// (peer advertised [`wire::WIRE_FEATURE_PACKED`]).
    BinaryPacked,
}

impl ResponseEncoding {
    /// The memo-key discriminant for this encoding.
    pub(crate) fn code(self) -> u8 {
        match self {
            ResponseEncoding::Json => 0,
            ResponseEncoding::Binary => 1,
            ResponseEncoding::BinaryPacked => 2,
        }
    }

    /// Serializes `resp` into complete socket bytes: JSON line with its
    /// `\n`, or a `DPRB` frame *with* its u32 length prefix. A response
    /// too large to frame degrades to an in-protocol error so the
    /// connection survives (the frame cap is 64 MiB; real answers stay
    /// far under it).
    pub(crate) fn encode(self, resp: &Response) -> Vec<u8> {
        match self {
            ResponseEncoding::Json => {
                let mut line = serde_json::to_string(resp)
                    .unwrap_or_else(|e| {
                        format!("{{\"Error\":{{\"message\":\"serialization failed: {e}\"}}}}")
                    })
                    .into_bytes();
                line.push(b'\n');
                line
            }
            ResponseEncoding::Binary | ResponseEncoding::BinaryPacked => {
                let body = if self == ResponseEncoding::BinaryPacked {
                    wire::encode_response_packed(resp)
                } else {
                    wire::encode_response(resp)
                };
                let mut out = Vec::with_capacity(body.len() + 4);
                if wire::write_frame(&mut out, &body).is_err() {
                    out.clear();
                    let fallback = wire::encode_response(&Response::Error {
                        message: format!("response of {} bytes exceeds the frame cap", body.len()),
                    });
                    wire::write_frame(&mut out, &fallback).expect("error frame fits the frame cap");
                }
                out
            }
        }
    }
}

/// A connection with no readable line for this long is closed so its
/// worker can serve the next queued connection.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// `hits / (hits + misses)`, `0.0` before any lookup.
fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Longest accepted request line; a client exceeding it (e.g. streaming
/// bytes with no newline to exhaust memory) is disconnected.
pub const MAX_LINE_BYTES: u64 = 8 << 20;

/// Most per-release hit-counter rows the stats map holds. Removing
/// releases through [`Server::remove_release`] prunes rows eagerly; this
/// cap is the backstop for catalogs churned around it (operators calling
/// [`Catalog::remove`] directly), trading the stalest rows for a bound
/// instead of leaking. Evictions are counted in
/// `ServerStats::evicted_stat_entries`.
pub const MAX_RELEASE_HIT_ENTRIES: usize = 1024;

/// The serving core: catalog + engine + counters.
#[derive(Debug)]
pub struct Server {
    catalog: Arc<Catalog>,
    engine: QueryEngine,
    queries: AtomicU64,
    /// Whether `Plan` requests run through the prepared
    /// [`dpod_query::ReleaseIndex`] backend (the default) or fall back
    /// to cold per-query scans. The switch exists as an operational
    /// kill-switch and so benches can measure both paths on one server;
    /// answers are bit-identical either way.
    indexed_plans: AtomicBool,
    /// Lifetime answered-query count per release name. Reads (the hot
    /// path) only take the `RwLock` shared; the exclusive lock is held
    /// once per name, on first touch.
    release_hits: RwLock<HashMap<String, AtomicU64>>,
    /// Connections a TCP front end has started serving since start.
    conn_accepted: AtomicU64,
    /// Connections a TCP front end currently holds open.
    conn_open: AtomicU64,
    /// Hot-path metric handles shared by every front end (stage latency
    /// histograms, event-loop health, request-mix counters).
    metrics: ServeMetrics,
    /// Per-series ε ledgers: publishes spend, retention expiries refund
    /// (see [`crate::series::SeriesLedgers`]).
    ledgers: SeriesLedgers,
    /// Epochs published through [`Server::publish_epoch`] since start.
    epochs_published: AtomicU64,
    /// Epochs retired through [`Server::apply_retention`] since start.
    epochs_retired: AtomicU64,
}

impl Server {
    /// A server over `catalog` with `cache_bytes` of rebuild cache
    /// (shared between matrix rebuilds and plan indexes) and the
    /// default per-release marginal-memoization cap.
    pub fn new(catalog: Arc<Catalog>, cache_bytes: usize) -> Self {
        Self::with_marginal_cap(
            catalog,
            cache_bytes,
            dpod_query::backend::DEFAULT_MARGINAL_BUDGET,
        )
    }

    /// [`Self::new`], but capping each release index's memoized
    /// marginal tables at `index_marginal_bytes` (`dpod serve
    /// --index-mb` plumbs here).
    pub fn with_marginal_cap(
        catalog: Arc<Catalog>,
        cache_bytes: usize,
        index_marginal_bytes: usize,
    ) -> Self {
        Server {
            catalog,
            engine: QueryEngine::with_marginal_cap(cache_bytes, index_marginal_bytes),
            queries: AtomicU64::new(0),
            indexed_plans: AtomicBool::new(true),
            release_hits: RwLock::new(HashMap::new()),
            conn_accepted: AtomicU64::new(0),
            conn_open: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
            ledgers: SeriesLedgers::new(),
            epochs_published: AtomicU64::new(0),
            epochs_retired: AtomicU64::new(0),
        }
    }

    /// The server's metric hub (stage histograms, event-loop gauges,
    /// request counters) — what `/metrics` and the extended stats frame
    /// read from.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Renders the full Prometheus text exposition for this server:
    /// hot-path series plus scrape-time engine/catalog/ε-budget gauges.
    /// This is the body `dpod serve --metrics-addr` serves.
    pub fn metrics_text(&self) -> String {
        crate::metrics::render_metrics(self)
    }

    /// Records a connection entering service (both front ends call this
    /// once per connection). Bumps the accepted counter and open gauge.
    pub(crate) fn connection_opened(&self) {
        self.conn_accepted.fetch_add(1, Ordering::Relaxed);
        self.conn_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection leaving service (close, timeout, or drop).
    pub(crate) fn connection_closed(&self) {
        self.conn_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections a TCP front end currently holds open (`0` for purely
    /// in-process use).
    pub fn open_connections(&self) -> u64 {
        self.conn_open.load(Ordering::Relaxed)
    }

    /// Connections accepted into service since start.
    pub fn accepted_connections(&self) -> u64 {
        self.conn_accepted.load(Ordering::Relaxed)
    }

    /// Enables or disables the indexed plan backend (see
    /// [`Server::indexed_plans`]); answers are bit-identical either way.
    pub fn set_indexed_plans(&self, enabled: bool) {
        self.indexed_plans.store(enabled, Ordering::Relaxed);
    }

    /// Whether `Plan` requests currently run through the prepared index.
    pub fn indexed_plans(&self) -> bool {
        self.indexed_plans.load(Ordering::Relaxed)
    }

    /// The underlying catalog (shared with publishers).
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Removes `release` from the catalog, prunes its per-release hit
    /// counter, and evicts its cached rebuild, returning whether it
    /// existed. Operators managing a served catalog should remove
    /// through this method rather than [`Catalog::remove`] directly —
    /// the counter map is keyed by name and would otherwise grow
    /// without bound as releases churn, and the engine's rebuild would
    /// strand its bytes in the cache until LRU pressure found it.
    pub fn remove_release(&self, release: &str) -> bool {
        let existed = self.catalog.remove(release);
        let mut map = self.release_hits.write().unwrap_or_else(|e| e.into_inner());
        map.remove(release);
        drop(map);
        self.engine.evict(release);
        existed
    }

    /// Publishes `release` as epoch `epoch` of `series` (catalog entry
    /// `series@epoch`), enforcing the monotonic epoch rule and spending
    /// the release's ε into the series ledger. Returns the entry's new
    /// catalog version (`> 1` on a republish of a live epoch).
    ///
    /// # Errors
    /// [`ServeError`] when the series name contains
    /// [`EPOCH_SEP`](crate::EPOCH_SEP) or `epoch` is behind the series
    /// frontier and not live (see
    /// [`series::validate_publish_epoch`](crate::series::validate_publish_epoch)).
    pub fn publish_epoch(
        &self,
        series: &str,
        epoch: u64,
        release: dpod_core::release::PublishedRelease,
    ) -> Result<u64, ServeError> {
        series::validate_publish_epoch(&self.catalog, series, epoch)?;
        let epsilon = release.epsilon;
        let version = self
            .catalog
            .publish(&series::epoch_entry_name(series, epoch), release);
        self.ledgers.note_publish(series, epoch, epsilon);
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
        Ok(version)
    }

    /// Applies a `retain`-newest retention policy to `series`: every
    /// older epoch is removed through [`Server::remove_release`] (so its
    /// cached rebuild, index, window partials and hit counter go with
    /// it) and its ε is refunded into the series ledger. Returns the
    /// retired epoch ids, oldest first.
    ///
    /// # Errors
    /// [`ServeError`] when `retain` is zero.
    pub fn apply_retention(&self, series: &str, retain: usize) -> Result<Vec<u64>, ServeError> {
        let epochs = series::series_epochs(&self.catalog, series);
        let expired = series::expired_epochs(&epochs, retain)?;
        let mut retired = Vec::with_capacity(expired.len());
        for info in expired {
            if self.remove_release(&info.entry.name) {
                self.ledgers
                    .note_retire(series, info.epoch, info.entry.release.epsilon);
                self.epochs_retired.fetch_add(1, Ordering::Relaxed);
                retired.push(info.epoch);
            }
        }
        Ok(retired)
    }

    /// The per-series ε ledgers (publish spends, retention refunds).
    pub fn ledgers(&self) -> &SeriesLedgers {
        &self.ledgers
    }

    /// Epochs published through [`Server::publish_epoch`] since start.
    pub fn epochs_published(&self) -> u64 {
        self.epochs_published.load(Ordering::Relaxed)
    }

    /// Epochs retired through [`Server::apply_retention`] since start.
    pub fn epochs_retired(&self) -> u64 {
        self.epochs_retired.load(Ordering::Relaxed)
    }

    /// Answers a [`QueryPlan::Window`]: resolves the selector against
    /// the series' live epochs, executes the inner plan once per
    /// selected epoch (each through the engine's memoized per-epoch
    /// partials, keyed by the inner plan's canonical JSON, so a sliding
    /// window re-executes only the epochs it hasn't seen), then merges.
    ///
    /// With indexed plans disabled the per-epoch executions run cold
    /// against each epoch's rebuild — bit-identical answers, no
    /// memoization (the same kill-switch contract single-release plans
    /// have).
    fn answer_window(
        &self,
        series: &str,
        select: &EpochSelector,
        merge: WindowMerge,
        inner: &QueryPlan,
    ) -> Result<Answer, ServeError> {
        if matches!(inner, QueryPlan::DrillDown { .. }) {
            return Err(ServeError(
                "DrillDown plans select a pyramid level at the top level \
                 and cannot ride inside Window"
                    .to_string(),
            ));
        }
        let live = series::series_epochs(&self.catalog, series);
        let selected = series::select_epochs(select, &live)?;
        let plan_key = serde_json::to_string(inner)
            .map_err(|e| ServeError(format!("cannot key window plan: {e}")))?;
        let epochs: Vec<u64> = selected.iter().map(|info| info.epoch).collect();
        let mut answers = Vec::with_capacity(selected.len());
        for info in &selected {
            let answer = if self.indexed_plans() {
                let name = info.entry.name.clone();
                let version = info.entry.version;
                self.engine.window_partial(
                    &info.entry,
                    &plan_key,
                    || {
                        self.catalog
                            .get(&name)
                            .is_some_and(|current| current.version == version)
                    },
                    |index| {
                        dpod_query::plan::execute_with(index, inner).map_err(|e| ServeError(e.0))
                    },
                )?
            } else {
                let matrix = self.resolve(&info.entry.name)?;
                dpod_query::plan::execute(&matrix, inner).map_err(|e| ServeError(e.0))?
            };
            answers.push(answer);
        }
        dpod_query::merge_window_answers(merge, &epochs, answers).map_err(|e| ServeError(e.0))
    }

    /// Answers one request. Never panics on analyst input: every failure
    /// is a [`Response::Error`].
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Query { release, lo, hi } => {
                let answer = self.resolve(release).and_then(|m| self.sum_on(&m, lo, hi));
                match answer {
                    Ok(value) => {
                        self.note_hits(release, 1);
                        Response::Value { value }
                    }
                    Err(e) => Response::Error { message: e.0 },
                }
            }
            Request::Batch { release, ranges } => {
                // Resolve the release once: one catalog lookup and one
                // cache access for the whole batch.
                let matrix = match self.resolve(release) {
                    Ok(m) => m,
                    Err(e) => return Response::Error { message: e.0 },
                };
                let mut values = Vec::with_capacity(ranges.len());
                for (lo, hi) in ranges {
                    match self.sum_on(&matrix, lo, hi) {
                        Ok(v) => values.push(v),
                        Err(e) => {
                            // Mirror the global `queries` counter: the
                            // ranges answered before the failure count.
                            self.note_hits(release, values.len() as u64);
                            return Response::Error { message: e.0 };
                        }
                    }
                }
                self.note_hits(release, values.len() as u64);
                Response::Values { values }
            }
            Request::Plan { release, plan } => {
                match self.execute_plan(release, plan) {
                    Ok(answer) => {
                        // A plan counts one query per leaf answered; a
                        // failed plan counts none (unlike `Batch`, plans
                        // are answered whole-or-not).
                        let units = answer.units();
                        self.queries.fetch_add(units, Ordering::Relaxed);
                        self.note_hits(release, units);
                        Response::Answer { answer }
                    }
                    Err(e) => Response::Error { message: e.0 },
                }
            }

            Request::List => Response::Releases {
                releases: self
                    .catalog
                    .entries()
                    .iter()
                    .map(|e| ReleaseInfo {
                        name: e.name.clone(),
                        version: e.version,
                        mechanism: e.release.mechanism.clone(),
                        epsilon: e.release.epsilon,
                        domain: e.release.domain.clone(),
                        released_values: e.release.len(),
                    })
                    .collect(),
            },
            Request::Stats => {
                let engine = self.engine.stats();
                Response::Stats {
                    stats: ServerStats {
                        releases: self.catalog.len(),
                        queries: self.queries.load(Ordering::Relaxed),
                        cache_entries: engine.entries,
                        cache_bytes: engine.bytes,
                        cache_hits: engine.hits,
                        cache_misses: engine.misses,
                        index_entries: engine.index_entries,
                        index_hits: engine.index_hits,
                        index_misses: engine.index_misses,
                        index_build_nanos: engine.index_build_nanos,
                        cache_hit_rate: hit_rate(engine.hits, engine.misses),
                        index_hit_rate: hit_rate(engine.index_hits, engine.index_misses),
                        open_connections: self.open_connections(),
                        accepted_connections: self.accepted_connections(),
                        release_hits: self.release_hits(),
                        evicted_stat_entries: self.metrics.evicted_stat_entries.get(),
                        stage_latencies: self.metrics.stage_latencies(),
                        series: series::series_names(&self.catalog).len(),
                        partial_entries: engine.partial_entries,
                        partial_hits: engine.partial_hits,
                        partial_misses: engine.partial_misses,
                        encoded_entries: engine.encoded_entries,
                        encoded_hits: engine.encoded_hits,
                        encoded_misses: engine.encoded_misses,
                        encoded_bytes: engine.encoded_bytes,
                        pyramid_entries: engine.pyramid_entries,
                        pyramid_hits: engine.pyramid_hits,
                        pyramid_misses: engine.pyramid_misses,
                        pyramid_bytes: engine.pyramid_bytes,
                    },
                }
            }
        }
    }

    /// Executes one [`QueryPlan`] against a release (or, for `Window`
    /// plans, a release series). Two-phase execution: resolve the
    /// release's prepared index (built once per (name, version),
    /// memoized structures answering warm aggregates), then execute
    /// against it. The cold fallback scans the rebuild directly —
    /// bit-identical answers, no preparation. Window plans take a third
    /// path: the name addresses a release *series* and the plan fans
    /// across its epochs. Pure execution — the caller owns the query
    /// counters.
    fn execute_plan(&self, release: &str, plan: &QueryPlan) -> Result<Answer, ServeError> {
        if let QueryPlan::Window {
            select,
            merge,
            plan: inner,
        } = plan
        {
            self.answer_window(release, select, *merge, inner)
        } else if self.indexed_plans() {
            self.resolve_index(release).and_then(|ix| {
                dpod_query::plan::execute_with(ix.as_ref(), plan).map_err(|e| ServeError(e.0))
            })
        } else {
            self.resolve(release)
                .and_then(|m| dpod_query::plan::execute(&m, plan).map_err(|e| ServeError(e.0)))
        }
    }

    /// Answers one request as final socket-ready bytes in the given
    /// encoding — the transport loops memcpy the result to the wire.
    ///
    /// For non-`Window` [`Request::Plan`] requests with indexed plans
    /// enabled, the bytes come from the engine's encoded-response memo:
    /// a warm hit skips plan execution *and* serialization (the source
    /// paper's post-processing invariance makes re-serving identical
    /// bytes ε-free), while a miss executes, encodes once, and memoizes
    /// under the shared cache ledger with the same catalog-currency
    /// re-check the index cache uses. Every other request — and every
    /// error — takes the plain [`Server::handle`] path and is encoded
    /// fresh. Query counters advance identically on warm and cold paths.
    pub fn handle_encoded(&self, request: &Request, enc: ResponseEncoding) -> Arc<Vec<u8>> {
        if let Request::Plan { release, plan } = request {
            let memoizable = !matches!(plan, QueryPlan::Window { .. }) && self.indexed_plans();
            if memoizable {
                if let (Some(entry), Ok(plan_key)) =
                    (self.catalog.get(release), serde_json::to_string(plan))
                {
                    let version = entry.version;
                    let result = self.engine.encoded_response(
                        &entry,
                        enc.code(),
                        &plan_key,
                        || {
                            self.catalog
                                .get(release)
                                .is_some_and(|current| current.version == version)
                        },
                        || {
                            let answer = self.execute_plan(release, plan)?;
                            let units = answer.units();
                            Ok((enc.encode(&Response::Answer { answer }), units))
                        },
                    );
                    return match result {
                        Ok((bytes, units)) => {
                            self.queries.fetch_add(units, Ordering::Relaxed);
                            self.note_hits(release, units);
                            bytes
                        }
                        Err(e) => Arc::new(enc.encode(&Response::Error { message: e.0 })),
                    };
                }
                // Unknown release or unkeyable plan: fall through to the
                // plain path, which produces the error response.
            }
        }
        Arc::new(enc.encode(&self.handle(request)))
    }

    /// Resolves a release name to its cached queryable rebuild.
    fn resolve(&self, release: &str) -> Result<Arc<dpod_core::SanitizedMatrix>, ServeError> {
        let entry = self
            .catalog
            .get(release)
            .ok_or_else(|| ServeError(format!("unknown release '{release}'")))?;
        // The currency re-check runs only on the rebuild (miss) path,
        // keeping the cached hot path at one catalog lookup. It closes
        // the race with [`Self::remove_release`]: a rebuild in flight
        // when the removal's evict runs must not be cached afterwards,
        // or its bytes strand in an entry no request can reach.
        self.engine.sanitized_if(&entry, || {
            self.catalog
                .get(release)
                .is_some_and(|current| current.version == entry.version)
        })
    }

    /// Resolves a release name to its prepared plan index, with the
    /// same currency re-check as [`Self::resolve`] (an index built
    /// while a removal or republish lands is served but never cached).
    fn resolve_index(&self, release: &str) -> Result<Arc<dpod_query::ReleaseIndex>, ServeError> {
        let entry = self
            .catalog
            .get(release)
            .ok_or_else(|| ServeError(format!("unknown release '{release}'")))?;
        self.engine.index_if(&entry, || {
            self.catalog
                .get(release)
                .is_some_and(|current| current.version == entry.version)
        })
    }

    /// Validates one range against `matrix` and answers it.
    fn sum_on(
        &self,
        matrix: &dpod_core::SanitizedMatrix,
        lo: &[usize],
        hi: &[usize],
    ) -> Result<f64, ServeError> {
        let q = AxisBox::new(lo.to_vec(), hi.to_vec())
            .map_err(|e| ServeError(format!("bad range: {e}")))?;
        let shape = matrix.matrix().shape();
        if q.ndim() != shape.ndim() || !q.fits(shape) {
            return Err(ServeError(format!(
                "range {:?}..{:?} does not fit domain {:?}",
                q.lo(),
                q.hi(),
                shape.dims()
            )));
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(matrix.range_sum(&q))
    }

    /// Records `n` answered queries against `release`.
    fn note_hits(&self, release: &str, n: u64) {
        if n == 0 {
            return;
        }
        {
            let map = self.release_hits.read().unwrap_or_else(|e| e.into_inner());
            if let Some(counter) = map.get(release) {
                counter.fetch_add(n, Ordering::Relaxed);
                return;
            }
        }
        let mut map = self.release_hits.write().unwrap_or_else(|e| e.into_inner());
        // First touch of this name: re-check the catalog *inside* the
        // exclusive lock. An in-flight request can race
        // [`Self::remove_release`] (its entry was resolved before the
        // removal); inserting here would re-create the counter that was
        // just pruned — a permanent leak. With the check under the same
        // lock the prune takes, either this insert happens first and the
        // prune removes it, or the removal happened first and the
        // catalog lookup fails.
        if self.catalog.get(release).is_none() {
            return;
        }
        // Bound the map before growing it. The eager prune in
        // [`Self::remove_release`] keeps well-behaved servers far below
        // the cap; this path only fires when releases were removed
        // behind the server's back ([`Catalog::remove`] directly), so
        // first retire rows whose names left the catalog — the same
        // retire-on-remove outcome, just deferred — and only then, if
        // the catalog itself outgrew the cap, drop the coldest row.
        if map.len() >= MAX_RELEASE_HIT_ENTRIES && !map.contains_key(release) {
            let stale: Vec<String> = map
                .keys()
                .filter(|name| self.catalog.get(name).is_none())
                .cloned()
                .collect();
            for name in stale {
                map.remove(&name);
                self.metrics.evicted_stat_entries.inc();
            }
            while map.len() >= MAX_RELEASE_HIT_ENTRIES {
                let coldest = map
                    .iter()
                    .min_by_key(|(name, hits)| (hits.load(Ordering::Relaxed), (*name).clone()))
                    .map(|(name, _)| name.clone());
                let Some(name) = coldest else { break };
                map.remove(&name);
                self.metrics.evicted_stat_entries.inc();
            }
        }
        map.entry(release.to_string())
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Lifetime per-release answered-query counts, sorted by name.
    pub fn release_hits(&self) -> Vec<ReleaseHits> {
        let map = self.release_hits.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<ReleaseHits> = map
            .iter()
            .map(|(name, hits)| ReleaseHits {
                name: name.clone(),
                hits: hits.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Engine counters (for benches and tests).
    pub fn engine_stats(&self) -> crate::EngineStats {
        self.engine.stats()
    }

    /// Warm pyramid-level hits by level, ascending (evicted indexes
    /// included) — what the `/metrics` per-level counter rows export.
    pub fn pyramid_level_hits(&self) -> Vec<(u32, u64)> {
        self.engine.pyramid_level_hits()
    }

    /// Range queries answered since start.
    pub fn queries_answered(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

/// Configuration for [`spawn_with`]: worker count, accepted encodings,
/// serving core, and timeouts. Construct with struct-update syntax over
/// [`SpawnOptions::default`].
#[derive(Debug, Clone)]
pub struct SpawnOptions {
    /// Worker threads answering requests (both front ends). Minimum 1.
    pub workers: usize,
    /// Accepted encodings (`Auto` sniffs per connection).
    pub wire: WireMode,
    /// Serving core; `None` (the default) resolves to the
    /// `DPOD_FRONT_END` environment variable (`pool`/`event`) and then
    /// to [`FrontEnd::Event`].
    pub front_end: Option<FrontEnd>,
    /// Close a connection once no byte moves in either direction for
    /// this long (quiet analysts and stalled pipeliners alike).
    pub idle_timeout: Duration,
    /// Graceful-shutdown bound: how long [`ServerHandle::stop`] (event
    /// front end) waits for in-flight responses to flush before
    /// dropping stragglers.
    pub drain_deadline: Duration,
    /// Event-loop shards (event front end only). `0` (the default)
    /// resolves to the `DPOD_EVENT_LOOPS` environment variable when
    /// set, then to `min(4, cores/2)` with a floor of 1.
    pub event_loops: usize,
    /// `listen(2)` backlog applied to every listener — the primary on
    /// both front ends, and each shard's `SO_REUSEPORT` sibling (each
    /// gets its own full queue). The kernel clamps to
    /// `net.core.somaxconn`.
    pub listen_backlog: i32,
}

impl Default for SpawnOptions {
    fn default() -> Self {
        SpawnOptions {
            workers: 4,
            wire: WireMode::Auto,
            front_end: None,
            idle_timeout: IDLE_TIMEOUT,
            drain_deadline: Duration::from_secs(5),
            event_loops: 0,
            listen_backlog: 1024,
        }
    }
}

/// Resolves [`SpawnOptions::event_loops`]: an explicit count wins, then
/// the `DPOD_EVENT_LOOPS` environment variable, then `min(4, cores/2)`
/// with a floor of 1 — shards beyond ~4 buy little while requests stay
/// CPU-bound on the workers.
fn resolve_event_loops(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("DPOD_EVENT_LOOPS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    (cores / 2).clamp(1, 4)
}

/// The front end [`SpawnOptions::front_end`]`= None` resolves to:
/// `DPOD_FRONT_END=pool|event` when set (any other value is ignored),
/// otherwise the event loop.
fn default_front_end() -> FrontEnd {
    match std::env::var("DPOD_FRONT_END").as_deref() {
        Ok("pool") => FrontEnd::Pool,
        _ => FrontEnd::Event,
    }
}

/// Pool-mode bookkeeping shared with the [`ServerHandle`] so graceful
/// shutdown can reach into workers' blocking reads: each served
/// connection registers a second handle to its socket, and
/// [`ServerHandle::drain`] shuts the read sides down — the worker
/// finishes its in-flight request, flushes, observes EOF, and exits.
#[derive(Debug, Default)]
struct PoolState {
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
    /// Connections the acceptor handed into the worker channel that no
    /// worker has registered yet. [`ServerHandle::drain`] must treat
    /// these as live, or a momentarily-empty registry would let drain
    /// return while a queued connection is about to be served.
    handed: AtomicU64,
}

impl PoolState {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut map = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(id, clone);
        Some(id)
    }

    fn unregister(&self, id: Option<u64>) {
        if let Some(id) = id {
            let mut map = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            map.remove(&id);
        }
    }
}

/// Handle to a running TCP front end; dropping it does **not** stop the
/// server — call [`ServerHandle::stop`] or [`ServerHandle::drain`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    front_end: FrontEnd,
    /// Event-loop shards actually spawned (1 in pool mode).
    loops: usize,
    /// The `listen(2)` backlog requested for every listener.
    backlog: i32,
    /// Event mode: one join handle per loop shard. Pool mode: the
    /// acceptor.
    joins: Vec<std::thread::JoinHandle<()>>,
    /// Event mode: one waker per loop shard (shutdown must reach every
    /// shard's `epoll_wait`). Pool mode: empty.
    wakers: Vec<Arc<polling::Waker>>,
    drain_ms: Arc<AtomicU64>,
    pool: Option<Arc<PoolState>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which serving core this handle drives (after fallback, so it may
    /// differ from the requested [`SpawnOptions::front_end`] on targets
    /// without epoll).
    pub fn front_end(&self) -> FrontEnd {
        self.front_end
    }

    /// Event-loop shards actually spawned (after fallback and
    /// environment resolution; `1` on the pool front end).
    pub fn event_loops(&self) -> usize {
        self.loops
    }

    /// The `listen(2)` backlog requested for every listener (the kernel
    /// clamps to `net.core.somaxconn`).
    pub fn listen_backlog(&self) -> i32 {
        self.backlog
    }

    /// Stops the server. On the event front end this is a graceful
    /// drain bounded by [`SpawnOptions::drain_deadline`]: accepting
    /// stops, every request already received is answered and flushed,
    /// then the loop exits. On the pool front end it keeps the legacy
    /// semantics — accepting stops and joins, but connections already
    /// handed to workers are served until the peer closes or idles out.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        for handle in self.joins.drain(..) {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown on both front ends: stops accepting, drains
    /// in-flight responses, and returns once everything quiesced or
    /// `deadline` passed (stragglers are dropped). `dpod serve` calls
    /// this on SIGINT.
    pub fn drain(mut self, deadline: Duration) {
        self.drain_ms
            .store(deadline.as_millis() as u64, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        for handle in self.joins.drain(..) {
            // Event mode: every shard drains toward the same global
            // deadline (the first to observe shutdown anchors it), so
            // joining them in sequence still returns by ~deadline, not
            // shards × deadline. Pool mode: this is just the acceptor.
            let _ = handle.join();
        }
        let Some(pool) = &self.pool else { return };
        let by = Instant::now() + deadline;
        loop {
            {
                let map = pool.conns.lock().unwrap_or_else(|e| e.into_inner());
                // A connection can sit in the accept channel (counted in
                // `handed`) before any worker registers it; only when
                // both are empty is nothing in flight.
                if map.is_empty() && pool.handed.load(Ordering::SeqCst) == 0 {
                    return;
                }
                // Repeatedly: connections queued in the accept channel
                // surface in the registry only when a worker picks them
                // up, and shutting a read side twice is harmless.
                for stream in map.values() {
                    let _ = stream.shutdown(std::net::Shutdown::Read);
                }
                if Instant::now() >= by {
                    for stream in map.values() {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                    }
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Spawns the serve-side retention timer for unattended feeds (`dpod
/// serve --retain-ttl` plumbs here): every `period`, each series in the
/// catalog is trimmed to its `retain` newest epochs through
/// [`Server::apply_retention`], retiring caches and refunding ε exactly
/// as a manual sweep would.
///
/// The thread holds only a [`Weak`](std::sync::Weak) reference, so it
/// never keeps a
/// server alive: once every strong reference drops (tests, short-lived
/// embedders), the next tick exits the loop. There is no explicit stop
/// handle — the timer is daemon-like by design.
pub fn spawn_retention_timer(
    server: &Arc<Server>,
    period: Duration,
    retain: usize,
) -> std::thread::JoinHandle<()> {
    let weak = Arc::downgrade(server);
    std::thread::spawn(move || loop {
        std::thread::sleep(period);
        let Some(server) = weak.upgrade() else {
            return;
        };
        for (series, epochs) in series::series_names(server.catalog()) {
            if epochs <= retain {
                continue;
            }
            // `retain` is validated non-zero by the CLI; a sweep error
            // on one series must not starve the others.
            let _ = server.apply_retention(&series, retain);
        }
    })
}

/// Binds `addr` and serves `server` on `workers` pool threads with the
/// default [`WireMode::Auto`] encoding sniff and default front end.
///
/// # Errors
/// IO errors from binding the listener or creating the event loop.
pub fn spawn(
    server: Arc<Server>,
    addr: impl ToSocketAddrs,
    workers: usize,
) -> std::io::Result<ServerHandle> {
    spawn_with(
        server,
        addr,
        SpawnOptions {
            workers,
            ..SpawnOptions::default()
        },
    )
}

/// Binds `addr` and serves `server` on `workers` pool threads, accepting
/// the encodings `mode` allows, on the default front end.
///
/// # Errors
/// IO errors from binding the listener or creating the event loop.
pub fn spawn_wire(
    server: Arc<Server>,
    addr: impl ToSocketAddrs,
    workers: usize,
    mode: WireMode,
) -> std::io::Result<ServerHandle> {
    spawn_with(
        server,
        addr,
        SpawnOptions {
            workers,
            wire: mode,
            ..SpawnOptions::default()
        },
    )
}

/// Binds `addr` and serves `server` with full control over front end,
/// encodings, and timeouts. Requesting [`FrontEnd::Event`] on a target
/// without epoll support falls back to the thread pool (check
/// [`ServerHandle::front_end`] for the outcome).
///
/// # Errors
/// IO errors from binding the listener or wiring the event loop.
pub fn spawn_with(
    server: Arc<Server>,
    addr: impl ToSocketAddrs,
    opts: SpawnOptions,
) -> std::io::Result<ServerHandle> {
    let requested = opts.front_end.unwrap_or_else(default_front_end);
    // Probe epoll support up front so the fallback can reuse the bound
    // listener (off Linux the polling shim reports `Unsupported`).
    let front_end = match requested {
        FrontEnd::Event if polling::Poller::new().is_ok() => FrontEnd::Event,
        _ => FrontEnd::Pool,
    };
    let loops = match front_end {
        FrontEnd::Event => resolve_event_loops(opts.event_loops),
        FrontEnd::Pool => 1,
    };
    let backlog = opts.listen_backlog.max(1);
    // With several shards the primary listener itself must carry
    // SO_REUSEPORT (set before bind) or the sibling shard listeners
    // cannot share its address; when that bind fails — no SO_REUSEPORT
    // on this platform — the event front end stripes accepts from the
    // one plain listener instead.
    let listener = if loops > 1 {
        match first_addr(&addr).and_then(|a| polling::net::bind_reuseport(a, backlog)) {
            Ok(l) => l,
            Err(_) => bind_with_backlog(&addr, backlog)?,
        }
    } else {
        bind_with_backlog(&addr, backlog)?
    };
    let local = listener.local_addr()?;
    match front_end {
        FrontEnd::Event => spawn_event_front_end(server, listener, &opts, local, loops, backlog),
        FrontEnd::Pool => Ok(spawn_pool_front_end(server, listener, &opts, local)),
    }
}

/// Resolves `addr` to its first candidate, the one
/// [`polling::net::bind_reuseport`] (a raw `socket`/`bind` sequence,
/// not an iterator over candidates) binds.
fn first_addr(addr: &impl ToSocketAddrs) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to no candidates",
        )
    })
}

/// Plain `std` bind plus a production-sized `listen(2)` queue.
/// `TcpListener::bind` hardcodes an accept backlog of 128, which a
/// fleet of analysts reconnecting at once (or a load generator starting
/// up) overflows into multi-second SYN-retransmit stalls; re-apply
/// `listen(2)` with the configured queue (the kernel clamps to
/// `net.core.somaxconn`). A failed resize is surfaced as a startup
/// warning — except `Unsupported`, the shim's documented answer off
/// Linux, where 128 simply stands.
fn bind_with_backlog(addr: &impl ToSocketAddrs, backlog: i32) -> std::io::Result<TcpListener> {
    let listener = TcpListener::bind(addr)?;
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        if let Err(e) = polling::net::set_listen_backlog(listener.as_raw_fd(), backlog) {
            if e.kind() != std::io::ErrorKind::Unsupported {
                eprintln!(
                    "dpod-serve: warning: failed to resize listen backlog to {backlog}: {e} \
                     (the kernel default stands)"
                );
            }
        }
    }
    Ok(listener)
}

#[cfg(unix)]
fn spawn_event_front_end(
    server: Arc<Server>,
    listener: TcpListener,
    opts: &SpawnOptions,
    local: SocketAddr,
    loops: usize,
    backlog: i32,
) -> std::io::Result<ServerHandle> {
    server.metrics().note_front_end("event");
    let shutdown = Arc::new(AtomicBool::new(false));
    let drain_ms = Arc::new(AtomicU64::new(opts.drain_deadline.as_millis() as u64));
    // One listener per shard when the kernel can spread accepts
    // (SO_REUSEPORT); otherwise the single listener is striped by
    // shard 0. All-or-nothing: with only a partial sibling set the
    // kernel would spread accepts over fewer queues than shards and
    // leave the rest idle.
    let mut listeners = vec![listener];
    if loops > 1 {
        let mut siblings = Vec::with_capacity(loops - 1);
        for _ in 1..loops {
            match polling::net::bind_reuseport(local, backlog) {
                Ok(l) => siblings.push(l),
                Err(_) => {
                    siblings.clear();
                    break;
                }
            }
        }
        listeners.extend(siblings);
    }
    let cfg = crate::event::EventConfig {
        workers: opts.workers.max(1),
        loops,
        mode: opts.wire,
        idle_timeout: opts.idle_timeout,
    };
    let (joins, wakers) = crate::event::spawn(
        server,
        listeners,
        cfg,
        Arc::clone(&shutdown),
        Arc::clone(&drain_ms),
    )?;
    Ok(ServerHandle {
        addr: local,
        shutdown,
        front_end: FrontEnd::Event,
        loops,
        backlog,
        joins,
        wakers,
        drain_ms,
        pool: None,
    })
}

#[cfg(not(unix))]
fn spawn_event_front_end(
    _server: Arc<Server>,
    _listener: TcpListener,
    _opts: &SpawnOptions,
    _local: SocketAddr,
    _loops: usize,
    _backlog: i32,
) -> std::io::Result<ServerHandle> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "the event front end requires epoll",
    ))
}

/// The legacy thread-per-connection front end (see the module docs).
fn spawn_pool_front_end(
    server: Arc<Server>,
    listener: TcpListener,
    opts: &SpawnOptions,
    local: SocketAddr,
) -> ServerHandle {
    server.metrics().note_front_end("pool");
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = opts.workers.max(1);
    let mode = opts.wire;
    let idle_timeout = opts.idle_timeout;
    let pool_state = Arc::new(PoolState::default());

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let server = Arc::clone(&server);
        let pool_state = Arc::clone(&pool_state);
        std::thread::spawn(move || loop {
            let stream = {
                let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                guard.recv()
            };
            match stream {
                Ok(s) => {
                    server.connection_opened();
                    let id = pool_state.register(&s);
                    // Registered (or at least counted): the channel's
                    // hand-off is no longer in flight.
                    pool_state.handed.fetch_sub(1, Ordering::SeqCst);
                    // Per-connection failures are that connection's
                    // problem; the worker lives on.
                    let _ = handle_connection(&server, s, mode, idle_timeout);
                    pool_state.unregister(id);
                    server.connection_closed();
                }
                Err(_) => return, // channel closed: server stopped
            }
        });
    }

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_pool_state = Arc::clone(&pool_state);
    let acceptor = std::thread::spawn(move || {
        listener
            .set_nonblocking(true)
            .expect("listener supports non-blocking");
        loop {
            if accept_shutdown.load(Ordering::SeqCst) {
                return; // dropping `tx` drains and stops the workers
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false).ok();
                    // Request/response traffic is latency-bound; Nagle
                    // interacting with delayed ACKs can stall a large
                    // pipelined frame for tens of milliseconds.
                    stream.set_nodelay(true).ok();
                    accept_pool_state.handed.fetch_add(1, Ordering::SeqCst);
                    if tx.send(stream).is_err() {
                        // No worker will ever pick this one up.
                        accept_pool_state.handed.fetch_sub(1, Ordering::SeqCst);
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    });

    ServerHandle {
        addr: local,
        shutdown,
        front_end: FrontEnd::Pool,
        loops: 1,
        backlog: opts.listen_backlog.max(1),
        joins: vec![acceptor],
        wakers: Vec::new(),
        drain_ms: Arc::new(AtomicU64::new(opts.drain_deadline.as_millis() as u64)),
        pool: Some(pool_state),
    }
}

/// Serves one connection in whichever encoding its first bytes select
/// (subject to `mode`), until the peer closes or stays silent past
/// `idle_timeout` (default [`IDLE_TIMEOUT`]).
///
/// The encoding sniff never consumes bytes from a JSON client: it peeks
/// at the reader's buffered data and only commits (reads the 5-byte
/// preamble) when the available prefix matches the `DPRB` magic — which
/// no JSON document can produce, `{`/`"`-initial as they are. The JSON
/// byte stream is therefore exactly what it was before the binary
/// protocol existed.
fn handle_connection(
    server: &Server,
    stream: TcpStream,
    mode: WireMode,
    idle_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(idle_timeout))?;
    stream.set_write_timeout(Some(idle_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Peek at whatever the first read delivers; a prefix match against
    // the magic means a binary client (its preamble may still straddle
    // packets, so match on what is available rather than demanding all
    // four bytes up front).
    let first = reader.fill_buf()?;
    if first.is_empty() {
        return Ok(()); // EOF before any request
    }
    let n = first.len().min(wire::WIRE_MAGIC.len());
    let looks_binary = first[..n] == wire::WIRE_MAGIC[..n];

    match (looks_binary, mode) {
        (true, WireMode::Json) => {
            // Consume the preamble so the refusal frame is this
            // connection's only traffic, then say why in-protocol.
            let mut preamble = [0u8; 5];
            let _ = reader.read_exact(&mut preamble);
            refuse_binary(&mut writer, "this endpoint serves JSON only (--wire json)")
        }
        (true, _) => serve_binary(server, reader, writer),
        (false, WireMode::Binary) => refuse_binary(
            &mut writer,
            "this endpoint serves DPRB only (--wire binary)",
        ),
        (false, _) => serve_ndjson(server, reader, writer),
    }
}

/// Sends one binary error frame and closes.
fn refuse_binary(writer: &mut impl Write, message: &str) -> std::io::Result<()> {
    let body = wire::encode_response(&Response::Error {
        message: message.to_string(),
    });
    let _ = wire::write_frame(writer, &body);
    writer.flush()
}

/// The `DPRB` side of [`handle_connection`]: validates the preamble,
/// then answers one response frame per request frame, in order.
///
/// Error handling is split by whether the stream is still in sync: a
/// frame that arrives intact but fails to decode (bad inner magic,
/// unknown opcode, truncated payload, trailing bytes) gets a
/// [`Response::Error`] frame and the connection lives on; a transport-
/// level violation (length prefix beyond [`wire::MAX_FRAME_BYTES`],
/// mid-frame EOF) cannot be resynced, so the worker sends a final error
/// frame and closes.
fn serve_binary(
    server: &Server,
    mut reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
) -> std::io::Result<()> {
    let mut preamble = [0u8; 5];
    reader.read_exact(&mut preamble)?;
    if &preamble[..4] != wire::WIRE_MAGIC {
        return refuse_binary(&mut writer, "bad preamble magic");
    }
    // The version byte carries optional feature bits above the base
    // version; masking them off first keeps genuinely unknown versions
    // refused while letting an opted-in client negotiate packed frames.
    if preamble[4] & !wire::WIRE_FEATURE_PACKED != wire::WIRE_VERSION {
        return refuse_binary(
            &mut writer,
            &format!(
                "unsupported DPRB version {}, expected {}",
                preamble[4],
                wire::WIRE_VERSION
            ),
        );
    }
    let enc = if preamble[4] & wire::WIRE_FEATURE_PACKED != 0 {
        ResponseEncoding::BinaryPacked
    } else {
        ResponseEncoding::Binary
    };
    loop {
        match wire::read_frame(&mut reader) {
            Ok(None) => return Ok(()), // clean EOF
            Ok(Some(body)) => {
                // Stage timing on the pool path covers execute and
                // encode (parse/queue/write have no separable moments
                // in a blocking read-answer-write loop). Execution and
                // serialization are fused in `handle_encoded` (that is
                // what lets a warm memo hit skip both), so the execute
                // lap covers them and the encode lap is the memcpy.
                let metrics = server.metrics();
                let mut span = Span::start();
                let encoded = match wire::decode_request(&body) {
                    Ok(request) => {
                        metrics.count_request(Transport::Binary, &request);
                        server.handle_encoded(&request, enc)
                    }
                    Err(e) => {
                        metrics.count_request_index(
                            Transport::Binary,
                            crate::metrics::KIND_UNDECODABLE,
                        );
                        Arc::new(enc.encode(&Response::Error {
                            message: format!("bad request: {e}"),
                        }))
                    }
                };
                span.lap(metrics.stage(Transport::Binary, Stage::Execute));
                writer.write_all(&encoded)?;
                span.finish(metrics.stage(Transport::Binary, Stage::Encode));
                // As on the JSON path: flush only once no further
                // request is already buffered, so pipelined batches are
                // answered in large writes.
                if reader.buffer().is_empty() {
                    writer.flush()?;
                }
            }
            // An idle peer is reclaimed silently (as on the JSON path);
            // only genuine protocol violations earn an error frame.
            Err(e) if e.is_idle_timeout() => return Ok(()),
            Err(e) => return refuse_binary(&mut writer, &format!("protocol error: {e}")),
        }
    }
}

/// The newline-delimited JSON side of [`handle_connection`].
///
/// The write side also carries [`IDLE_TIMEOUT`]: a pipelining client
/// that stops draining responses would otherwise block the worker in
/// `flush` forever once the socket buffers fill (the client itself still
/// writing — a mutual deadlock). With the timeout the worker errors out
/// and the connection closes instead. Responses are flushed only when no
/// further request is already buffered, so a pipelined batch is answered
/// in large writes rather than one syscall per line.
fn serve_ndjson(
    server: &Server,
    mut reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
) -> std::io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        // Bound the line so a client cannot grow the buffer without limit.
        let n = std::io::Read::take(std::io::Read::by_ref(&mut reader), MAX_LINE_BYTES)
            .read_line(&mut line)?;
        if n == 0 {
            return Ok(()); // EOF
        }
        if n as u64 == MAX_LINE_BYTES && !line.ends_with('\n') {
            let msg = format!(
                "{{\"Error\":{{\"message\":\"request line exceeds {MAX_LINE_BYTES} bytes\"}}}}\n"
            );
            writer.write_all(msg.as_bytes())?;
            writer.flush()?;
            return Ok(()); // disconnect the abusive client
        }
        if line.trim().is_empty() {
            continue;
        }
        let metrics = server.metrics();
        let mut span = Span::start();
        // Execution and serialization are fused in `handle_encoded`
        // (that fusion is what lets a warm encoded-memo hit skip both);
        // the execute lap covers them, the encode lap is the memcpy.
        let encoded = match serde_json::from_str::<Request>(line.trim_end()) {
            Ok(request) => {
                metrics.count_request(Transport::Json, &request);
                server.handle_encoded(&request, ResponseEncoding::Json)
            }
            Err(e) => {
                metrics.count_request_index(Transport::Json, crate::metrics::KIND_UNDECODABLE);
                Arc::new(ResponseEncoding::Json.encode(&Response::Error {
                    message: format!("bad request: {e}"),
                }))
            }
        };
        span.lap(metrics.stage(Transport::Json, Stage::Execute));
        writer.write_all(&encoded)?;
        span.finish(metrics.stage(Transport::Json, Stage::Encode));
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
    use dpod_dp::Epsilon;
    use dpod_fmatrix::{DenseMatrix, Shape};

    fn test_server(names: &[&str]) -> Arc<Server> {
        let catalog = Arc::new(Catalog::new());
        for (i, name) in names.iter().enumerate() {
            let s = Shape::new(vec![8, 8]).unwrap();
            let mut m = DenseMatrix::<u64>::zeros(s);
            m.add_at(&[2, 2], 500).unwrap();
            let out = Ebp::default()
                .sanitize(
                    &m,
                    Epsilon::new(0.5).unwrap(),
                    &mut dpod_dp::seeded_rng(i as u64),
                )
                .unwrap();
            catalog.publish(name, PublishedRelease::from_sanitized(&out));
        }
        Arc::new(Server::new(catalog, 1 << 20))
    }

    #[test]
    fn handle_answers_queries_and_batches() {
        let server = test_server(&["city"]);
        let q = Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![8, 8],
        };
        let Response::Value { value } = server.handle(&q) else {
            panic!("expected value");
        };
        assert!(value.is_finite());

        let b = Request::Batch {
            release: "city".into(),
            ranges: vec![(vec![0, 0], vec![4, 4]), (vec![0, 0], vec![8, 8])],
        };
        let Response::Values { values } = server.handle(&b) else {
            panic!("expected values");
        };
        assert_eq!(values.len(), 2);
        assert_eq!(values[1], value);
        assert_eq!(server.queries_answered(), 3);
    }

    #[test]
    fn handle_reports_errors_not_panics() {
        let server = test_server(&["city"]);
        for bad in [
            Request::Query {
                release: "nope".into(),
                lo: vec![0, 0],
                hi: vec![4, 4],
            },
            Request::Query {
                release: "city".into(),
                lo: vec![0],
                hi: vec![4],
            },
            Request::Query {
                release: "city".into(),
                lo: vec![0, 0],
                hi: vec![9, 9],
            },
            Request::Query {
                release: "city".into(),
                lo: vec![5, 5],
                hi: vec![2, 2],
            },
        ] {
            let Response::Error { message } = server.handle(&bad) else {
                panic!("expected error for {bad:?}");
            };
            assert!(!message.is_empty());
        }
    }

    #[test]
    fn list_and_stats_reflect_catalog() {
        let server = test_server(&["a", "b"]);
        let Response::Releases { releases } = server.handle(&Request::List) else {
            panic!("expected releases");
        };
        assert_eq!(releases.len(), 2);
        assert_eq!(releases[0].name, "a");
        assert_eq!(releases[0].domain, vec![8, 8]);

        server.handle(&Request::Query {
            release: "a".into(),
            lo: vec![0, 0],
            hi: vec![1, 1],
        });
        let Response::Stats { stats } = server.handle(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(stats.releases, 2);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.release_hits.len(), 1);
        assert_eq!(stats.release_hits[0].name, "a");
        assert_eq!(stats.release_hits[0].hits, 1);
    }

    #[test]
    fn plan_requests_share_the_handle_path() {
        use dpod_query::{plan, Answer, QueryPlan};
        let server = test_server(&["city"]);
        let matrix = server.resolve("city").unwrap();

        // A Many plan answers every variant in order, bit-identically to
        // the in-process executor.
        let plan = QueryPlan::Many {
            plans: vec![
                QueryPlan::Range {
                    lo: vec![0, 0],
                    hi: vec![4, 4],
                },
                QueryPlan::Total,
                QueryPlan::TopK { k: 3 },
                QueryPlan::Marginal { keep: vec![1] },
            ],
        };
        let Response::Answer { answer } = server.handle(&Request::Plan {
            release: "city".into(),
            plan: plan.clone(),
        }) else {
            panic!("expected answer");
        };
        assert_eq!(answer, plan::execute(&matrix, &plan).unwrap());
        // Four leaves → four answered queries, on both counters.
        assert_eq!(server.queries_answered(), 4);
        assert_eq!(server.release_hits()[0].hits, 4);

        // Failures are descriptive errors and count nothing.
        for (release, plan) in [
            ("nope".to_string(), QueryPlan::Total),
            ("city".to_string(), QueryPlan::Marginal { keep: vec![9] }),
            ("city".to_string(), QueryPlan::od()), // 2-D release: no OD legs
            (
                "city".to_string(),
                QueryPlan::Many {
                    plans: vec![QueryPlan::Many { plans: vec![] }],
                },
            ),
        ] {
            let Response::Error { message } = server.handle(&Request::Plan { release, plan })
            else {
                panic!("expected error");
            };
            assert!(!message.is_empty());
        }
        assert_eq!(server.queries_answered(), 4);

        // A lone TopK answer carries the release's domain.
        let Response::Answer { answer } = server.handle(&Request::Plan {
            release: "city".into(),
            plan: QueryPlan::TopK { k: 1 },
        }) else {
            panic!("expected answer");
        };
        let Answer::TopK { dims, cells } = answer else {
            panic!("expected top-k");
        };
        assert_eq!(dims, vec![8, 8]);
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn plan_requests_build_and_reuse_the_release_index() {
        use dpod_query::QueryPlan;
        let server = test_server(&["city"]);
        let req = Request::Plan {
            release: "city".into(),
            plan: QueryPlan::Marginal { keep: vec![0] },
        };
        assert!(matches!(server.handle(&req), Response::Answer { .. }));
        let stats = server.engine_stats();
        assert_eq!(stats.index_entries, 1);
        assert_eq!((stats.index_hits, stats.index_misses), (0, 1));
        assert!(matches!(server.handle(&req), Response::Answer { .. }));
        let stats = server.engine_stats();
        assert_eq!((stats.index_hits, stats.index_misses), (1, 1));
        assert!(stats.index_build_nanos > 0, "marginal build must be timed");

        // The Stats response surfaces the index counters and both
        // hit-rates.
        let Response::Stats { stats } = server.handle(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(stats.index_entries, 1);
        assert_eq!((stats.index_hits, stats.index_misses), (1, 1));
        assert!(stats.index_build_nanos > 0);
        assert!((stats.index_hit_rate - 0.5).abs() < 1e-12);
        assert!(stats.cache_hit_rate >= 0.0 && stats.cache_hit_rate <= 1.0);

        // Legacy Query/Batch traffic never touches the index slot.
        server.handle(&Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![4, 4],
        });
        assert_eq!(server.engine_stats().index_misses, 1);
    }

    #[test]
    fn cold_and_indexed_plan_paths_answer_identically() {
        use dpod_query::QueryPlan;
        let server = test_server(&["city"]);
        let plan = QueryPlan::Many {
            plans: vec![
                QueryPlan::Total,
                QueryPlan::TopK { k: 5 },
                QueryPlan::Marginal { keep: vec![0, 1] },
                QueryPlan::Range {
                    lo: vec![1, 1],
                    hi: vec![7, 7],
                },
            ],
        };
        let req = Request::Plan {
            release: "city".into(),
            plan,
        };
        let indexed = serde_json::to_string(&server.handle(&req)).unwrap();
        assert!(server.indexed_plans());
        server.set_indexed_plans(false);
        let cold = serde_json::to_string(&server.handle(&req)).unwrap();
        assert!(!server.indexed_plans());
        server.set_indexed_plans(true);
        let warm = serde_json::to_string(&server.handle(&req)).unwrap();
        assert_eq!(indexed, cold, "kill-switch must not change answers");
        assert_eq!(indexed, warm);
    }

    /// DrillDown plans route through the engine-cached index's pyramid
    /// memo: answers are bit-identical to executing the inner plan over
    /// a hand-coarsened leaf, the kill-switch cold path agrees, and the
    /// stats frame reports the memo's hit/miss traffic.
    #[test]
    fn drill_down_plans_route_through_the_pyramid_memo() {
        use dpod_query::plan;
        let server = test_server(&["city"]);
        let req = Request::Plan {
            release: "city".into(),
            plan: QueryPlan::DrillDown {
                level: 2,
                plan: Box::new(QueryPlan::Marginal { keep: vec![0, 1] }),
            },
        };
        let indexed = serde_json::to_string(&server.handle(&req)).unwrap();
        let warm = serde_json::to_string(&server.handle(&req)).unwrap();
        server.set_indexed_plans(false);
        let cold = serde_json::to_string(&server.handle(&req)).unwrap();
        server.set_indexed_plans(true);
        assert_eq!(indexed, warm);
        assert_eq!(indexed, cold, "kill-switch must not change answers");
        // Reference: coarsen the rebuilt leaf by hand, execute the
        // inner plan against it, and compare serialized responses.
        let leaf = server.resolve("city").unwrap();
        let coarse = dpod_core::SanitizedMatrix::from_entries(
            "coarse",
            0.5,
            dpod_fmatrix::coarsen_to_level(leaf.matrix(), 2).unwrap(),
        );
        let answer = plan::execute(&coarse, &QueryPlan::Marginal { keep: vec![0, 1] }).unwrap();
        let reference = serde_json::to_string(&Response::Answer { answer }).unwrap();
        assert_eq!(indexed, reference);
        // One miss (level built), one warm hit; the cold execution ran
        // through the scan backend and touched no counters.
        let Response::Stats { stats } = server.handle(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!((stats.pyramid_hits, stats.pyramid_misses), (1, 1));
        assert_eq!(stats.pyramid_entries, 1);
        assert!(stats.pyramid_bytes > 0);
        assert_eq!(server.pyramid_level_hits(), vec![(2, 1)]);
    }

    #[test]
    fn window_plans_reject_drill_down_inner_plans() {
        let server = test_server(&["city"]);
        let req = Request::Plan {
            release: "city".into(),
            plan: QueryPlan::Window {
                select: EpochSelector::LastK { k: 1 },
                merge: WindowMerge::Sum,
                plan: Box::new(QueryPlan::DrillDown {
                    level: 1,
                    plan: Box::new(QueryPlan::Total),
                }),
            },
        };
        let Response::Error { message } = server.handle(&req) else {
            panic!("expected error");
        };
        assert_eq!(
            message,
            "DrillDown plans select a pyramid level at the top level \
             and cannot ride inside Window"
        );
    }

    #[test]
    fn remove_release_prunes_hit_counters() {
        let server = test_server(&["hot", "cold"]);
        for release in ["hot", "cold"] {
            server.handle(&Request::Query {
                release: release.into(),
                lo: vec![0, 0],
                hi: vec![2, 2],
            });
            // Aggregate traffic builds each release's plan index too.
            server.handle(&Request::Plan {
                release: release.into(),
                plan: dpod_query::QueryPlan::TopK { k: 1 },
            });
        }
        assert_eq!(server.release_hits().len(), 2);

        // Removing through the server drops the counter with the release.
        assert_eq!(server.engine_stats().entries, 2);
        assert_eq!(server.engine_stats().index_entries, 2);
        assert!(server.remove_release("hot"));
        assert!(!server.remove_release("hot"), "second remove is a no-op");
        let hits = server.release_hits();
        assert_eq!(hits.len(), 1, "removed release must not leak a counter");
        assert_eq!(hits[0].name, "cold");
        assert_eq!(server.catalog().len(), 1);
        // …and its rebuilt matrix must leave the cache with it.
        assert_eq!(
            server.engine_stats().entries,
            1,
            "removed release must not strand its rebuild in the cache"
        );
        assert_eq!(
            server.engine_stats().index_entries,
            1,
            "removed release must not strand its plan index either"
        );

        // A republish under the same name starts a fresh count.
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[1, 1], 250).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(77))
            .unwrap();
        server
            .catalog()
            .publish("hot", PublishedRelease::from_sanitized(&out));
        server.handle(&Request::Query {
            release: "hot".into(),
            lo: vec![0, 0],
            hi: vec![2, 2],
        });
        let hits = server.release_hits();
        let as_pairs: Vec<(&str, u64)> = hits.iter().map(|h| (h.name.as_str(), h.hits)).collect();
        assert_eq!(as_pairs, vec![("cold", 2), ("hot", 1)]);
    }

    #[test]
    fn release_hits_track_per_release_traffic() {
        let server = test_server(&["hot", "cold"]);
        for _ in 0..5 {
            server.handle(&Request::Query {
                release: "hot".into(),
                lo: vec![0, 0],
                hi: vec![2, 2],
            });
        }
        server.handle(&Request::Batch {
            release: "cold".into(),
            ranges: vec![(vec![0, 0], vec![1, 1]), (vec![0, 0], vec![3, 3])],
        });
        // Failures do not count.
        server.handle(&Request::Query {
            release: "hot".into(),
            lo: vec![9, 9],
            hi: vec![1, 1],
        });
        server.handle(&Request::Query {
            release: "missing".into(),
            lo: vec![0, 0],
            hi: vec![1, 1],
        });
        let hits = server.release_hits();
        let as_pairs: Vec<(&str, u64)> = hits.iter().map(|h| (h.name.as_str(), h.hits)).collect();
        assert_eq!(as_pairs, vec![("cold", 2), ("hot", 5)]);
    }

    /// Publishes one sanitized release under `names` on the server's
    /// catalog (cloning the release is much cheaper than re-sanitizing
    /// per name, and the hit-counter map only cares about names).
    fn publish_clones(server: &Server, names: impl Iterator<Item = String>) {
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[3, 3], 300).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(9))
            .unwrap();
        let release = PublishedRelease::from_sanitized(&out);
        for name in names {
            server.catalog().publish(&name, release.clone());
        }
    }

    fn query_for(name: &str) -> Request {
        Request::Query {
            release: name.into(),
            lo: vec![0, 0],
            hi: vec![2, 2],
        }
    }

    #[test]
    fn release_hit_map_stays_bounded_under_catalog_churn() {
        let server = test_server(&[]);
        let n = MAX_RELEASE_HIT_ENTRIES + 8;
        publish_clones(&server, (0..n).map(|i| format!("r{i:05}")));
        // One hot release that must survive every coldest-row eviction.
        for _ in 0..10 {
            server.handle(&query_for("r00000"));
        }
        for i in 1..n {
            server.handle(&query_for(&format!("r{i:05}")));
        }
        let hits = server.release_hits();
        assert!(
            hits.len() <= MAX_RELEASE_HIT_ENTRIES,
            "map grew past the cap: {}",
            hits.len()
        );
        assert!(
            hits.iter().any(|h| h.name == "r00000" && h.hits == 10),
            "the hottest row must not be the one evicted"
        );
        let evicted = server.metrics().evicted_stat_entries.get();
        assert!(evicted >= 8, "expected ≥8 evictions, saw {evicted}");
        // The stats frame carries the same counter.
        let Response::Stats { stats } = server.handle(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(
            stats.evicted_stat_entries,
            server.metrics().evicted_stat_entries.get()
        );
        assert!(stats.release_hits.len() <= MAX_RELEASE_HIT_ENTRIES);
    }

    #[test]
    fn stale_hit_rows_are_retired_before_live_ones_are_evicted() {
        let server = test_server(&[]);
        publish_clones(
            &server,
            (0..MAX_RELEASE_HIT_ENTRIES).map(|i| format!("r{i:05}")),
        );
        for i in 0..MAX_RELEASE_HIT_ENTRIES {
            server.handle(&query_for(&format!("r{i:05}")));
        }
        assert_eq!(server.release_hits().len(), MAX_RELEASE_HIT_ENTRIES);

        // Remove releases *behind the server's back* (straight through
        // the catalog, bypassing `remove_release`'s eager prune), so
        // their rows go stale.
        for i in 0..4 {
            assert!(server.catalog().remove(&format!("r{i:05}")));
        }
        assert_eq!(server.release_hits().len(), MAX_RELEASE_HIT_ENTRIES);

        // The next first-touch insert retires the stale rows instead of
        // evicting live ones.
        publish_clones(&server, std::iter::once("fresh".to_string()));
        server.handle(&query_for("fresh"));
        let hits = server.release_hits();
        assert!(hits.iter().any(|h| h.name == "fresh"));
        assert!(
            !hits
                .iter()
                .any(|h| h.name.as_str() < "r00004" && h.name != "fresh"),
            "stale rows must be the ones retired"
        );
        assert!(
            hits.iter().any(|h| h.name == "r00004"),
            "live rows survive when stale ones cover the deficit"
        );
        assert_eq!(server.metrics().evicted_stat_entries.get(), 4);
    }

    #[test]
    fn binary_clients_get_identical_answers() {
        let server = test_server(&["city"]);
        let handle = spawn(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr();

        // Reference answers via the in-process path.
        let ranges: Vec<(Vec<usize>, Vec<usize>)> =
            (1..=8).map(|hi| (vec![0, 0], vec![hi, hi])).collect();
        let Response::Values { values: expected } = server.handle(&Request::Batch {
            release: "city".into(),
            ranges: ranges.clone(),
        }) else {
            panic!("reference batch failed");
        };

        let mut client = crate::wire::Client::connect(addr).unwrap();
        let got = client.batch("city", ranges).unwrap();
        assert_eq!(got, expected, "binary answers must be bit-identical");

        // Single queries, pipelined, still in order.
        for hi in 1..=4 {
            client
                .send(&Request::Query {
                    release: "city".into(),
                    lo: vec![0, 0],
                    hi: vec![hi, hi],
                })
                .unwrap();
        }
        for hi in 1..=4usize {
            let Response::Value { value } = client.receive().unwrap() else {
                panic!("expected value");
            };
            assert_eq!(value, expected[hi - 1]);
        }

        // Stats and List also cross the wire.
        let Response::Stats { stats } = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.release_hits[0].name, "city");
        let Response::Releases { releases } = client.request(&Request::List).unwrap() else {
            panic!("expected releases");
        };
        assert_eq!(releases[0].name, "city");
        handle.stop();
    }

    #[test]
    fn json_and_binary_clients_share_one_endpoint() {
        let server = test_server(&["city"]);
        let handle = spawn(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr();
        let req = Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![4, 4],
        };

        let mut binary = crate::wire::Client::connect(addr).unwrap();
        let Response::Value { value: bin_value } = binary.request(&req).unwrap() else {
            panic!("binary query failed");
        };

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer
            .write_all(serde_json::to_string(&req).unwrap().as_bytes())
            .unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let Response::Value { value: json_value } = serde_json::from_str(line.trim()).unwrap()
        else {
            panic!("json query failed");
        };
        assert_eq!(bin_value, json_value);
        handle.stop();
    }

    #[test]
    fn wire_mode_restrictions_refuse_the_other_encoding() {
        // A JSON-only endpoint refuses the DPRB preamble in-protocol.
        let server = test_server(&["city"]);
        let handle = spawn_wire(Arc::clone(&server), "127.0.0.1:0", 1, WireMode::Json).unwrap();
        let mut client = crate::wire::Client::connect(handle.addr()).unwrap();
        match client.request(&Request::List) {
            Ok(Response::Error { message }) => assert!(message.contains("JSON"), "{message}"),
            other => panic!("expected refusal, got {other:?}"),
        }
        handle.stop();

        // A binary-only endpoint answers JSON lines with an error frame.
        let server = test_server(&["city"]);
        let handle = spawn_wire(Arc::clone(&server), "127.0.0.1:0", 1, WireMode::Binary).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        writer.write_all(b"\"List\"\n").unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let body = crate::wire::read_frame(&mut reader).unwrap().unwrap();
        match crate::wire::decode_response(&body) {
            Ok(Response::Error { message }) => assert!(message.contains("DPRB"), "{message}"),
            other => panic!("expected refusal frame, got {other:?}"),
        }
        // But binary clients are served normally.
        let mut client = crate::wire::Client::connect(handle.addr()).unwrap();
        assert!(matches!(
            client.request(&Request::List),
            Ok(Response::Releases { .. })
        ));
        handle.stop();
    }

    #[test]
    fn tcp_round_trip_with_concurrent_clients() {
        let server = test_server(&["city", "transit"]);
        let handle = spawn(Arc::clone(&server), "127.0.0.1:0", 4).unwrap();
        let addr = handle.addr();

        let mut joins = Vec::new();
        for t in 0..4 {
            joins.push(std::thread::spawn(move || {
                let release = if t % 2 == 0 { "city" } else { "transit" };
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                for i in 0..25usize {
                    let hi = 1 + (i % 8);
                    let req = Request::Query {
                        release: release.into(),
                        lo: vec![0, 0],
                        hi: vec![hi, hi],
                    };
                    writer
                        .write_all(serde_json::to_string(&req).unwrap().as_bytes())
                        .unwrap();
                    writer.write_all(b"\n").unwrap();
                    writer.flush().unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let resp: Response = serde_json::from_str(line.trim()).unwrap();
                    assert!(matches!(resp, Response::Value { .. }), "{resp:?}");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(server.queries_answered(), 100);
        handle.stop();
    }

    #[test]
    fn malformed_lines_get_error_responses() {
        let server = test_server(&["city"]);
        let handle = spawn(server, "127.0.0.1:0", 1).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer.write_all(b"this is not json\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(resp, Response::Error { .. }));

        // The connection survives and still answers valid requests.
        let req = Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![2, 2],
        };
        writer
            .write_all(serde_json::to_string(&req).unwrap().as_bytes())
            .unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(resp, Response::Value { .. }));
        handle.stop();
    }

    /// An 8×8 release whose noise differs per seed (each epoch of a
    /// series must carry distinct values or the merge tests prove
    /// nothing).
    fn epoch_release(seed: u64) -> PublishedRelease {
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[2, 2], 500).unwrap();
        m.add_at(&[5, 1], 120).unwrap();
        let out = Ebp::default()
            .sanitize(
                &m,
                Epsilon::new(0.5).unwrap(),
                &mut dpod_dp::seeded_rng(seed),
            )
            .unwrap();
        PublishedRelease::from_sanitized(&out)
    }

    /// A server carrying epochs 1–3 of series `city`.
    fn epoch_server() -> Arc<Server> {
        let server = Arc::new(Server::new(Arc::new(Catalog::new()), 1 << 20));
        for epoch in 1..=3u64 {
            server
                .publish_epoch("city", epoch, epoch_release(100 + epoch))
                .unwrap();
        }
        server
    }

    /// The retention timer sweeps every series down to its `retain`
    /// newest epochs, and its thread — holding only a weak reference —
    /// exits once the server is dropped.
    #[test]
    fn retention_timer_sweeps_series_and_dies_with_the_server() {
        let server = epoch_server();
        assert_eq!(server.catalog().len(), 3);
        let timer = spawn_retention_timer(&server, Duration::from_millis(10), 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.catalog().len() > 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.catalog().len(), 1, "timer should retire epochs 1-2");
        assert!(server.catalog().get("city@3").is_some());
        assert_eq!(server.epochs_retired(), 2);
        // Refunds landed: one live epoch's ε remains on the ledger.
        let active = server.ledgers().active_epsilon("city").unwrap();
        assert!((active - 0.5).abs() < 1e-12, "{active}");
        // Dropping the last strong reference ends the timer thread.
        drop(server);
        timer.join().expect("timer thread exits cleanly");
    }

    /// `handle_encoded` returns byte-identical output to the
    /// handle-then-encode path, serves warm hits from the memo (same
    /// allocation, no re-execution), and keeps encodings independent.
    #[test]
    fn handle_encoded_memoizes_plan_responses_per_encoding() {
        let server = test_server(&["city"]);
        let request = Request::Plan {
            release: "city".into(),
            plan: QueryPlan::Marginal { keep: vec![0] },
        };

        // Cold call matches encoding the plain handle() response.
        let cold = server.handle_encoded(&request, ResponseEncoding::Binary);
        let by_hand = ResponseEncoding::Binary.encode(&server.handle(&request));
        assert_eq!(*cold, by_hand);

        // Warm call: the very same bytes, straight from the memo.
        let warm = server.handle_encoded(&request, ResponseEncoding::Binary);
        assert!(Arc::ptr_eq(&cold, &warm));

        // A different encoding memoizes separately and stays correct.
        let json = server.handle_encoded(&request, ResponseEncoding::Json);
        let mut json_line = serde_json::to_string(&server.handle(&request))
            .unwrap()
            .into_bytes();
        json_line.push(b'\n');
        assert_eq!(*json, json_line);

        let stats = server.engine.stats();
        assert_eq!(stats.encoded_entries, 2);
        assert_eq!(stats.encoded_hits, 1);
        assert_eq!(stats.encoded_misses, 2);
        assert!(stats.encoded_bytes > 0);

        // Errors and non-plan requests bypass the memo.
        let bad = Request::Plan {
            release: "nope".into(),
            plan: QueryPlan::Total,
        };
        let err = server.handle_encoded(&bad, ResponseEncoding::Binary);
        assert_eq!(*err, ResponseEncoding::Binary.encode(&server.handle(&bad)));
        let stats = server.engine.stats();
        assert_eq!(stats.encoded_entries, 2);

        // The kill-switch also bypasses it: cold scans are never cached.
        server.set_indexed_plans(false);
        let off = server.handle_encoded(&request, ResponseEncoding::Binary);
        assert_eq!(*off, by_hand, "kill-switch answers stay bit-identical");
        server.set_indexed_plans(true);
    }

    /// The acceptance criterion: a `Window{last_k}` plan answers
    /// bit-identically to executing the inner plan per epoch and
    /// merging by hand — and the same bytes come back in-process, over
    /// NDJSON, and over `DPRB`.
    #[test]
    fn window_plans_match_per_epoch_execution_on_every_transport() {
        use dpod_query::{merge_window_answers, plan, EpochSelector, QueryPlan, WindowMerge};
        let server = epoch_server();
        let inner = QueryPlan::Many {
            plans: vec![
                QueryPlan::Total,
                QueryPlan::Marginal { keep: vec![0] },
                QueryPlan::TopK { k: 4 },
            ],
        };

        // Merge by hand: execute the inner plan against each epoch's
        // release directly, then fold with the pure merge.
        let epochs: Vec<u64> = vec![1, 2, 3];
        let mut by_hand = Vec::new();
        for &epoch in &epochs {
            let matrix = server.resolve(&format!("city@{epoch}")).unwrap();
            by_hand.push(plan::execute(&matrix, &inner).unwrap());
        }
        let expected_sum =
            merge_window_answers(WindowMerge::Sum, &epochs, by_hand.clone()).unwrap();
        let expected_per = merge_window_answers(WindowMerge::PerEpoch, &epochs, by_hand).unwrap();

        let window = |merge| Request::Plan {
            release: "city".into(),
            plan: QueryPlan::Window {
                select: EpochSelector::LastK { k: 3 },
                merge,
                plan: Box::new(inner.clone()),
            },
        };

        // In-process, indexed and cold paths.
        for indexed in [true, false] {
            server.set_indexed_plans(indexed);
            let Response::Answer { answer } = server.handle(&window(WindowMerge::Sum)) else {
                panic!("expected answer (indexed={indexed})");
            };
            assert_eq!(answer, expected_sum, "indexed={indexed}");
            let Response::Answer { answer } = server.handle(&window(WindowMerge::PerEpoch)) else {
                panic!("expected answer (indexed={indexed})");
            };
            assert_eq!(answer, expected_per, "indexed={indexed}");
        }
        server.set_indexed_plans(true);

        // Both TCP encodings return the same bytes.
        let handle = spawn(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr();
        let mut binary = crate::wire::Client::connect(addr).unwrap();
        let Response::Answer { answer } = binary.request(&window(WindowMerge::Sum)).unwrap() else {
            panic!("binary window failed");
        };
        assert_eq!(answer, expected_sum);

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer
            .write_all(
                serde_json::to_string(&window(WindowMerge::Sum))
                    .unwrap()
                    .as_bytes(),
            )
            .unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let Response::Answer { answer } = serde_json::from_str(line.trim()).unwrap() else {
            panic!("json window failed");
        };
        assert_eq!(answer, expected_sum);
        handle.stop();
    }

    /// Warm window queries answer from memoized per-epoch partials: the
    /// second identical window is all hits, and sliding the window to
    /// include a new epoch misses only that epoch.
    #[test]
    fn sliding_windows_reuse_memoized_partials() {
        use dpod_query::{EpochSelector, QueryPlan, WindowMerge};
        let server = epoch_server();
        let window = |k| Request::Plan {
            release: "city".into(),
            plan: QueryPlan::Window {
                select: EpochSelector::LastK { k },
                merge: WindowMerge::Sum,
                plan: Box::new(QueryPlan::Total),
            },
        };

        assert!(matches!(server.handle(&window(2)), Response::Answer { .. }));
        let cold = server.engine_stats();
        assert_eq!(cold.partial_hits, 0);
        assert_eq!(cold.partial_misses, 2);

        // Same window again: pure hits.
        assert!(matches!(server.handle(&window(2)), Response::Answer { .. }));
        let warm = server.engine_stats();
        assert_eq!(warm.partial_hits, 2);
        assert_eq!(warm.partial_misses, 2);

        // Widen to 3: the two cached epochs hit, the new one misses.
        assert!(matches!(server.handle(&window(3)), Response::Answer { .. }));
        let slid = server.engine_stats();
        assert_eq!(slid.partial_hits, 4);
        assert_eq!(slid.partial_misses, 3);

        // Republishing epoch 3 invalidates only its partial: the next
        // window misses once (epoch 3) and hits the rest.
        server.publish_epoch("city", 3, epoch_release(999)).unwrap();
        assert!(matches!(server.handle(&window(3)), Response::Answer { .. }));
        let republished = server.engine_stats();
        assert_eq!(republished.partial_hits, 6);
        assert_eq!(republished.partial_misses, 4);

        let Response::Stats { stats } = server.handle(&Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(stats.series, 1);
        assert_eq!(stats.partial_hits, 6);
        assert_eq!(stats.partial_misses, 4);
    }

    /// Retention tombstones expired epochs, refunds their ε into the
    /// series ledger, and the monotonic rule keeps their ids retired.
    #[test]
    fn retention_retires_epochs_and_refunds_epsilon() {
        use dpod_query::{EpochSelector, QueryPlan, WindowMerge};
        let server = epoch_server();
        let active_before = server.ledgers().active_epsilon("city").unwrap();
        assert!((active_before - 1.5).abs() < 1e-9, "{active_before}");

        let retired = server.apply_retention("city", 2).unwrap();
        assert_eq!(retired, vec![1]);
        assert_eq!(server.epochs_retired(), 1);
        let active_after = server.ledgers().active_epsilon("city").unwrap();
        assert!((active_after - 1.0).abs() < 1e-9, "{active_after}");

        // The retired epoch is gone from serving and from selection.
        assert!(server.catalog().get("city@1").is_none());
        let at_retired = server.handle(&Request::Plan {
            release: "city".into(),
            plan: QueryPlan::Window {
                select: EpochSelector::At { epoch: 1 },
                merge: WindowMerge::Sum,
                plan: Box::new(QueryPlan::Total),
            },
        });
        assert!(matches!(at_retired, Response::Error { .. }));
        // Its id cannot be republished (the ε was refunded).
        assert!(server.publish_epoch("city", 1, epoch_release(7)).is_err());
        // But the frontier keeps moving.
        assert_eq!(
            server.publish_epoch("city", 4, epoch_release(8)).unwrap(),
            1
        );
        assert_eq!(server.epochs_published(), 4);
    }

    /// Window plans against a legacy plain-named release see it as a
    /// one-epoch series at epoch 0 — continuity for pre-epoch catalogs.
    #[test]
    fn legacy_releases_answer_window_plans_as_epoch_zero() {
        use dpod_query::{plan, EpochSelector, QueryPlan, WindowMerge};
        let server = test_server(&["city"]);
        let matrix = server.resolve("city").unwrap();
        let expected = plan::execute(&matrix, &QueryPlan::Total).unwrap();
        let Response::Answer { answer } = server.handle(&Request::Plan {
            release: "city".into(),
            plan: QueryPlan::Window {
                select: EpochSelector::LastK { k: 5 },
                merge: WindowMerge::Sum,
                plan: Box::new(QueryPlan::Total),
            },
        }) else {
            panic!("expected answer");
        };
        assert_eq!(answer, expected);
    }
}
