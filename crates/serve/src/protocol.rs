//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One JSON document per line; the server answers every request line with
//! exactly one response line, in order, so a client can pipeline an
//! entire batch and read answers back positionally. The same types drive
//! the in-process [`Server::handle`](crate::Server::handle) path — the
//! TCP framing is just serialization around it.
//!
//! ```text
//! → {"Query":{"release":"city","lo":[0,0],"hi":[4,4]}}
//! ← {"Value":{"value":812.4375}}
//! → "List"
//! ← {"Releases":{"releases":[…]}}
//! ```

use serde::{Deserialize, Serialize};

/// One analyst request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// A single range sum over the named release.
    Query {
        /// Catalog name of the release.
        release: String,
        /// Inclusive lower corner (one entry per dimension).
        lo: Vec<usize>,
        /// Exclusive upper corner.
        hi: Vec<usize>,
    },
    /// Many range sums over the same release (amortizes name resolution).
    Batch {
        /// Catalog name of the release.
        release: String,
        /// `(lo, hi)` corner pairs, half-open.
        ranges: Vec<(Vec<usize>, Vec<usize>)>,
    },
    /// Enumerate the catalog.
    List,
    /// Server and cache counters.
    Stats,
}

/// One server response (same order as requests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Value {
        /// The estimated count.
        value: f64,
    },
    /// Answer to [`Request::Batch`], in request order.
    Values {
        /// The estimated counts.
        values: Vec<f64>,
    },
    /// Answer to [`Request::List`].
    Releases {
        /// Catalog contents, sorted by name.
        releases: Vec<ReleaseInfo>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Current counters.
        stats: ServerStats,
    },
    /// Any failure; the connection stays usable.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// Catalog metadata exposed to analysts (all post-processing safe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseInfo {
    /// Catalog name.
    pub name: String,
    /// Current version.
    pub version: u64,
    /// Producing mechanism.
    pub mechanism: String,
    /// Privacy budget the release consumed.
    pub epsilon: f64,
    /// Domain cardinalities.
    pub domain: Vec<usize>,
    /// Number of released values.
    pub released_values: usize,
}

/// Point-in-time server counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Catalogued releases.
    pub releases: usize,
    /// Range queries answered since start.
    pub queries: u64,
    /// Rebuild-cache residents.
    pub cache_entries: usize,
    /// Rebuild-cache resident bytes (estimate).
    pub cache_bytes: usize,
    /// Rebuild-cache hits.
    pub cache_hits: u64,
    /// Rebuild-cache misses.
    pub cache_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_as_json() {
        let reqs = vec![
            Request::Query {
                release: "city".into(),
                lo: vec![0, 0],
                hi: vec![4, 4],
            },
            Request::Batch {
                release: "city".into(),
                ranges: vec![(vec![0], vec![1]), (vec![2], vec![5])],
            },
            Request::List,
            Request::Stats,
        ];
        for r in reqs {
            let line = serde_json::to_string(&r).unwrap();
            assert!(!line.contains('\n'), "{line}");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn responses_round_trip_as_json() {
        let resps = vec![
            Response::Value { value: 12.5 },
            Response::Values {
                values: vec![1.0, -2.25],
            },
            Response::Releases {
                releases: vec![ReleaseInfo {
                    name: "city".into(),
                    version: 3,
                    mechanism: "EBP".into(),
                    epsilon: 0.5,
                    domain: vec![8, 8],
                    released_values: 16,
                }],
            },
            Response::Error {
                message: "unknown release".into(),
            },
        ];
        for r in resps {
            let line = serde_json::to_string(&r).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }
}
