//! The wire protocol: one request/response vocabulary, two encodings.
//!
//! The [`Request`]/[`Response`] types here are the whole analyst
//! surface; they drive the in-process
//! [`Server::handle`](crate::Server::handle) path directly, and both TCP
//! encodings are just serialization around it. The server answers every
//! request with exactly one response, in order, so a client can pipeline
//! an entire batch and read answers back positionally.
//!
//! ## Encoding 1: newline-delimited JSON (the default)
//!
//! One JSON document per line:
//!
//! ```text
//! → {"Query":{"release":"city","lo":[0,0],"hi":[4,4]}}
//! ← {"Value":{"value":812.4375}}
//! → "List"
//! ← {"Releases":{"releases":[…]}}
//! ```
//!
//! ## Encoding 2: `DPRB` binary frames (see [`crate::wire`])
//!
//! A connection that opens with the 5-byte preamble `"DPRB" + version`
//! switches to length-prefixed binary frames for its lifetime:
//!
//! ```text
//! preamble:  "DPRB"  u8 version            (client → server, once)
//! frame:     u32 len | "DPRB" u8 version u8 opcode payload…
//! ```
//!
//! Batch requests pack their ranges as raw little-endian `u64`
//! coordinate arrays and batch answers return as raw `f64` bit-pattern
//! vectors, which is what lifts a single connection from ~10⁵ to >10⁶
//! queries/sec. The full field-by-field layout is documented in
//! [`crate::wire`].
//!
//! **Migration note for NDJSON clients:** nothing changes unless you opt
//! in. The server sniffs the first four bytes of each connection; only
//! an exact `DPRB` preamble selects binary framing, and no JSON document
//! can begin with those bytes. To migrate, send the preamble once after
//! connect, then exchange frames (`dpod_serve::wire::Client` wraps
//! this); both encodings answer from the same catalog with bit-identical
//! values, so clients can switch per-connection at any time.

use serde::{Deserialize, Serialize};

/// One analyst request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// A single range sum over the named release.
    Query {
        /// Catalog name of the release.
        release: String,
        /// Inclusive lower corner (one entry per dimension).
        lo: Vec<usize>,
        /// Exclusive upper corner.
        hi: Vec<usize>,
    },
    /// Many range sums over the same release (amortizes name resolution).
    Batch {
        /// Catalog name of the release.
        release: String,
        /// `(lo, hi)` corner pairs, half-open.
        ranges: Vec<(Vec<usize>, Vec<usize>)>,
    },
    /// Enumerate the catalog.
    List,
    /// Server and cache counters.
    Stats,
}

/// One server response (same order as requests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Value {
        /// The estimated count.
        value: f64,
    },
    /// Answer to [`Request::Batch`], in request order.
    Values {
        /// The estimated counts.
        values: Vec<f64>,
    },
    /// Answer to [`Request::List`].
    Releases {
        /// Catalog contents, sorted by name.
        releases: Vec<ReleaseInfo>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Current counters.
        stats: ServerStats,
    },
    /// Any failure; the connection stays usable.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// Catalog metadata exposed to analysts (all post-processing safe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseInfo {
    /// Catalog name.
    pub name: String,
    /// Current version.
    pub version: u64,
    /// Producing mechanism.
    pub mechanism: String,
    /// Privacy budget the release consumed.
    pub epsilon: f64,
    /// Domain cardinalities.
    pub domain: Vec<usize>,
    /// Number of released values.
    pub released_values: usize,
}

/// Point-in-time server counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Catalogued releases.
    pub releases: usize,
    /// Range queries answered since start.
    pub queries: u64,
    /// Rebuild-cache residents.
    pub cache_entries: usize,
    /// Rebuild-cache resident bytes (estimate).
    pub cache_bytes: usize,
    /// Rebuild-cache hits.
    pub cache_hits: u64,
    /// Rebuild-cache misses.
    pub cache_misses: u64,
    /// Queries answered per release (hot-release telemetry), sorted by
    /// name. Names persist here even after a release is removed — the
    /// counters describe lifetime traffic, not current catalog contents.
    pub release_hits: Vec<ReleaseHits>,
}

/// Lifetime query count against one release name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseHits {
    /// Catalog name the queries addressed.
    pub name: String,
    /// Range queries answered against it since server start.
    pub hits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_as_json() {
        let reqs = vec![
            Request::Query {
                release: "city".into(),
                lo: vec![0, 0],
                hi: vec![4, 4],
            },
            Request::Batch {
                release: "city".into(),
                ranges: vec![(vec![0], vec![1]), (vec![2], vec![5])],
            },
            Request::List,
            Request::Stats,
        ];
        for r in reqs {
            let line = serde_json::to_string(&r).unwrap();
            assert!(!line.contains('\n'), "{line}");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn responses_round_trip_as_json() {
        let resps = vec![
            Response::Value { value: 12.5 },
            Response::Values {
                values: vec![1.0, -2.25],
            },
            Response::Releases {
                releases: vec![ReleaseInfo {
                    name: "city".into(),
                    version: 3,
                    mechanism: "EBP".into(),
                    epsilon: 0.5,
                    domain: vec![8, 8],
                    released_values: 16,
                }],
            },
            Response::Stats {
                stats: ServerStats {
                    releases: 1,
                    queries: 42,
                    cache_entries: 1,
                    cache_bytes: 2048,
                    cache_hits: 41,
                    cache_misses: 1,
                    release_hits: vec![ReleaseHits {
                        name: "city".into(),
                        hits: 42,
                    }],
                },
            },
            Response::Error {
                message: "unknown release".into(),
            },
        ];
        for r in resps {
            let line = serde_json::to_string(&r).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }
}
