//! The wire protocol: one request/response vocabulary, two encodings.
//!
//! The [`Request`]/[`Response`] types here are the whole analyst
//! surface; they drive the in-process
//! [`Server::handle`](crate::Server::handle) path directly, and both TCP
//! encodings are just serialization around it. The server answers every
//! request with exactly one response, in order, so a client can pipeline
//! an entire batch and read answers back positionally.
//!
//! ## The typed query algebra ([`Request::Plan`])
//!
//! Beyond the legacy bare range sums ([`Request::Query`] /
//! [`Request::Batch`]), a request can carry any [`QueryPlan`] from
//! `dpod-query`'s typed algebra — the one vocabulary every transport
//! shares:
//!
//! | plan | answer |
//! |------|--------|
//! | `Range { lo, hi }` | `Value` — estimated count in the box |
//! | `Od { origin, stops, destination }` | `Value` — OD query lowered through `dpod_query::od` |
//! | `Marginal { keep }` | `Marginal` — kept dims + row-major estimates |
//! | `TopK { k }` | `TopK` — k largest cells, descending, deterministic ties |
//! | `Total` | `Value` — full-domain estimate |
//! | `Many { plans }` | `Many` — sub-answers in order (plans do not nest) |
//! | `DrillDown { level, plan }` | inner plan's answer, routed to pyramid level `level` |
//!
//! The same plan executed in-process, over NDJSON, or over `DPRB`
//! produces bit-identical answers (a property test pins this). In-process
//! users who do not need a server can call
//! [`dpod_query::plan::execute`] directly.
//!
//! ## Encoding 1: newline-delimited JSON (the default)
//!
//! One JSON document per line:
//!
//! ```text
//! → {"Query":{"release":"city","lo":[0,0],"hi":[4,4]}}
//! ← {"Value":{"value":812.4375}}
//! → {"Plan":{"release":"city","plan":{"TopK":{"k":3}}}}
//! ← {"Answer":{"answer":{"TopK":{"dims":[8,8],"cells":[…]}}}}
//! → "List"
//! ← {"Releases":{"releases":[…]}}
//! ```
//!
//! ## Encoding 2: `DPRB` binary frames (see [`crate::wire`])
//!
//! A connection that opens with the 5-byte preamble `"DPRB" + version`
//! switches to length-prefixed binary frames for its lifetime:
//!
//! ```text
//! preamble:  "DPRB"  u8 version            (client → server, once)
//! frame:     u32 len | "DPRB" u8 version u8 opcode payload…
//! ```
//!
//! Batch requests pack their ranges as raw little-endian `u64`
//! coordinate arrays and batch answers return as raw `f64` bit-pattern
//! vectors, which is what lifts a single connection from ~10⁵ to >10⁶
//! queries/sec. Plans ride opcode `0x05` and answers opcode `0x85`,
//! with packed encodings for the hot variants: a marginal answer is a
//! raw `f64` vector, a top-k answer is packed flat-index/value pairs.
//! The full field-by-field layout is documented in [`crate::wire`].
//!
//! **Back-compat guarantee for legacy `Query`/`Batch` clients:** nothing
//! changes unless you opt in. The legacy JSON documents and the `DPRB`
//! opcodes `0x01`–`0x04` / `0x81`–`0x84` / `0xEF` are byte-for-byte what
//! they were before the plan algebra existed — `Plan`/`Answer` are *new*
//! enum variants and *new* opcodes (`0x05`/`0x85`), so existing clients'
//! requests and the server's responses to them are untouched. The server
//! sniffs the first four bytes of each connection; only an exact `DPRB`
//! preamble selects binary framing, and no JSON document can begin with
//! those bytes. To migrate, send the preamble once after connect, then
//! exchange frames (`dpod_serve::wire::Client` wraps this); both
//! encodings answer from the same catalog with bit-identical values, so
//! clients can switch per-connection at any time.

use dpod_query::{Answer, QueryPlan};
use serde::{Deserialize, Serialize};

/// One analyst request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// A single range sum over the named release.
    Query {
        /// Catalog name of the release.
        release: String,
        /// Inclusive lower corner (one entry per dimension).
        lo: Vec<usize>,
        /// Exclusive upper corner.
        hi: Vec<usize>,
    },
    /// Many range sums over the same release (amortizes name resolution).
    Batch {
        /// Catalog name of the release.
        release: String,
        /// `(lo, hi)` corner pairs, half-open.
        ranges: Vec<(Vec<usize>, Vec<usize>)>,
    },
    /// A typed [`QueryPlan`] against the named release — the full
    /// algebra (range, OD, marginal, top-k, total, `Many` batches).
    Plan {
        /// Catalog name of the release.
        release: String,
        /// The plan to execute.
        plan: QueryPlan,
    },
    /// Enumerate the catalog.
    List,
    /// Server and cache counters.
    Stats,
}

/// One server response (same order as requests).
// `Stats` is the outsized variant, but it is operator traffic (one
// request a scrape), while boxing it would cost an allocation on a
// protocol type every hot-path response also moves through.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Value {
        /// The estimated count.
        value: f64,
    },
    /// Answer to [`Request::Batch`], in request order.
    Values {
        /// The estimated counts.
        values: Vec<f64>,
    },
    /// Answer to [`Request::Plan`], variant-matched to the plan shape.
    Answer {
        /// The typed answer.
        answer: Answer,
    },
    /// Answer to [`Request::List`].
    Releases {
        /// Catalog contents, sorted by name.
        releases: Vec<ReleaseInfo>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Current counters.
        stats: ServerStats,
    },
    /// Any failure; the connection stays usable.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// Catalog metadata exposed to analysts (all post-processing safe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseInfo {
    /// Catalog name.
    pub name: String,
    /// Current version.
    pub version: u64,
    /// Producing mechanism.
    pub mechanism: String,
    /// Privacy budget the release consumed.
    pub epsilon: f64,
    /// Domain cardinalities.
    pub domain: Vec<usize>,
    /// Number of released values.
    pub released_values: usize,
}

/// Point-in-time server counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Catalogued releases.
    pub releases: usize,
    /// Range queries answered since start.
    pub queries: u64,
    /// Rebuild-cache residents.
    pub cache_entries: usize,
    /// Rebuild-cache resident bytes (estimate, plan indexes included —
    /// the two caches share one budget).
    pub cache_bytes: usize,
    /// Rebuild-cache hits.
    pub cache_hits: u64,
    /// Rebuild-cache misses.
    pub cache_misses: u64,
    /// Resident releases whose plan index ([`dpod_query::ReleaseIndex`])
    /// is built.
    pub index_entries: usize,
    /// Plan-index cache hits (aggregate plans answered warm).
    pub index_hits: u64,
    /// Plan-index cache misses (indexes constructed).
    pub index_misses: u64,
    /// Cumulative wall-clock nanoseconds spent building index
    /// structures (marginal tables, cell orders), evicted indexes
    /// included.
    pub index_build_nanos: u64,
    /// Matrix-cache hit rate in `[0, 1]` (`0.0` before any lookup) —
    /// precomputed so dashboards and the `dpod serve` stats line need
    /// no divide-by-zero care.
    pub cache_hit_rate: f64,
    /// Plan-index cache hit rate in `[0, 1]` (`0.0` before any lookup).
    pub index_hit_rate: f64,
    /// Connections the TCP front end currently holds open (`0` for
    /// purely in-process use). With the event-loop front end this
    /// counts every registered socket, idle analysts included; with the
    /// thread-pool front end it counts connections being served.
    pub open_connections: u64,
    /// Connections accepted into service since server start.
    pub accepted_connections: u64,
    /// Queries answered per release (hot-release telemetry), sorted by
    /// name. A name's counter lives as long as the release is served:
    /// removing a release through
    /// [`Server::remove_release`](crate::Server::remove_release) prunes
    /// its row (so long-lived servers with churning catalogs do not leak
    /// counters), and a later republish under the same name starts a
    /// fresh count. The map is additionally capped at
    /// [`MAX_RELEASE_HIT_ENTRIES`](crate::MAX_RELEASE_HIT_ENTRIES) —
    /// catalogs churned around [`Catalog::remove`](crate::Catalog::remove)
    /// directly shed their stalest rows instead of leaking
    /// (see [`ServerStats::evicted_stat_entries`]).
    pub release_hits: Vec<ReleaseHits>,
    /// Per-release hit-counter rows evicted to keep `release_hits`
    /// bounded (`0` on servers whose catalogs are removed through
    /// [`Server::remove_release`](crate::Server::remove_release)).
    pub evicted_stat_entries: u64,
    /// Per-stage request latency summaries (one row per non-empty
    /// `(transport, stage)` histogram; empty until TCP traffic flows).
    /// Sourced from the same histograms `/metrics` exposes, so the two
    /// surfaces agree.
    pub stage_latencies: Vec<StageLatency>,
    /// Release series in the catalog (epoch entries `name@T` group under
    /// `name`; a plain-named release is a one-epoch series — see
    /// `dpod_serve::series`). Equals `releases` on pre-epoch catalogs.
    pub series: usize,
    /// Memoized per-epoch window partials resident in the engine cache.
    pub partial_entries: usize,
    /// Window sub-plans answered from a memoized per-epoch partial.
    pub partial_hits: u64,
    /// Window sub-plans that had to execute against an epoch's index.
    pub partial_misses: u64,
    /// Memoized encoded responses (final wire bytes) resident in the
    /// engine cache, summed across releases and encodings.
    pub encoded_entries: usize,
    /// Plan requests answered by memcpying memoized wire bytes —
    /// execution *and* encoding skipped.
    pub encoded_hits: u64,
    /// Plan requests that executed and encoded before (re)populating
    /// the encoded-response memo.
    pub encoded_misses: u64,
    /// Bytes the encoded-response memo holds inside the shared cache
    /// ledger (already included in `cache_bytes`).
    pub encoded_bytes: usize,
    /// Memoized resolution-pyramid levels resident across plan indexes.
    pub pyramid_entries: usize,
    /// Drill-down plans answered from a memoized pyramid level.
    pub pyramid_hits: u64,
    /// Drill-down plans that had to coarsen the leaf (level built or
    /// answered uncached when over budget).
    pub pyramid_misses: u64,
    /// Bytes the pyramid memo holds inside the shared index budget
    /// (already included in `cache_bytes`).
    pub pyramid_bytes: usize,
}

/// Latency quantiles for one `(transport, stage)` pair, in nanoseconds.
///
/// Quantiles are upper bounds from log-bucketed histograms
/// (`dpod_obs`): within 1/16 above the true sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageLatency {
    /// Request lifecycle stage (`parse`, `queue`, `execute`, `encode`,
    /// `write`).
    pub stage: String,
    /// Transport the requests arrived on (`json`, `binary`).
    pub transport: String,
    /// Samples recorded.
    pub count: u64,
    /// Median latency, nanoseconds.
    pub p50_nanos: u64,
    /// 90th-percentile latency, nanoseconds.
    pub p90_nanos: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_nanos: u64,
    /// 99.9th-percentile latency, nanoseconds.
    pub p999_nanos: u64,
}

/// Lifetime query count against one release name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseHits {
    /// Catalog name the queries addressed.
    pub name: String,
    /// Range queries answered against it since server start.
    pub hits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_as_json() {
        let reqs = vec![
            Request::Query {
                release: "city".into(),
                lo: vec![0, 0],
                hi: vec![4, 4],
            },
            Request::Batch {
                release: "city".into(),
                ranges: vec![(vec![0], vec![1]), (vec![2], vec![5])],
            },
            Request::Plan {
                release: "city".into(),
                plan: QueryPlan::Many {
                    plans: vec![
                        QueryPlan::Total,
                        QueryPlan::TopK { k: 3 },
                        QueryPlan::Marginal { keep: vec![0] },
                        dpod_query::QueryPlan::od()
                            .with_origin(dpod_query::Region::new((0, 0), (2, 2))),
                    ],
                },
            },
            Request::List,
            Request::Stats,
        ];
        for r in reqs {
            let line = serde_json::to_string(&r).unwrap();
            assert!(!line.contains('\n'), "{line}");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn responses_round_trip_as_json() {
        let resps = vec![
            Response::Value { value: 12.5 },
            Response::Values {
                values: vec![1.0, -2.25],
            },
            Response::Answer {
                answer: Answer::Many {
                    answers: vec![
                        Answer::Value { value: 3.5 },
                        Answer::Marginal {
                            dims: vec![2],
                            values: vec![1.5, 2.0],
                        },
                        Answer::TopK {
                            dims: vec![2, 2],
                            cells: vec![dpod_query::TopCell {
                                coords: vec![1, 1],
                                value: 9.0,
                            }],
                        },
                    ],
                },
            },
            Response::Releases {
                releases: vec![ReleaseInfo {
                    name: "city".into(),
                    version: 3,
                    mechanism: "EBP".into(),
                    epsilon: 0.5,
                    domain: vec![8, 8],
                    released_values: 16,
                }],
            },
            Response::Stats {
                stats: ServerStats {
                    releases: 1,
                    queries: 42,
                    cache_entries: 1,
                    cache_bytes: 2048,
                    cache_hits: 41,
                    cache_misses: 1,
                    index_entries: 1,
                    index_hits: 7,
                    index_misses: 1,
                    index_build_nanos: 12_345,
                    cache_hit_rate: 41.0 / 42.0,
                    index_hit_rate: 7.0 / 8.0,
                    open_connections: 3,
                    accepted_connections: 17,
                    release_hits: vec![ReleaseHits {
                        name: "city".into(),
                        hits: 42,
                    }],
                    evicted_stat_entries: 2,
                    stage_latencies: vec![StageLatency {
                        stage: "execute".into(),
                        transport: "binary".into(),
                        count: 42,
                        p50_nanos: 1_000,
                        p90_nanos: 2_000,
                        p99_nanos: 4_000,
                        p999_nanos: 8_000,
                    }],
                    series: 1,
                    partial_entries: 2,
                    partial_hits: 5,
                    partial_misses: 3,
                    encoded_entries: 4,
                    encoded_hits: 9,
                    encoded_misses: 4,
                    encoded_bytes: 512,
                    pyramid_entries: 2,
                    pyramid_hits: 6,
                    pyramid_misses: 2,
                    pyramid_bytes: 1024,
                },
            },
            Response::Error {
                message: "unknown release".into(),
            },
        ];
        for r in resps {
            let line = serde_json::to_string(&r).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }
}
