//! Epoch catalogs: continual publication as release *series*.
//!
//! The EDBT'22 model publishes one sanitized OD matrix per time slice —
//! a city republishes every week under a fresh ε grant. This module
//! layers that *series* view over the flat [`Catalog`] without changing
//! its storage: an epoch is an ordinary catalog entry named
//! `"{series}@{epoch}"` (e.g. `city@3`), and a legacy plain-named entry
//! reads as epoch `0` of its own series. Because the encoding is pure
//! naming, a pre-epoch save-dir loads unchanged as a set of
//! single-epoch series and round-trips byte-identically — manifest
//! back-compat comes for free (pinned by test below).
//!
//! Three concerns live here:
//!
//! * **Naming** — [`epoch_entry_name`]/[`split_epoch_name`] map between
//!   series coordinates and catalog names; [`series_epochs`] lists a
//!   series' live epochs in ascending order.
//! * **Publication discipline** — [`validate_publish_epoch`] enforces
//!   the monotonic rule (republish a live epoch, or append past the
//!   frontier; never resurrect a retired id), and [`expired_epochs`]
//!   computes what a `--retain k` policy tombstones.
//! * **ε accounting** — [`SeriesLedgers`] keeps one
//!   [`BudgetAccountant`] ledger per series: each publish *spends* the
//!   epoch's ε, each retention expiry *releases* it back, so the
//!   accountant's `spent` is always the ε active across the series'
//!   live epochs and the ledger is the full publish/retire history.
//!
//! Window query *execution* (fanning one plan across selected epochs
//! and merging) lives in [`crate::Server`]; the pure selection step,
//! [`select_epochs`], lives here so the CLI and tests share it.

use crate::{Catalog, CatalogEntry, ServeError};
use dpod_dp::{BudgetAccountant, BudgetSnapshot};
use dpod_query::EpochSelector;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The character separating a series name from its epoch id in a
/// catalog entry name. Series names must not contain it.
pub const EPOCH_SEP: char = '@';

/// The catalog entry name for epoch `epoch` of `series`.
pub fn epoch_entry_name(series: &str, epoch: u64) -> String {
    format!("{series}{EPOCH_SEP}{epoch}")
}

/// Splits a catalog entry name into `(series, Some(epoch))` when it
/// carries an epoch suffix, or `(name, None)` for a legacy plain name
/// (which [`series_epochs`] reads as epoch `0`). A suffix that is not a
/// decimal integer is not an epoch — the whole name is the series.
pub fn split_epoch_name(name: &str) -> (&str, Option<u64>) {
    match name.rsplit_once(EPOCH_SEP) {
        Some((series, suffix)) if !series.is_empty() => match suffix.parse::<u64>() {
            Ok(epoch) => (series, Some(epoch)),
            Err(_) => (name, None),
        },
        _ => (name, None),
    }
}

/// One live epoch of a series: its id and the catalog entry behind it.
#[derive(Debug, Clone)]
pub struct EpochInfo {
    /// The epoch id (the `T` of `series@T`; `0` for a legacy plain
    /// entry).
    pub epoch: u64,
    /// The catalog entry holding this epoch's release.
    pub entry: Arc<CatalogEntry>,
}

/// The live epochs of `series`, ascending by epoch id.
///
/// A legacy plain entry named exactly `series` participates as epoch
/// `0` — unless an explicit `series@0` also exists, in which case the
/// explicit entry wins (publishing `series@0` over a legacy catalog is
/// a deliberate upgrade, not a collision).
pub fn series_epochs(catalog: &Catalog, series: &str) -> Vec<EpochInfo> {
    let mut by_epoch: HashMap<u64, Arc<CatalogEntry>> = HashMap::new();
    if let Some(entry) = catalog.get(series) {
        by_epoch.insert(0, entry);
    }
    for entry in catalog.entries() {
        let (s, Some(epoch)) = split_epoch_name(&entry.name) else {
            continue;
        };
        if s == series {
            by_epoch.insert(epoch, entry);
        }
    }
    let mut epochs: Vec<EpochInfo> = by_epoch
        .into_iter()
        .map(|(epoch, entry)| EpochInfo { epoch, entry })
        .collect();
    epochs.sort_by_key(|e| e.epoch);
    epochs
}

/// The series names present in `catalog`, sorted, each with its live
/// epoch count (a plain entry counts as a one-epoch series).
pub fn series_names(catalog: &Catalog) -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for entry in catalog.entries() {
        let (series, _) = split_epoch_name(&entry.name);
        *counts.entry(series.to_string()).or_insert(0) += 1;
    }
    let mut out: Vec<(String, usize)> = counts.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Validates that publishing `epoch` into `series` respects the
/// monotonic rule: the id must either already be live (a republish —
/// the entry's version bumps) or exceed every live epoch (an append).
/// Ids at or below the frontier that are *not* live were retired, and a
/// retired epoch's ε was refunded — resurrecting it would double-spend.
///
/// # Errors
/// [`ServeError`] when the series name contains [`EPOCH_SEP`] or the
/// epoch id is non-monotonic.
pub fn validate_publish_epoch(
    catalog: &Catalog,
    series: &str,
    epoch: u64,
) -> Result<(), ServeError> {
    if series.contains(EPOCH_SEP) {
        return Err(ServeError(format!(
            "series name '{series}' must not contain '{EPOCH_SEP}' (it separates the epoch id)"
        )));
    }
    let live = series_epochs(catalog, series);
    let Some(frontier) = live.last().map(|e| e.epoch) else {
        return Ok(()); // first epoch of a fresh series: any id
    };
    if live.iter().any(|e| e.epoch == epoch) || epoch > frontier {
        Ok(())
    } else {
        Err(ServeError(format!(
            "epoch {epoch} of series '{series}' is behind the frontier {frontier} and not live; \
             epoch ids are monotonic (republish a live epoch or append past {frontier})"
        )))
    }
}

/// The epochs a `retain k` policy expires: everything except the `k`
/// newest. `k = 0` is rejected rather than silently emptying a series.
///
/// # Errors
/// [`ServeError`] when `retain` is zero.
pub fn expired_epochs(epochs: &[EpochInfo], retain: usize) -> Result<Vec<EpochInfo>, ServeError> {
    if retain == 0 {
        return Err(ServeError(
            "retention must keep at least one epoch (retain >= 1)".into(),
        ));
    }
    let expired = epochs.len().saturating_sub(retain);
    Ok(epochs[..expired].to_vec())
}

/// Resolves an [`EpochSelector`] against a series' live epochs,
/// returning the selected subset in ascending order.
///
/// * `At{epoch}` — exactly that epoch, which must be live;
/// * `LastK{k}` — the `k` newest live epochs (`k >= 1`; clamped to the
///   series length, matching a sliding window at the series' start);
/// * `Range{from, to}` — the live epochs in `from..=to`, of which there
///   must be at least one.
///
/// # Errors
/// [`ServeError`] when the series is empty, `At` names a dead epoch,
/// `LastK` asks for zero, or `Range` is inverted or selects nothing.
pub fn select_epochs(
    selector: &EpochSelector,
    epochs: &[EpochInfo],
) -> Result<Vec<EpochInfo>, ServeError> {
    if epochs.is_empty() {
        return Err(ServeError("series has no live epochs".into()));
    }
    match selector {
        EpochSelector::At { epoch } => epochs
            .iter()
            .find(|e| e.epoch == *epoch)
            .map(|e| vec![e.clone()])
            .ok_or_else(|| {
                ServeError(format!(
                    "epoch {epoch} is not live (live epochs: {:?})",
                    epochs.iter().map(|e| e.epoch).collect::<Vec<_>>()
                ))
            }),
        EpochSelector::LastK { k } => {
            if *k == 0 {
                return Err(ServeError("window last_k must be >= 1".into()));
            }
            let k = usize::try_from(*k).unwrap_or(usize::MAX).min(epochs.len());
            Ok(epochs[epochs.len() - k..].to_vec())
        }
        EpochSelector::Range { from, to } => {
            if from > to {
                return Err(ServeError(format!(
                    "window range {from}..={to} is inverted"
                )));
            }
            let selected: Vec<EpochInfo> = epochs
                .iter()
                .filter(|e| e.epoch >= *from && e.epoch <= *to)
                .cloned()
                .collect();
            if selected.is_empty() {
                return Err(ServeError(format!(
                    "window range {from}..={to} selects no live epoch (live epochs: {:?})",
                    epochs.iter().map(|e| e.epoch).collect::<Vec<_>>()
                )));
            }
            Ok(selected)
        }
    }
}

/// Per-series ε ledgers: one [`BudgetAccountant`] per series recording
/// every publish (a spend) and retention expiry (a release). The
/// accountant's `spent` is therefore the ε active across the series'
/// live epochs, and its ledger is the publish/retire history `/metrics`
/// and the stats surface read.
///
/// The ledger total is an accounting ceiling, not an enforcement
/// mechanism — the curator already enforced per-release budgets at
/// publication time — so series are opened with an effectively
/// unbounded total.
#[derive(Debug, Default)]
pub struct SeriesLedgers {
    inner: Mutex<HashMap<String, BudgetAccountant>>,
}

impl SeriesLedgers {
    /// A fresh, empty ledger set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records publishing epoch `epoch` of `series` with budget
    /// `epsilon`. A non-finite or non-positive ε is ignored (nothing to
    /// account).
    pub fn note_publish(&self, series: &str, epoch: u64, epsilon: f64) {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return;
        }
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let acct = map.entry(series.to_string()).or_insert_with(|| {
            BudgetAccountant::new(
                dpod_dp::Epsilon::new(f64::MAX).expect("f64::MAX is a valid ceiling"),
            )
        });
        let _ = acct.spend(epsilon, &format!("epoch {epoch}"));
    }

    /// Records retiring epoch `epoch` of `series`, refunding `epsilon`
    /// back into the series ledger.
    pub fn note_retire(&self, series: &str, epoch: u64, epsilon: f64) {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return;
        }
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(acct) = map.get_mut(series) {
            let _ = acct.release(epsilon, &format!("retire epoch {epoch}"));
        }
    }

    /// The ε currently active (spent minus released) for `series`, or
    /// `None` when nothing was ever published through this ledger.
    pub fn active_epsilon(&self, series: &str) -> Option<f64> {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        map.get(series).map(BudgetAccountant::spent)
    }

    /// Consistent snapshots of every series ledger, sorted by series
    /// name (for metrics export).
    pub fn snapshots(&self) -> Vec<(String, BudgetSnapshot)> {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, BudgetSnapshot)> = map
            .iter()
            .map(|(name, acct)| (name.clone(), acct.snapshot()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_core::release::PublishedRelease;
    use dpod_core::{grid::Ebp, Mechanism};
    use dpod_dp::Epsilon;
    use dpod_fmatrix::{DenseMatrix, Shape};
    use std::sync::Arc;

    fn release(seed: u64) -> PublishedRelease {
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[1, 2], 300).unwrap();
        let out = Ebp::default()
            .sanitize(
                &m,
                Epsilon::new(0.5).unwrap(),
                &mut dpod_dp::seeded_rng(seed),
            )
            .unwrap();
        PublishedRelease::from_sanitized(&out)
    }

    fn catalog_with(names: &[&str]) -> Catalog {
        let catalog = Catalog::new();
        for (i, name) in names.iter().enumerate() {
            catalog.publish(name, release(i as u64 + 1));
        }
        catalog
    }

    #[test]
    fn epoch_names_round_trip() {
        assert_eq!(epoch_entry_name("city", 7), "city@7");
        assert_eq!(split_epoch_name("city@7"), ("city", Some(7)));
        assert_eq!(split_epoch_name("city"), ("city", None));
        // A non-numeric suffix is part of the series name, not an epoch.
        assert_eq!(split_epoch_name("city@best"), ("city@best", None));
        // A leading separator has no series to attach to.
        assert_eq!(split_epoch_name("@3"), ("@3", None));
    }

    #[test]
    fn legacy_plain_entry_reads_as_epoch_zero() {
        let catalog = catalog_with(&["city", "city@2", "other"]);
        let epochs = series_epochs(&catalog, "city");
        assert_eq!(
            epochs.iter().map(|e| e.epoch).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(epochs[0].entry.name, "city");
        assert_eq!(epochs[1].entry.name, "city@2");
        // An explicit `city@0` wins over the legacy plain entry.
        let catalog = catalog_with(&["city", "city@0"]);
        let epochs = series_epochs(&catalog, "city");
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].entry.name, "city@0");
    }

    #[test]
    fn series_names_group_epochs() {
        let catalog = catalog_with(&["a@1", "a@2", "b", "c@5"]);
        assert_eq!(
            series_names(&catalog),
            vec![
                ("a".to_string(), 2),
                ("b".to_string(), 1),
                ("c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn publish_validation_enforces_monotonic_epochs() {
        let catalog = catalog_with(&["city@3", "city@5"]);
        // Fresh series: any id.
        assert!(validate_publish_epoch(&catalog, "fresh", 42).is_ok());
        // Republish of a live epoch.
        assert!(validate_publish_epoch(&catalog, "city", 3).is_ok());
        // Append past the frontier.
        assert!(validate_publish_epoch(&catalog, "city", 6).is_ok());
        // A retired/never-live id behind the frontier is refused.
        let err = validate_publish_epoch(&catalog, "city", 4).expect_err("behind frontier");
        assert!(err.0.contains("frontier 5"), "{err}");
        // Series names must not carry the separator.
        assert!(validate_publish_epoch(&catalog, "ci@ty", 1).is_err());
    }

    #[test]
    fn retention_expires_all_but_the_newest() {
        let catalog = catalog_with(&["s@1", "s@2", "s@3", "s@4"]);
        let epochs = series_epochs(&catalog, "s");
        let expired = expired_epochs(&epochs, 2).expect("retain 2");
        assert_eq!(
            expired.iter().map(|e| e.epoch).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(expired_epochs(&epochs, 10).expect("retain 10").is_empty());
        assert!(expired_epochs(&epochs, 0).is_err());
    }

    #[test]
    fn selectors_resolve_against_live_epochs() {
        let catalog = catalog_with(&["s@2", "s@4", "s@7"]);
        let epochs = series_epochs(&catalog, "s");
        let ids = |infos: &[EpochInfo]| infos.iter().map(|e| e.epoch).collect::<Vec<_>>();

        let at = select_epochs(&EpochSelector::At { epoch: 4 }, &epochs).expect("at");
        assert_eq!(ids(&at), vec![4]);
        assert!(select_epochs(&EpochSelector::At { epoch: 3 }, &epochs).is_err());

        let last = select_epochs(&EpochSelector::LastK { k: 2 }, &epochs).expect("last 2");
        assert_eq!(ids(&last), vec![4, 7]);
        // k beyond the series clamps to the whole series.
        let all = select_epochs(&EpochSelector::LastK { k: 99 }, &epochs).expect("last 99");
        assert_eq!(ids(&all), vec![2, 4, 7]);
        assert!(select_epochs(&EpochSelector::LastK { k: 0 }, &epochs).is_err());

        let range = select_epochs(&EpochSelector::Range { from: 3, to: 7 }, &epochs).expect("rng");
        assert_eq!(ids(&range), vec![4, 7]);
        assert!(select_epochs(&EpochSelector::Range { from: 7, to: 3 }, &epochs).is_err());
        assert!(select_epochs(&EpochSelector::Range { from: 8, to: 9 }, &epochs).is_err());
        assert!(select_epochs(&EpochSelector::LastK { k: 1 }, &[]).is_err());
    }

    #[test]
    fn ledgers_track_active_epsilon_through_publish_and_retire() {
        let ledgers = SeriesLedgers::new();
        ledgers.note_publish("city", 1, 0.5);
        ledgers.note_publish("city", 2, 0.25);
        assert!((ledgers.active_epsilon("city").unwrap() - 0.75).abs() < 1e-12);
        ledgers.note_retire("city", 1, 0.5);
        assert!((ledgers.active_epsilon("city").unwrap() - 0.25).abs() < 1e-12);
        // The ledger records the full history: two spends, one release.
        let snaps = ledgers.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].0, "city");
        assert_eq!(snaps[0].1.entries, 3);
        // Invalid ε is ignored, not an error.
        ledgers.note_publish("city", 3, f64::NAN);
        ledgers.note_retire("city", 3, -1.0);
        assert_eq!(ledgers.snapshots()[0].1.entries, 3);
        assert!(ledgers.active_epsilon("ghost").is_none());
    }

    /// Satellite: a pre-epoch save-dir — plain names, no `@` anywhere —
    /// loads as a set of single-epoch series and a save over the loaded
    /// catalog rewrites nothing: the manifest and every frame file stay
    /// byte-identical.
    #[test]
    fn pre_epoch_save_dir_loads_as_single_epoch_series_and_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "dpod-series-compat-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        let catalog = catalog_with(&["denver", "boulder"]);
        catalog.save_dir(&dir).expect("save");
        let bytes_of = |dir: &std::path::Path| {
            let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
                .expect("read dir")
                .map(|e| {
                    let e = e.expect("entry");
                    (
                        e.file_name().to_string_lossy().into_owned(),
                        std::fs::read(e.path()).expect("read file"),
                    )
                })
                .collect();
            files.sort_by(|a, b| a.0.cmp(&b.0));
            files
        };
        let before = bytes_of(&dir);

        let loaded = Catalog::load_dir(&dir).expect("load");
        // Each plain name is a one-epoch series at epoch 0.
        for name in ["denver", "boulder"] {
            let epochs = series_epochs(&loaded, name);
            assert_eq!(epochs.len(), 1, "{name}");
            assert_eq!(epochs[0].epoch, 0);
            assert_eq!(epochs[0].entry.name, name);
        }
        // Round trip: saving the loaded catalog changes no byte.
        loaded.save_dir(&dir).expect("re-save");
        let after = bytes_of(&dir);
        assert_eq!(
            before, after,
            "pre-epoch save-dir must round-trip byte-identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_entries_persist_through_a_save_dir() {
        let dir = std::env::temp_dir().join(format!(
            "dpod-series-save-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        let catalog = catalog_with(&["city@1", "city@2"]);
        catalog.save_dir(&dir).expect("save");
        let loaded = Catalog::load_dir(&dir).expect("load");
        let epochs = series_epochs(&loaded, "city");
        assert_eq!(
            epochs.iter().map(|e| e.epoch).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // Retiring an epoch and saving tombstones it: a reload does not
        // resurrect it, so the monotonic rule keeps refusing its id.
        assert!(Arc::strong_count(&epochs[0].entry.release) >= 1);
        loaded.remove("city@1");
        loaded.save_dir(&dir).expect("save after retire");
        let reloaded = Catalog::load_dir(&dir).expect("reload");
        let epochs = series_epochs(&reloaded, "city");
        assert_eq!(epochs.iter().map(|e| e.epoch).collect::<Vec<_>>(), vec![2]);
        assert!(validate_publish_epoch(&reloaded, "city", 1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
