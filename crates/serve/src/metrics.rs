//! Serving-stack observability: the [`ServeMetrics`] hub every front
//! end records into, and the Prometheus-text `/metrics` exporter behind
//! `dpod serve --metrics-addr`.
//!
//! ## What is measured
//!
//! **Per-request stage latencies** (`dpod_request_stage_nanoseconds`,
//! labelled `transport` × `stage`): `parse` (socket read → frame/line
//! assembled), `queue` (assembled → a worker picks it up), `execute`
//! (decode + answer), `encode` (response serialization), `write`
//! (response bytes → socket). Recording is a wait-free histogram
//! `fetch_add` (see `dpod_obs`), cheap enough for the ~10⁵ req/s hot
//! path.
//!
//! **Event-loop health** (`dpod_eventloop_*`, labelled `shard`): per
//! loop shard, cumulative epoll wait nanoseconds and wake count, the
//! dispatched-unit byte-size distribution, read-side backpressure
//! pauses, idle-sweep evictions, and the pending request-byte depth.
//! *Versioning note:* since the loop was sharded these series carry a
//! `shard="<i>"` label (previously unlabelled singletons), and the
//! `dpod_eventloop_pending_items` gauge was superseded by
//! `dpod_eventloop_pending_bytes` / `dpod_eventloop_dispatch_unit_bytes`
//! because framing moved off the loop into the workers — the loop now
//! counts raw bytes, not assembled items.
//!
//! **Request mix** (`dpod_requests_total`, labelled `transport` ×
//! `kind`): one increment per decoded request, plan requests split by
//! plan shape (`plan_range`, `plan_od`, …).
//!
//! **Scrape-time gauges** rendered fresh per exposition (zero hot-path
//! cost): engine cache/index counters, catalog size, connection gauges,
//! per-release hit counters, and the ε-budget accounting — each
//! release's spent ε plus catalog-wide sequential-composition totals
//! computed through [`dpod_dp::BudgetAccountant`].
//!
//! The same histograms back the extended [`crate::protocol::ServerStats`] stats frame
//! (`stage_latencies` quantiles) and the richer `dpod serve` stats
//! line, so all three exposition surfaces agree.

use crate::protocol::{Request, StageLatency};
use crate::server::Server;
use dpod_obs::{Clock, Counter, Gauge, Histogram, Registry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which encoding a request arrived in — the `transport` label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Newline-delimited JSON.
    Json = 0,
    /// `DPRB` binary frames.
    Binary = 1,
}

impl Transport {
    /// All transports, in label-index order.
    pub const ALL: [Transport; 2] = [Transport::Json, Transport::Binary];

    /// The `transport` label value.
    pub fn label(self) -> &'static str {
        match self {
            Transport::Json => "json",
            Transport::Binary => "binary",
        }
    }
}

/// One stage of the request lifecycle — the `stage` label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Socket read → request frame/line fully assembled.
    Parse = 0,
    /// Assembled → a worker starts executing.
    Queue = 1,
    /// Decode + answer ([`Server::handle`]).
    Execute = 2,
    /// Response serialization.
    Encode = 3,
    /// Response bytes → socket.
    Write = 4,
}

impl Stage {
    /// All stages, in label-index order.
    pub const ALL: [Stage; 5] = [
        Stage::Parse,
        Stage::Queue,
        Stage::Execute,
        Stage::Encode,
        Stage::Write,
    ];

    /// The `stage` label value.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Queue => "queue",
            Stage::Execute => "execute",
            Stage::Encode => "encode",
            Stage::Write => "write",
        }
    }
}

/// Request-kind label values (the `kind` label on
/// `dpod_requests_total`), index-aligned with [`kind_index`].
const KINDS: [&str; 11] = [
    "query",
    "batch",
    "plan_range",
    "plan_od",
    "plan_marginal",
    "plan_top_k",
    "plan_total",
    "plan_many",
    "list",
    "stats",
    "undecodable",
];

/// Index of `KINDS[10]`: a request that failed to decode (no kind).
pub(crate) const KIND_UNDECODABLE: usize = 10;

/// Maps a decoded request to its `kind` label index.
pub(crate) fn kind_index(req: &Request) -> usize {
    match req {
        Request::Query { .. } => 0,
        Request::Batch { .. } => 1,
        Request::Plan { plan, .. } => match plan.kind() {
            "range" => 2,
            "od" => 3,
            "marginal" => 4,
            "top_k" => 5,
            "total" => 6,
            _ => 7, // "many", "drill_down" (and any future shape folds here)
        },
        Request::List => 8,
        Request::Stats => 9,
    }
}

/// The serving stack's metric handles: one instance per [`Server`],
/// shared by every front end and exposition surface.
///
/// All handles are pre-registered at construction, so a `/metrics`
/// scrape always shows the full series catalog (zeros included) and the
/// hot path never touches the registry lock.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Registry,
    clock: Clock,
    /// `[transport][stage]` latency histograms, nanoseconds.
    stages: [[Arc<Histogram>; 5]; 2],
    /// `[transport][kind]` request counters.
    requests: [[Arc<Counter>; 11]; 2],
    /// Per-release hit-counter rows evicted to keep the stats map
    /// bounded (see `ServerStats::evicted_stat_entries`).
    pub(crate) evicted_stat_entries: Arc<Counter>,
}

/// One event-loop shard's health handles, labelled `shard="<i>"` on
/// every series so imbalance across the `N` loops is visible on a
/// single `/metrics` scrape. Obtained from [`ServeMetrics::shard`] at
/// shard spawn (registration is the cold path; recording is lock-free).
#[derive(Debug, Clone)]
pub(crate) struct ShardMetrics {
    /// Cumulative nanoseconds this shard spent inside `epoll_wait`.
    pub(crate) epoll_wait_nanos: Arc<Counter>,
    /// Times this shard returned from `epoll_wait`.
    pub(crate) epoll_wakes: Arc<Counter>,
    /// Raw request bytes per unit this shard dispatched to the pool.
    pub(crate) dispatch_bytes: Arc<Histogram>,
    /// Times a connection's read side was paused for backpressure.
    pub(crate) backpressure_pauses: Arc<Counter>,
    /// Connections closed by this shard's idle sweep.
    pub(crate) sweep_evictions: Arc<Counter>,
    /// Read-but-undispatched request bytes across the shard's
    /// connections.
    pub(crate) pending_bytes: Arc<Gauge>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Builds the hub, registering every hot-path series.
    pub fn new() -> Self {
        let registry = Registry::new();
        let stages = Transport::ALL.map(|t| {
            Stage::ALL.map(|s| {
                registry.histogram(
                    "dpod_request_stage_nanoseconds",
                    "Per-stage request latency in nanoseconds",
                    &[("transport", t.label()), ("stage", s.label())],
                )
            })
        });
        let requests = Transport::ALL.map(|t| {
            KINDS.map(|k| {
                registry.counter(
                    "dpod_requests_total",
                    "Requests received, by transport and request kind",
                    &[("transport", t.label()), ("kind", k)],
                )
            })
        });
        let hub = ServeMetrics {
            stages,
            requests,
            evicted_stat_entries: registry.counter(
                "dpod_server_evicted_stat_entries_total",
                "Per-release hit-counter rows evicted to bound the stats map",
                &[],
            ),
            clock: Clock::new(),
            registry,
        };
        // Shard 0 always exists under the event front end; registering
        // it eagerly keeps the scrape catalog complete (zeros included)
        // even before the first loop iteration — and on the pool front
        // end, where no shard ever records.
        let _ = hub.shard(0);
        hub
    }

    /// Registers (or re-fetches — the registry dedupes by name+labels)
    /// the `shard="<i>"` event-loop series and returns their handles.
    /// Called once per shard at spawn; never on the hot path.
    pub(crate) fn shard(&self, shard: usize) -> ShardMetrics {
        let idx = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", idx.as_str())];
        ShardMetrics {
            epoll_wait_nanos: self.registry.counter(
                "dpod_eventloop_epoll_wait_nanoseconds_total",
                "Cumulative nanoseconds the loop shard spent blocked in epoll_wait",
                labels,
            ),
            epoll_wakes: self.registry.counter(
                "dpod_eventloop_epoll_wakes_total",
                "Times the loop shard returned from epoll_wait",
                labels,
            ),
            dispatch_bytes: self.registry.histogram(
                "dpod_eventloop_dispatch_unit_bytes",
                "Raw request bytes per unit dispatched to the worker pool",
                labels,
            ),
            backpressure_pauses: self.registry.counter(
                "dpod_eventloop_backpressure_pauses_total",
                "Times a connection's read side was paused for backpressure",
                labels,
            ),
            sweep_evictions: self.registry.counter(
                "dpod_eventloop_sweep_evictions_total",
                "Connections closed by the idle-timeout sweep",
                labels,
            ),
            pending_bytes: self.registry.gauge(
                "dpod_eventloop_pending_bytes",
                "Read-but-undispatched request bytes across the shard's connections",
                labels,
            ),
        }
    }

    /// Nanosecond stamp on the hub's monotonic clock (queue-wait
    /// accounting compares stamps across threads).
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// The stage histogram for `(transport, stage)`.
    #[inline]
    pub fn stage(&self, t: Transport, s: Stage) -> &Histogram {
        &self.stages[t as usize][s as usize]
    }

    /// Records one stage latency sample.
    #[inline]
    pub fn record_stage(&self, t: Transport, s: Stage, nanos: u64) {
        self.stages[t as usize][s as usize].record(nanos);
    }

    /// Counts one request by transport and kind index (see
    /// [`kind_index`] / [`KIND_UNDECODABLE`]).
    #[inline]
    pub(crate) fn count_request_index(&self, t: Transport, kind: usize) {
        self.requests[t as usize][kind].inc();
    }

    /// Counts one decoded request.
    #[inline]
    pub fn count_request(&self, t: Transport, req: &Request) {
        self.count_request_index(t, kind_index(req));
    }

    /// Marks which front end this server runs (an info-style gauge:
    /// value 1 on the active label).
    pub fn note_front_end(&self, front_end: &str) {
        self.registry
            .gauge(
                "dpod_serve_front_end_info",
                "Active serving front end (info gauge; 1 on the active label)",
                &[("front_end", front_end)],
            )
            .set(1);
    }

    /// Quantile summaries of every non-empty stage histogram, for the
    /// extended stats frame. Deterministic order: transport-major,
    /// stage-minor.
    pub fn stage_latencies(&self) -> Vec<StageLatency> {
        let mut out = Vec::new();
        for t in Transport::ALL {
            for s in Stage::ALL {
                let snap = self.stage(t, s).snapshot();
                if snap.count() == 0 {
                    continue;
                }
                out.push(StageLatency {
                    stage: s.label().to_string(),
                    transport: t.label().to_string(),
                    count: snap.count(),
                    p50_nanos: snap.quantile(0.5),
                    p90_nanos: snap.quantile(0.9),
                    p99_nanos: snap.quantile(0.99),
                    p999_nanos: snap.quantile(0.999),
                });
            }
        }
        out
    }

    /// Total requests counted across every transport and kind (the
    /// denominator `stats_line` rates are derived from).
    pub fn requests_counted(&self) -> u64 {
        self.requests.iter().flatten().map(|c| c.get()).sum()
    }

    /// Renders the hub's own registry in Prometheus text format.
    pub fn render_registry(&self) -> String {
        self.registry.render_prometheus()
    }
}

/// Renders the full exposition body for `server`: the hot-path registry
/// plus scrape-time gauges (engine, catalog, connections, per-release
/// hits, ε-budget accounting).
pub(crate) fn render_metrics(server: &Server) -> String {
    let mut out = server.metrics().render_registry();
    let engine = server.engine_stats();

    let mut gauge = |name: &str, help: &str, kind: &str, value: String| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
        ));
    };
    gauge(
        "dpod_engine_cache_bytes",
        "Rebuild-cache resident bytes (plan indexes included)",
        "gauge",
        engine.bytes.to_string(),
    );
    gauge(
        "dpod_engine_cache_entries",
        "Rebuild-cache resident entries",
        "gauge",
        engine.entries.to_string(),
    );
    gauge(
        "dpod_engine_cache_hits_total",
        "Rebuild-cache hits",
        "counter",
        engine.hits.to_string(),
    );
    gauge(
        "dpod_engine_cache_misses_total",
        "Rebuild-cache misses",
        "counter",
        engine.misses.to_string(),
    );
    gauge(
        "dpod_engine_index_entries",
        "Resident releases with a built plan index",
        "gauge",
        engine.index_entries.to_string(),
    );
    gauge(
        "dpod_engine_index_hits_total",
        "Plan-index cache hits",
        "counter",
        engine.index_hits.to_string(),
    );
    gauge(
        "dpod_engine_index_misses_total",
        "Plan-index cache misses",
        "counter",
        engine.index_misses.to_string(),
    );
    gauge(
        "dpod_engine_index_build_nanoseconds_total",
        "Cumulative nanoseconds spent building plan-index structures",
        "counter",
        engine.index_build_nanos.to_string(),
    );
    gauge(
        "dpod_server_queries_total",
        "Range queries answered since start",
        "counter",
        server.queries_answered().to_string(),
    );
    gauge(
        "dpod_server_open_connections",
        "TCP connections currently open",
        "gauge",
        server.open_connections().to_string(),
    );
    gauge(
        "dpod_server_accepted_connections_total",
        "TCP connections accepted since start",
        "counter",
        server.accepted_connections().to_string(),
    );
    gauge(
        "dpod_catalog_releases",
        "Releases currently catalogued",
        "gauge",
        server.catalog().len().to_string(),
    );
    gauge(
        "dpod_epochs_published_total",
        "Epochs published through the server since start",
        "counter",
        server.epochs_published().to_string(),
    );
    gauge(
        "dpod_epochs_retired_total",
        "Epochs retired by retention since start",
        "counter",
        server.epochs_retired().to_string(),
    );
    gauge(
        "dpod_engine_partial_entries",
        "Memoized per-epoch window partials resident in the cache",
        "gauge",
        engine.partial_entries.to_string(),
    );
    gauge(
        "dpod_engine_partial_hits_total",
        "Window sub-plans answered from a memoized per-epoch partial",
        "counter",
        engine.partial_hits.to_string(),
    );
    gauge(
        "dpod_engine_partial_misses_total",
        "Window sub-plans executed against an epoch's index",
        "counter",
        engine.partial_misses.to_string(),
    );
    gauge(
        "dpod_engine_encoded_entries",
        "Memoized encoded responses resident in the cache",
        "gauge",
        engine.encoded_entries.to_string(),
    );
    gauge(
        "dpod_engine_encoded_hits_total",
        "Plan requests answered by memcpying memoized wire bytes",
        "counter",
        engine.encoded_hits.to_string(),
    );
    gauge(
        "dpod_engine_encoded_misses_total",
        "Plan requests executed and encoded before memoization",
        "counter",
        engine.encoded_misses.to_string(),
    );
    gauge(
        "dpod_engine_encoded_bytes",
        "Bytes the encoded-response memo holds in the shared cache ledger",
        "gauge",
        engine.encoded_bytes.to_string(),
    );
    gauge(
        "dpod_engine_pyramid_entries",
        "Memoized resolution-pyramid levels resident across plan indexes",
        "gauge",
        engine.pyramid_entries.to_string(),
    );
    gauge(
        "dpod_engine_pyramid_bytes",
        "Bytes the pyramid memo holds in the shared index budget",
        "gauge",
        engine.pyramid_bytes.to_string(),
    );
    gauge(
        "dpod_engine_pyramid_hits_total",
        "Drill-down plans answered from a memoized pyramid level",
        "counter",
        engine.pyramid_hits.to_string(),
    );
    gauge(
        "dpod_engine_pyramid_misses_total",
        "Drill-down plans that coarsened the leaf (level built or over budget)",
        "counter",
        engine.pyramid_misses.to_string(),
    );

    // Per-level pyramid traffic (warm hits only, so the rows sum to
    // dpod_engine_pyramid_hits_total).
    out.push_str(
        "# HELP dpod_engine_pyramid_level_hits_total Warm pyramid hits per level\n\
         # TYPE dpod_engine_pyramid_level_hits_total counter\n",
    );
    for (level, hits) in server.pyramid_level_hits() {
        out.push_str(&format!(
            "dpod_engine_pyramid_level_hits_total{{level=\"{level}\"}} {hits}\n"
        ));
    }

    // Per-release traffic.
    out.push_str("# HELP dpod_release_hits_total Queries answered per release\n");
    out.push_str("# TYPE dpod_release_hits_total counter\n");
    for row in server.release_hits() {
        out.push_str(&format!(
            "dpod_release_hits_total{{release=\"{}\"}} {}\n",
            escape(&row.name),
            row.hits
        ));
    }

    // ε-budget accounting: each catalogued release spent its ε out of
    // the catalog-wide total; run that arithmetic through the dp
    // crate's sequential-composition accountant so the exported totals
    // are the audited ones, not ad-hoc sums.
    let entries = server.catalog().entries();
    out.push_str("# HELP dpod_release_epsilon Privacy budget the release consumed\n");
    out.push_str("# TYPE dpod_release_epsilon gauge\n");
    let total: f64 = entries.iter().map(|e| e.release.epsilon).sum();
    let mut accountant = dpod_dp::Epsilon::new(total)
        .ok()
        .map(dpod_dp::BudgetAccountant::new);
    for e in &entries {
        out.push_str(&format!(
            "dpod_release_epsilon{{release=\"{}\"}} {}\n",
            escape(&e.name),
            e.release.epsilon
        ));
        if let Some(acc) = accountant.as_mut() {
            let _ = acc.spend(e.release.epsilon, &e.name);
        }
    }
    let snap = accountant
        .map(|a| a.snapshot())
        .unwrap_or(dpod_dp::BudgetSnapshot {
            total: 0.0,
            spent: 0.0,
            remaining: 0.0,
            entries: 0,
        });
    out.push_str(&format!(
        "# HELP dpod_epsilon_spent_total Catalog-wide privacy budget spent (sequential composition)\n# TYPE dpod_epsilon_spent_total gauge\ndpod_epsilon_spent_total {}\n",
        snap.spent
    ));
    out.push_str(&format!(
        "# HELP dpod_epsilon_ledger_entries Releases in the ε composition ledger\n# TYPE dpod_epsilon_ledger_entries gauge\ndpod_epsilon_ledger_entries {}\n",
        snap.entries
    ));

    // Epoch catalogs: per-series live-epoch counts, the per-epoch ε
    // series, and each series' active ε (the sum over its live epochs —
    // what retention refunds shrink). Rendered fresh from the catalog
    // per scrape, so directly-published epochs are counted too.
    out.push_str(
        "# HELP dpod_epoch_count Live epochs per release series\n# TYPE dpod_epoch_count gauge\n",
    );
    let series_list = crate::series::series_names(server.catalog());
    let mut epoch_eps = String::new();
    let mut series_active = String::new();
    for (series, _) in &series_list {
        let epochs = crate::series::series_epochs(server.catalog(), series);
        out.push_str(&format!(
            "dpod_epoch_count{{series=\"{}\"}} {}\n",
            escape(series),
            epochs.len()
        ));
        let mut active = 0.0;
        for info in &epochs {
            active += info.entry.release.epsilon;
            epoch_eps.push_str(&format!(
                "dpod_epoch_epsilon{{series=\"{}\",epoch=\"{}\"}} {}\n",
                escape(series),
                info.epoch,
                info.entry.release.epsilon
            ));
        }
        series_active.push_str(&format!(
            "dpod_series_epsilon_active{{series=\"{}\"}} {active}\n",
            escape(series)
        ));
    }
    out.push_str(
        "# HELP dpod_epoch_epsilon Privacy budget each live epoch consumed\n# TYPE dpod_epoch_epsilon gauge\n",
    );
    out.push_str(&epoch_eps);
    out.push_str(
        "# HELP dpod_series_epsilon_active Privacy budget active across a series' live epochs\n# TYPE dpod_series_epsilon_active gauge\n",
    );
    out.push_str(&series_active);
    out
}

/// Escapes a label value per the Prometheus exposition format.
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Handle to a running `/metrics` exporter; [`stop`](Self::stop) (or
/// drop) shuts the listener thread down.
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl MetricsExporter {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the exporter thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Hard ceiling on scrape request bytes: a well-formed `GET /metrics`
/// header block is a few hundred bytes, so 8 KiB is generous and keeps
/// an attacker from streaming an unbounded "request".
const SCRAPE_REQUEST_CAP: usize = 8 * 1024;

/// Wall-clock budget for reading one scrape request. Without a total
/// deadline, a slow-loris peer trickling one byte per read-timeout
/// window could hold a handler for minutes.
const SCRAPE_READ_DEADLINE: Duration = Duration::from_secs(2);

/// Binds `addr` and serves the Prometheus text exposition for `server`:
/// `GET /metrics` gets a `200 text/plain; version=0.0.4` body rendered
/// fresh per scrape (`dpod serve --metrics-addr` plumbs here). Other
/// paths get `404`, other methods (or oversized/timed-out requests)
/// `400`. Each connection is answered on its own short-lived thread
/// under a hard read deadline, so a slow-loris peer can stall only its
/// own handler — never the accept loop or other scrapers.
///
/// # Errors
/// IO errors from binding the listener.
pub fn spawn_metrics_exporter(
    server: Arc<Server>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<MetricsExporter> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let thread_shutdown = Arc::clone(&shutdown);
    let join = std::thread::spawn(move || loop {
        if thread_shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One detached thread per scrape: rare, tiny, and a
                // misbehaving peer must not wedge the accept loop.
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let _ = serve_scrape(stream, &server);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    });
    Ok(MetricsExporter {
        addr: local,
        shutdown,
        join: Some(join),
    })
}

/// Outcome of reading and validating one scrape request.
enum ScrapeRequest {
    /// `GET /metrics` — serve the exposition.
    Metrics,
    /// Well-formed `GET` for some other path.
    NotFound,
    /// Anything else: non-GET, unparseable, oversized, or timed out.
    Bad,
}

/// Reads one HTTP request under [`SCRAPE_READ_DEADLINE`] /
/// [`SCRAPE_REQUEST_CAP`] and classifies it.
fn read_scrape_request(stream: &mut std::net::TcpStream) -> std::io::Result<ScrapeRequest> {
    let start = std::time::Instant::now();
    let mut buf = [0u8; 4096];
    let mut seen = Vec::new();
    let complete = loop {
        let Some(remaining) = SCRAPE_READ_DEADLINE.checked_sub(start.elapsed()) else {
            break false; // deadline exhausted mid-request
        };
        stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        let n = match stream.read(&mut buf) {
            Ok(0) => break false, // EOF before the header terminator
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break false
            }
            Err(e) => return Err(e),
        };
        seen.extend_from_slice(&buf[..n]);
        if seen.len() > SCRAPE_REQUEST_CAP {
            break false;
        }
        if seen.windows(4).any(|w| w == b"\r\n\r\n") {
            break true;
        }
    };
    if !complete {
        return Ok(ScrapeRequest::Bad);
    }
    let Some(line_end) = seen.windows(2).position(|w| w == b"\r\n") else {
        return Ok(ScrapeRequest::Bad);
    };
    let Ok(line) = std::str::from_utf8(&seen[..line_end]) else {
        return Ok(ScrapeRequest::Bad);
    };
    let mut parts = line.split_ascii_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => {
            // Tolerate a query string ("/metrics?x=1") like most exporters.
            if path == "/metrics" || path.starts_with("/metrics?") {
                Ok(ScrapeRequest::Metrics)
            } else {
                Ok(ScrapeRequest::NotFound)
            }
        }
        _ => Ok(ScrapeRequest::Bad),
    }
}

/// Answers one HTTP scrape: reads the request under a hard deadline and
/// byte cap, then writes the exposition body (or an error status),
/// closes.
fn serve_scrape(mut stream: std::net::TcpStream, server: &Server) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let (status, body) = match read_scrape_request(&mut stream)? {
        ScrapeRequest::Metrics => ("200 OK", render_metrics(server)),
        ScrapeRequest::NotFound => ("404 Not Found", "not found; try /metrics\n".to_string()),
        ScrapeRequest::Bad => ("400 Bad Request", "bad request\n".to_string()),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
