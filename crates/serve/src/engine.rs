//! The query engine: memoized analyst-side rebuilds and plan indexes.
//!
//! A `PublishedRelease` is cheap to store but must be rebuilt into a
//! [`SanitizedMatrix`] — dense estimate plus prefix-sum table — before it
//! can answer `O(2^d)` range queries. The rebuild is `O(domain size)` and
//! the table doubles the memory, so the engine memoizes rebuilds per
//! `(name, version)` under an LRU byte budget: hot releases answer from
//! cache, cold ones pay one rebuild, and a republish (new version) never
//! serves stale answers because the version is part of the key.
//!
//! Beside each rebuilt matrix the engine keeps a second, lazily-filled
//! slot: the release's [`ReleaseIndex`] — memoized marginal tables,
//! descending cell order and cached total — which turns aggregate plans
//! (marginal, top-k, total) from full rescans into table lookups. Both
//! slots share one byte budget and one LRU clock, and both are
//! invalidated together: a republish or removal that drops the matrix
//! drops its index with it, so a stale `(name, old_version)` index can
//! never answer. Index bytes grow as aggregates are first touched, so
//! the ledger is recomputed from the live entries whenever the budget is
//! enforced rather than trusted from insert time.

use crate::{CatalogEntry, ServeError};
use dpod_core::SanitizedMatrix;
use dpod_query::{Answer, ReleaseIndex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A memoizing rebuild + index cache with a shared LRU byte budget.
#[derive(Debug)]
pub struct QueryEngine {
    byte_budget: usize,
    /// Per-release cap on memoized marginal-table bytes, passed to each
    /// [`ReleaseIndex`] it builds.
    index_marginal_cap: usize,
    state: Mutex<LruState>,
    hits: AtomicU64,
    misses: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
    partial_hits: AtomicU64,
    partial_misses: AtomicU64,
    encoded_hits: AtomicU64,
    encoded_misses: AtomicU64,
    /// Build time of indexes that have since been evicted; live
    /// indexes' [`ReleaseIndex::build_nanos`] are summed on demand.
    retired_index_nanos: AtomicU64,
    /// Pyramid hit/miss counts of evicted indexes (live indexes' own
    /// counters are summed on demand, as for build time).
    retired_pyramid_hits: AtomicU64,
    retired_pyramid_misses: AtomicU64,
    /// Per-level pyramid hits of evicted indexes.
    retired_pyramid_level_hits: Mutex<HashMap<u32, u64>>,
}

#[derive(Debug, Default)]
struct LruState {
    map: HashMap<(String, u64), Cached>,
    tick: u64,
    bytes: usize,
}

#[derive(Debug)]
struct Cached {
    matrix: Arc<SanitizedMatrix>,
    matrix_bytes: usize,
    /// The release's prepared plan index, attached on first aggregate
    /// query. Lives and dies with the matrix entry.
    index: Option<Arc<ReleaseIndex>>,
    /// Memoized per-epoch plan partials for window queries: canonical
    /// plan key → the finished answer and its estimated bytes. Riding
    /// on the `(name, version)` entry gives version-keyed invalidation
    /// for free — republishing one epoch drops only that epoch's
    /// partials, every other epoch's stay warm.
    partials: HashMap<String, (Answer, usize)>,
    /// Running byte total of `partials` (so [`Cached::bytes`] stays
    /// O(1) under the ledger refresh).
    partials_bytes: usize,
    /// Memoized final wire bytes per `(encoding, plan key)`: a warm hit
    /// skips plan execution *and* encoding — the worker memcpys the
    /// bytes to the socket. Rides the `(name, version)` entry exactly
    /// like `partials`, so republish invalidation is free.
    encoded: HashMap<(u8, String), EncodedEntry>,
    /// Running byte total of `encoded` (as `partials_bytes`).
    encoded_bytes: usize,
    /// What this entry currently contributes to `LruState::bytes`. Kept
    /// beside the live size so a warm touch can apply an O(1) delta
    /// (index bytes only grow) instead of rescanning every entry.
    charged: usize,
    last_used: u64,
}

/// One memoized encoded response: the exact on-socket bytes and the
/// query units the answer counts for (so warm hits bump the same
/// accounting a cold execution would).
#[derive(Debug)]
struct EncodedEntry {
    bytes: Arc<Vec<u8>>,
    units: u64,
}

impl Cached {
    /// Current resident bytes: the rebuild plus whatever the index and
    /// plan partials have memoized so far (both grow after insertion).
    fn bytes(&self) -> usize {
        self.matrix_bytes
            + self.index.as_ref().map_or(0, |ix| ix.resident_bytes())
            + self.partials_bytes
            + self.encoded_bytes
    }
}

/// Estimated resident bytes of one memoized answer (heap payload plus a
/// small per-node overhead), used to charge plan partials against the
/// shared LRU budget.
fn answer_bytes(answer: &Answer) -> usize {
    match answer {
        Answer::Value { .. } => 32,
        Answer::Marginal { dims, values } => 64 + dims.len() * 8 + values.len() * 8,
        Answer::TopK { dims, cells } => {
            64 + dims.len() * 8 + cells.iter().map(|c| 48 + c.coords.len() * 8).sum::<usize>()
        }
        Answer::Many { answers } | Answer::Epochs { answers, .. } => {
            64 + answers.iter().map(answer_bytes).sum::<usize>()
        }
    }
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Cached rebuilds currently resident.
    pub entries: usize,
    /// Estimated resident bytes (rebuilds plus index structures).
    pub bytes: usize,
    /// Lifetime matrix-cache hits.
    pub hits: u64,
    /// Lifetime matrix-cache misses (— rebuilds performed).
    pub misses: u64,
    /// Resident releases whose plan index is built.
    pub index_entries: usize,
    /// Lifetime index-cache hits (aggregate plans answered by a
    /// resident [`ReleaseIndex`]).
    pub index_hits: u64,
    /// Lifetime index-cache misses (— indexes constructed).
    pub index_misses: u64,
    /// Memoized window-plan partials currently resident (across all
    /// cached epochs).
    pub partial_entries: usize,
    /// Lifetime window-partial hits (per-epoch answers served from the
    /// memo instead of re-executing the plan).
    pub partial_hits: u64,
    /// Lifetime window-partial misses (— per-epoch plan executions).
    pub partial_misses: u64,
    /// Memoized encoded responses currently resident (across all
    /// cached releases and encodings).
    pub encoded_entries: usize,
    /// Lifetime encoded-memo hits (responses served as a memcpy of
    /// cached wire bytes, skipping execution and encoding).
    pub encoded_hits: u64,
    /// Lifetime encoded-memo misses (— responses executed and encoded).
    pub encoded_misses: u64,
    /// Resident bytes held by the encoded-response memo.
    pub encoded_bytes: usize,
    /// Cumulative wall-clock nanoseconds spent building index
    /// structures (marginal tables, cell orders, pyramid levels),
    /// evicted indexes included.
    pub index_build_nanos: u64,
    /// Memoized resolution-pyramid levels currently resident (across
    /// all cached releases).
    pub pyramid_entries: usize,
    /// Resident bytes held by memoized pyramid levels.
    pub pyramid_bytes: usize,
    /// Lifetime pyramid-memo hits (drill-down plans answered from a
    /// resident coarse level), evicted indexes included.
    pub pyramid_hits: u64,
    /// Lifetime pyramid-memo misses (— coarse levels built).
    pub pyramid_misses: u64,
}

/// Estimated resident size of one rebuilt release: the dense estimate and
/// its prefix table are each `size × 8` bytes, and a retained
/// [`PartitionSummary::Boxes`](dpod_core::PartitionSummary) carries two
/// heap-allocated corner vectors plus one count per box — significant for
/// partition-heavy (DAF/quadtree) releases over large domains.
fn resident_bytes(m: &SanitizedMatrix) -> usize {
    let tables = m.matrix().len() * 16;
    let summary = match m.summary() {
        dpod_core::PartitionSummary::PerEntry => 0,
        dpod_core::PartitionSummary::Boxes { partitioning, .. } => {
            let d = m.matrix().shape().ndim();
            // Two Vec<usize> corners (24-byte header + 8·d payload each)
            // plus the box struct and its noisy count.
            partitioning.len() * (2 * (24 + 8 * d) + 32)
        }
    };
    tables + summary + 512
}

impl QueryEngine {
    /// An engine caching up to ~`byte_budget` bytes of rebuilt releases.
    ///
    /// A single release larger than the whole budget is still cached (the
    /// alternative — rebuilding on every query — is strictly worse); the
    /// budget then holds exactly that one entry.
    pub fn new(byte_budget: usize) -> Self {
        Self::with_marginal_cap(byte_budget, dpod_query::backend::DEFAULT_MARGINAL_BUDGET)
    }

    /// [`Self::new`], but capping each release's memoized marginal
    /// tables at `index_marginal_cap` bytes (keep-sets past the cap are
    /// answered per query without caching).
    pub fn with_marginal_cap(byte_budget: usize, index_marginal_cap: usize) -> Self {
        QueryEngine {
            byte_budget,
            index_marginal_cap,
            state: Mutex::new(LruState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            index_hits: AtomicU64::new(0),
            index_misses: AtomicU64::new(0),
            partial_hits: AtomicU64::new(0),
            partial_misses: AtomicU64::new(0),
            encoded_hits: AtomicU64::new(0),
            encoded_misses: AtomicU64::new(0),
            retired_index_nanos: AtomicU64::new(0),
            retired_pyramid_hits: AtomicU64::new(0),
            retired_pyramid_misses: AtomicU64::new(0),
            retired_pyramid_level_hits: Mutex::new(HashMap::new()),
        }
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Sums an evicted entry's accrued index-build time and pyramid
    /// counters into the lifetime accumulators before the index drops.
    fn retire(&self, cached: &Cached) {
        if let Some(ix) = &cached.index {
            self.retired_index_nanos
                .fetch_add(ix.build_nanos(), Ordering::Relaxed);
            self.retired_pyramid_hits
                .fetch_add(ix.pyramid_hits(), Ordering::Relaxed);
            self.retired_pyramid_misses
                .fetch_add(ix.pyramid_misses(), Ordering::Relaxed);
            let level_hits = ix.pyramid_level_hits();
            if !level_hits.is_empty() {
                let mut retired = self
                    .retired_pyramid_level_hits
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                for (level, n) in level_hits {
                    *retired.entry(level).or_insert(0) += n;
                }
            }
        }
    }

    /// Recomputes the byte ledger from the live entries (re-charging
    /// each). Index bytes grow after insertion (memoization is lazy),
    /// so the ledger is refreshed at every insert/evict point; warm
    /// touches use an O(1) per-entry delta instead.
    fn refresh_bytes(state: &mut LruState) {
        let mut total = 0usize;
        for cached in state.map.values_mut() {
            cached.charged = cached.bytes();
            total += cached.charged;
        }
        state.bytes = total;
    }

    /// Evicts least-recently-used entries (never `keep`) until the
    /// budget holds, reclaiming exactly what each victim had been
    /// charged to the ledger.
    fn enforce_budget(&self, state: &mut LruState, keep: &(String, u64)) {
        while state.bytes > self.byte_budget && state.map.len() > 1 {
            let victim = state
                .map
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, c)| c.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(v) => {
                    if let Some(evicted) = state.map.remove(&v) {
                        self.retire(&evicted);
                        state.bytes = state.bytes.saturating_sub(evicted.charged);
                    }
                }
                None => break,
            }
        }
    }

    /// Returns the queryable rebuild of `entry`, from cache when warm.
    ///
    /// # Errors
    /// [`ServeError`] when the artifact fails validation (tampered or
    /// corrupt release) — the entry is *not* cached in that case.
    pub fn sanitized(&self, entry: &CatalogEntry) -> Result<Arc<SanitizedMatrix>, ServeError> {
        self.sanitized_if(entry, || true)
    }

    /// [`Self::sanitized`], but consulting `still_current` (under the
    /// cache lock) before a freshly rebuilt entry is inserted: when it
    /// returns `false` the rebuild is served to the caller *without*
    /// being cached. Servers pass a catalog re-check here to close the
    /// remove/rebuild race — a removal's [`Self::evict`] can run while a
    /// rebuild is in flight, and caching afterwards would strand an
    /// entry no future request can reach.
    pub fn sanitized_if(
        &self,
        entry: &CatalogEntry,
        still_current: impl Fn() -> bool,
    ) -> Result<Arc<SanitizedMatrix>, ServeError> {
        let key = (entry.name.clone(), entry.version);
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.tick += 1;
            let tick = state.tick;
            if let Some(cached) = state.map.get_mut(&key) {
                cached.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&cached.matrix));
            }
        }
        // Rebuild outside the lock: concurrent first-touch of the same
        // release may rebuild twice, but a slow rebuild never blocks
        // queries against other (cached) releases.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let rebuilt = entry
            .release
            .as_ref()
            .clone()
            .into_sanitized()
            .map_err(|e| ServeError(format!("release '{}' is invalid: {e}", entry.name)))?;
        let matrix = Arc::new(rebuilt);
        let bytes = resident_bytes(&matrix);

        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.tick += 1;
        let tick = state.tick;
        // Another thread may have raced the rebuild; keep the winner.
        if let Some(cached) = state.map.get_mut(&key) {
            cached.last_used = tick;
            return Ok(Arc::clone(&cached.matrix));
        }
        // Versions are monotonic per name. If a *newer* version is
        // already cached, this rebuild lost a race with a republish
        // (the entry it resolved is no longer the latest): serve it to
        // this caller but do not cache it, and leave the fresh entry
        // alone.
        if state.map.keys().any(|(n, v)| *n == key.0 && *v > key.1) {
            return Ok(matrix);
        }
        // Caller-supplied currency check, serialized with `evict` by the
        // lock held here: a rebuild that raced a removal (or republish)
        // is served but never cached.
        if !still_current() {
            return Ok(matrix);
        }
        // A republish made any older version of this name unreachable
        // (the catalog only hands out the latest), so its cached rebuild
        // — and the plan index riding on it — is dead weight: drop it
        // now instead of stranding its bytes until LRU pressure happens
        // to find it.
        let stale: Vec<(String, u64)> = state
            .map
            .keys()
            .filter(|(name, version)| *name == key.0 && *version < key.1)
            .cloned()
            .collect();
        for old in stale {
            if let Some(dropped) = state.map.remove(&old) {
                self.retire(&dropped);
            }
        }
        state.map.insert(
            key.clone(),
            Cached {
                matrix: Arc::clone(&matrix),
                matrix_bytes: bytes,
                index: None,
                partials: HashMap::new(),
                partials_bytes: 0,
                encoded: HashMap::new(),
                encoded_bytes: 0,
                charged: 0, // set by the refresh below
                last_used: tick,
            },
        );
        // Evict least-recently-used entries (never the one just added)
        // until the budget holds.
        Self::refresh_bytes(&mut state);
        self.enforce_budget(&mut state, &key);
        Ok(matrix)
    }

    /// Returns the release's prepared [`ReleaseIndex`], from cache when
    /// warm; a cold call builds (or reuses) the matrix rebuild through
    /// [`Self::sanitized_if`] — inheriting its republish-staleness and
    /// currency handling — then attaches a fresh index beside it.
    ///
    /// # Errors
    /// As for [`Self::sanitized`].
    pub fn index(&self, entry: &CatalogEntry) -> Result<Arc<ReleaseIndex>, ServeError> {
        self.index_if(entry, || true)
    }

    /// [`Self::index`], with the same `still_current` contract as
    /// [`Self::sanitized_if`]: when the check fails, the freshly built
    /// index is served to the caller but never cached.
    ///
    /// # Errors
    /// As for [`Self::sanitized`].
    pub fn index_if(
        &self,
        entry: &CatalogEntry,
        still_current: impl Fn() -> bool,
    ) -> Result<Arc<ReleaseIndex>, ServeError> {
        let key = (entry.name.clone(), entry.version);
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.tick += 1;
            let tick = state.tick;
            if let Some(cached) = state.map.get_mut(&key) {
                cached.last_used = tick;
                if let Some(ix) = &cached.index {
                    self.index_hits.fetch_add(1, Ordering::Relaxed);
                    let ix = Arc::clone(ix);
                    // Index bytes grow between accesses (memoization is
                    // lazy), so the warm path re-charges *this* entry —
                    // an O(1) delta, not a rescan of every resident
                    // entry — and re-enforces the budget when the
                    // growth pushed the ledger over it.
                    let now = cached.bytes();
                    let delta = now.saturating_sub(cached.charged);
                    cached.charged = now;
                    state.bytes += delta;
                    if delta > 0 && state.bytes > self.byte_budget {
                        self.enforce_budget(&mut state, &key);
                    }
                    return Ok(ix);
                }
            }
        }
        self.index_misses.fetch_add(1, Ordering::Relaxed);
        // Resolve the matrix through the normal rebuild path (hit or
        // miss), which owns all the staleness rules; then wrap it.
        let matrix = self.sanitized_if(entry, &still_current)?;
        let index = Arc::new(ReleaseIndex::with_marginal_budget(
            matrix,
            self.index_marginal_cap,
        ));

        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.tick += 1;
        let tick = state.tick;
        if let Some(cached) = state.map.get_mut(&key) {
            // Attach only when the resident entry is exactly the matrix
            // this index wraps (the entry may have raced a removal or
            // republish while we built).
            if Arc::ptr_eq(&cached.matrix, index.matrix()) {
                cached.last_used = tick;
                if let Some(existing) = &cached.index {
                    return Ok(Arc::clone(existing)); // a racing builder won
                }
                cached.index = Some(Arc::clone(&index));
                Self::refresh_bytes(&mut state);
                self.enforce_budget(&mut state, &key);
            }
        }
        Ok(index)
    }

    /// Answers one epoch's share of a window plan through the partial
    /// memo: a warm `(entry, plan_key)` pair returns the memoized
    /// answer without touching the release at all; a cold one resolves
    /// the epoch's [`ReleaseIndex`] (through [`Self::index_if`], which
    /// owns all the staleness rules), runs `compute` against it, and
    /// memoizes the answer beside the index under the shared byte
    /// budget. `plan_key` must be a canonical serialization of the
    /// inner plan — the caller owns that contract.
    ///
    /// Because the memo rides the `(name, version)` cache entry, a
    /// republish of one epoch invalidates exactly that epoch's partials
    /// (its version changes; the stale entry is dropped on next
    /// resolve) while every other epoch's stay warm — a sliding window
    /// over k epochs after one republish re-executes one epoch, not k.
    ///
    /// # Errors
    /// As for [`Self::sanitized`], plus whatever `compute` returns
    /// (plan-validation failures are not memoized).
    pub fn window_partial(
        &self,
        entry: &CatalogEntry,
        plan_key: &str,
        still_current: impl Fn() -> bool,
        compute: impl FnOnce(&ReleaseIndex) -> Result<Answer, ServeError>,
    ) -> Result<Answer, ServeError> {
        let key = (entry.name.clone(), entry.version);
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.tick += 1;
            let tick = state.tick;
            if let Some(cached) = state.map.get_mut(&key) {
                if let Some((answer, _)) = cached.partials.get(plan_key) {
                    cached.last_used = tick;
                    self.partial_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(answer.clone());
                }
            }
        }
        self.partial_misses.fetch_add(1, Ordering::Relaxed);
        let index = self.index_if(entry, &still_current)?;
        let answer = compute(&index)?;

        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.tick += 1;
        let tick = state.tick;
        if let Some(cached) = state.map.get_mut(&key) {
            // Memoize only against the entry this answer was computed
            // from (the entry may have raced a removal or republish
            // while the plan ran) — and keep a racing winner's answer.
            if Arc::ptr_eq(&cached.matrix, index.matrix())
                && !cached.partials.contains_key(plan_key)
            {
                cached.last_used = tick;
                let bytes = answer_bytes(&answer) + plan_key.len();
                cached
                    .partials
                    .insert(plan_key.to_string(), (answer.clone(), bytes));
                cached.partials_bytes += bytes;
                Self::refresh_bytes(&mut state);
                self.enforce_budget(&mut state, &key);
            }
        }
        Ok(answer)
    }

    /// Serves one request's final wire bytes through the encoded memo:
    /// a warm `(entry, encoding, plan_key)` triple returns the memoized
    /// bytes — no plan execution, no serialization, the caller memcpys
    /// them to the socket — together with the query units the answer
    /// counts for. A cold triple runs `compute` (execute + encode, the
    /// caller owns both) and memoizes its bytes beside the entry under
    /// the shared LRU byte budget.
    ///
    /// The memo key rides the `(name, version)` cache entry like
    /// `partials`, so a republish invalidates exactly the republished
    /// release's bytes. `still_current` is consulted under the cache
    /// lock before a fresh result is memoized: a compute that raced a
    /// removal or republish is served to its caller but never cached.
    /// `plan_key` must be a canonical serialization of the request's
    /// plan and `enc` the response encoding discriminant — the caller
    /// owns both contracts.
    ///
    /// # Errors
    /// Whatever `compute` returns; errors are never memoized.
    pub fn encoded_response(
        &self,
        entry: &CatalogEntry,
        enc: u8,
        plan_key: &str,
        still_current: impl Fn() -> bool,
        compute: impl FnOnce() -> Result<(Vec<u8>, u64), ServeError>,
    ) -> Result<(Arc<Vec<u8>>, u64), ServeError> {
        let key = (entry.name.clone(), entry.version);
        let memo_key = (enc, plan_key.to_string());
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.tick += 1;
            let tick = state.tick;
            if let Some(cached) = state.map.get_mut(&key) {
                if let Some(e) = cached.encoded.get(&memo_key) {
                    cached.last_used = tick;
                    self.encoded_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(&e.bytes), e.units));
                }
            }
        }
        self.encoded_misses.fetch_add(1, Ordering::Relaxed);
        let (bytes, units) = compute()?;
        let bytes = Arc::new(bytes);

        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.tick += 1;
        let tick = state.tick;
        if let Some(cached) = state.map.get_mut(&key) {
            // Memoize only while the entry is still the catalog's
            // current version (checked under the lock, as
            // `sanitized_if` does) — and keep a racing winner's bytes.
            if still_current() && !cached.encoded.contains_key(&memo_key) {
                cached.last_used = tick;
                let cost = bytes.len() + memo_key.1.len() + 64;
                cached.encoded.insert(
                    memo_key,
                    EncodedEntry {
                        bytes: Arc::clone(&bytes),
                        units,
                    },
                );
                cached.encoded_bytes += cost;
                Self::refresh_bytes(&mut state);
                self.enforce_budget(&mut state, &key);
            }
        }
        Ok((bytes, units))
    }

    /// Drops every cached rebuild of `name` (any version) — plan
    /// indexes included — returning the bytes reclaimed. Used when a
    /// release is removed outright: no future request can reach those
    /// entries, so leaving them to LRU pressure would strand their
    /// bytes on an idle server.
    pub fn evict(&self, name: &str) -> usize {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let victims: Vec<(String, u64)> = state
            .map
            .keys()
            .filter(|(n, _)| n == name)
            .cloned()
            .collect();
        let mut reclaimed = 0;
        for key in victims {
            if let Some(dropped) = state.map.remove(&key) {
                self.retire(&dropped);
                reclaimed += dropped.bytes();
            }
        }
        Self::refresh_bytes(&mut state);
        reclaimed
    }

    /// Drops every cached rebuild and index (counters are preserved).
    pub fn clear(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        for (_, cached) in state.map.drain() {
            self.retire(&cached);
        }
        state.bytes = 0;
    }

    /// Lifetime warm hits per pyramid level, ascending by level:
    /// evicted indexes' counts plus the live indexes' own.
    pub fn pyramid_level_hits(&self) -> Vec<(u32, u64)> {
        let mut merged: HashMap<u32, u64> = self
            .retired_pyramid_level_hits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        {
            let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            for ix in state.map.values().filter_map(|c| c.index.as_ref()) {
                for (level, n) in ix.pyramid_level_hits() {
                    *merged.entry(level).or_insert(0) += n;
                }
            }
        }
        let mut hits: Vec<(u32, u64)> = merged.into_iter().collect();
        hits.sort_unstable();
        hits
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        Self::refresh_bytes(&mut state);
        let live_nanos: u64 = state
            .map
            .values()
            .filter_map(|c| c.index.as_ref())
            .map(|ix| ix.build_nanos())
            .sum();
        let live_indexes = || state.map.values().filter_map(|c| c.index.as_ref());
        let live_pyramid_hits: u64 = live_indexes().map(|ix| ix.pyramid_hits()).sum();
        let live_pyramid_misses: u64 = live_indexes().map(|ix| ix.pyramid_misses()).sum();
        EngineStats {
            pyramid_entries: live_indexes().map(|ix| ix.pyramid_entries()).sum(),
            pyramid_bytes: live_indexes().map(|ix| ix.pyramid_bytes()).sum(),
            pyramid_hits: self.retired_pyramid_hits.load(Ordering::Relaxed) + live_pyramid_hits,
            pyramid_misses: self.retired_pyramid_misses.load(Ordering::Relaxed)
                + live_pyramid_misses,
            entries: state.map.len(),
            bytes: state.bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            index_entries: state.map.values().filter(|c| c.index.is_some()).count(),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            index_misses: self.index_misses.load(Ordering::Relaxed),
            partial_entries: state.map.values().map(|c| c.partials.len()).sum(),
            partial_hits: self.partial_hits.load(Ordering::Relaxed),
            partial_misses: self.partial_misses.load(Ordering::Relaxed),
            encoded_entries: state.map.values().map(|c| c.encoded.len()).sum(),
            encoded_hits: self.encoded_hits.load(Ordering::Relaxed),
            encoded_misses: self.encoded_misses.load(Ordering::Relaxed),
            encoded_bytes: state.map.values().map(|c| c.encoded_bytes).sum(),
            index_build_nanos: self.retired_index_nanos.load(Ordering::Relaxed) + live_nanos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;
    use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
    use dpod_dp::Epsilon;
    use dpod_fmatrix::{AxisBox, DenseMatrix, Shape};
    use dpod_query::PlanBackend;

    fn catalog_with(names: &[&str], side: usize) -> Catalog {
        let c = Catalog::new();
        for (i, name) in names.iter().enumerate() {
            let s = Shape::new(vec![side, side]).unwrap();
            let mut m = DenseMatrix::<u64>::zeros(s);
            m.add_at(&[1, 1], 100 + i as u64).unwrap();
            let out = Ebp::default()
                .sanitize(
                    &m,
                    Epsilon::new(0.5).unwrap(),
                    &mut dpod_dp::seeded_rng(i as u64),
                )
                .unwrap();
            c.publish(name, PublishedRelease::from_sanitized(&out));
        }
        c
    }

    #[test]
    fn second_access_hits_cache() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let e = c.get("a").unwrap();
        let m1 = engine.sanitized(&e).unwrap();
        let m2 = engine.sanitized(&e).unwrap();
        assert!(Arc::ptr_eq(&m1, &m2));
        let stats = engine.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn republish_invalidates_by_version() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let v1 = engine.sanitized(&c.get("a").unwrap()).unwrap();
        // Republish under the same name.
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[2, 2], 999).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(42))
            .unwrap();
        c.publish("a", PublishedRelease::from_sanitized(&out));
        let v2 = engine.sanitized(&c.get("a").unwrap()).unwrap();
        assert!(!Arc::ptr_eq(&v1, &v2));
        let q = AxisBox::new(vec![0, 0], vec![8, 8]).unwrap();
        assert_ne!(v1.range_sum(&q), v2.range_sum(&q));
    }

    #[test]
    fn remove_then_republish_never_serves_stale_answers() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let old = engine.sanitized(&c.get("a").unwrap()).unwrap();
        c.remove("a");
        // Republish different data under the same name.
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[5, 5], 7_777).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(90))
            .unwrap();
        c.publish("a", PublishedRelease::from_sanitized(&out));
        let fresh = engine.sanitized(&c.get("a").unwrap()).unwrap();
        assert!(
            !Arc::ptr_eq(&old, &fresh),
            "cache must not serve the removed release"
        );
        let q = AxisBox::new(vec![0, 0], vec![8, 8]).unwrap();
        assert_eq!(fresh.range_sum(&q), out.range_sum(&q));
    }

    #[test]
    fn lru_evicts_cold_entries_under_budget() {
        let c = catalog_with(&["a", "b", "c"], 16);
        // Measure one rebuild's charged size, then budget for exactly two.
        let probe = QueryEngine::new(usize::MAX);
        probe.sanitized(&c.get("a").unwrap()).unwrap();
        let per_entry = probe.stats().bytes;
        let engine = QueryEngine::new(per_entry * 2 + per_entry / 2);
        let (ea, eb, ec) = (
            c.get("a").unwrap(),
            c.get("b").unwrap(),
            c.get("c").unwrap(),
        );
        engine.sanitized(&ea).unwrap();
        engine.sanitized(&eb).unwrap();
        engine.sanitized(&ea).unwrap(); // refresh a; b is now LRU
        engine.sanitized(&ec).unwrap(); // evicts b
        assert_eq!(engine.stats().entries, 2);
        let misses_before = engine.stats().misses;
        engine.sanitized(&ea).unwrap(); // still cached
        assert_eq!(engine.stats().misses, misses_before);
        engine.sanitized(&eb).unwrap(); // rebuilt
        assert_eq!(engine.stats().misses, misses_before + 1);
    }

    /// Charged resident size of one entry, measured with a throwaway
    /// engine (sizes vary per release with its partition structure).
    fn charged_bytes(entry: &crate::CatalogEntry) -> usize {
        let probe = QueryEngine::new(usize::MAX);
        probe.sanitized(entry).unwrap();
        probe.stats().bytes
    }

    #[test]
    fn eviction_returns_the_victims_bytes() {
        let c = catalog_with(&["a", "b", "c"], 16);
        let (ea, eb, ec) = (
            c.get("a").unwrap(),
            c.get("b").unwrap(),
            c.get("c").unwrap(),
        );
        let (sa, sb, sc) = (charged_bytes(&ea), charged_bytes(&eb), charged_bytes(&ec));
        assert!(sa > 0 && sb > 0 && sc > 0);

        // Budget one byte short of all three: the third insert must
        // evict exactly the LRU entry and give its bytes back.
        let engine = QueryEngine::new(sa + sb + sc - 1);
        engine.sanitized(&ea).unwrap();
        engine.sanitized(&eb).unwrap();
        assert_eq!(engine.stats().bytes, sa + sb);
        engine.sanitized(&ec).unwrap(); // evicts a (the LRU)
        let stats = engine.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(
            stats.bytes,
            sb + sc,
            "the evicted entry's bytes must come back off the ledger"
        );
    }

    #[test]
    fn republish_drops_the_stale_version_immediately() {
        let c = catalog_with(&["a", "b"], 16);
        let engine = QueryEngine::new(usize::MAX);
        engine.sanitized(&c.get("a").unwrap()).unwrap();
        let eb = c.get("b").unwrap();
        engine.sanitized(&eb).unwrap();
        let sb = charged_bytes(&eb);

        // Republish 'a': resolving the new version must replace — not
        // sit beside — the (a, v1) rebuild, under zero LRU pressure.
        let s = Shape::new(vec![16, 16]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[3, 3], 4_242).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(55))
            .unwrap();
        c.publish("a", PublishedRelease::from_sanitized(&out));
        let ea2 = c.get("a").unwrap();
        assert_eq!(ea2.version, 2);
        engine.sanitized(&ea2).unwrap();

        let stats = engine.stats();
        assert_eq!(stats.entries, 2, "stale (a, v1) must be dropped");
        assert_eq!(
            stats.bytes,
            sb + charged_bytes(&ea2),
            "the stale version's bytes must not strand in the budget"
        );
        // And the fresh version answers from cache.
        let misses = stats.misses;
        engine.sanitized(&ea2).unwrap();
        assert_eq!(engine.stats().misses, misses);
    }

    #[test]
    fn rebuild_racing_a_removal_is_served_but_not_cached() {
        // Models the remove/rebuild race: by the time the rebuild is
        // ready to cache, the caller's currency check fails (the
        // release was removed and `evict` already ran).
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let entry = c.get("a").unwrap();
        let served = engine.sanitized_if(&entry, || false).unwrap();
        assert!(served.total().is_finite());
        let stats = engine.stats();
        assert_eq!(stats.entries, 0, "stale rebuild must not be cached");
        assert_eq!(stats.bytes, 0);
        // A current rebuild caches as usual.
        engine.sanitized_if(&entry, || true).unwrap();
        assert_eq!(engine.stats().entries, 1);
    }

    #[test]
    fn straggler_rebuild_of_an_old_version_cannot_evict_the_new_cache() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        // A request resolved the v1 entry… and then a republish lands
        // before its rebuild reaches the cache.
        let old_entry = c.get("a").unwrap();
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[6, 6], 1_234).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(91))
            .unwrap();
        c.publish("a", PublishedRelease::from_sanitized(&out));
        let new_entry = c.get("a").unwrap();
        let fresh = engine.sanitized(&new_entry).unwrap();

        // The straggler is served its v1 answer but must neither evict
        // the fresh (a, v2) entry nor cache the unreachable (a, v1).
        let served = engine.sanitized(&old_entry).unwrap();
        assert!(!Arc::ptr_eq(&served, &fresh));
        assert_eq!(engine.stats().entries, 1);
        let hits = engine.stats().hits;
        let again = engine.sanitized(&new_entry).unwrap();
        assert!(Arc::ptr_eq(&again, &fresh), "v2 must still answer warm");
        assert_eq!(engine.stats().hits, hits + 1);
    }

    #[test]
    fn oversized_release_is_still_served() {
        let c = catalog_with(&["big"], 32);
        let engine = QueryEngine::new(16); // far below one rebuild
        let e = c.get("big").unwrap();
        assert!(engine.sanitized(&e).is_ok());
        assert_eq!(engine.stats().entries, 1);
        // And it stays cached (evicting the only entry would thrash).
        engine.sanitized(&e).unwrap();
        assert_eq!(engine.stats().hits, 1);
    }

    #[test]
    fn invalid_release_errors_and_is_not_cached() {
        let c = Catalog::new();
        let mut release = {
            let s = Shape::new(vec![4, 4]).unwrap();
            let m = DenseMatrix::<u64>::zeros(s);
            let out = Ebp::default()
                .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(1))
                .unwrap();
            PublishedRelease::from_sanitized(&out)
        };
        release.domain = vec![3, 3]; // tampered
        c.publish("bad", release);
        let engine = QueryEngine::new(1 << 20);
        assert!(engine.sanitized(&c.get("bad").unwrap()).is_err());
        assert_eq!(engine.stats().entries, 0);
    }

    #[test]
    fn clear_resets_residency() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        engine.sanitized(&c.get("a").unwrap()).unwrap();
        engine.clear();
        let stats = engine.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
    }

    /// Warms every lazily-built structure the engine charges for: one
    /// marginal table, the sorted cell order, the total.
    fn warm_index(ix: &ReleaseIndex) {
        use dpod_query::{plan, QueryPlan};
        let plan = QueryPlan::Many {
            plans: vec![
                QueryPlan::Marginal { keep: vec![0] },
                QueryPlan::TopK { k: 3 },
                QueryPlan::Total,
            ],
        };
        plan::execute_with(ix, &plan).unwrap();
    }

    #[test]
    fn second_index_access_hits_cache() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let e = c.get("a").unwrap();
        let i1 = engine.index(&e).unwrap();
        let i2 = engine.index(&e).unwrap();
        assert!(Arc::ptr_eq(&i1, &i2));
        let stats = engine.stats();
        assert_eq!((stats.index_hits, stats.index_misses), (1, 1));
        assert_eq!(stats.index_entries, 1);
        // The index ride-alongs on the matrix entry: one entry, and the
        // matrix path was exercised exactly once (by the index build).
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn index_bytes_are_accounted_and_reclaimed_under_a_tiny_budget() {
        let c = catalog_with(&["a", "b", "c"], 16);
        let (ea, eb, ec) = (
            c.get("a").unwrap(),
            c.get("b").unwrap(),
            c.get("c").unwrap(),
        );
        // Probe each entry's fully-warmed footprint (matrix + index)
        // and the unwarmed index base, with throwaway engines.
        let warmed = |e: &crate::CatalogEntry| {
            let probe = QueryEngine::new(usize::MAX);
            warm_index(&probe.index(e).unwrap());
            probe.stats().bytes
        };
        let (wa, wb) = (warmed(&ea), warmed(&eb));
        let base_c = {
            let probe = QueryEngine::new(usize::MAX);
            probe.index(&ec).unwrap();
            probe.stats().bytes
        };

        // Budget holds two warmed entries plus a bare third — minus one
        // byte, so attaching the third index must evict the LRU entry
        // and give back its *full* (matrix + grown index) bytes.
        let engine = QueryEngine::new(wa + wb + base_c - 1);
        warm_index(&engine.index(&ea).unwrap());
        warm_index(&engine.index(&eb).unwrap());
        assert_eq!(
            engine.stats().bytes,
            wa + wb,
            "ledger must track lazily-grown index bytes"
        );
        let ixc = engine.index(&ec).unwrap(); // evicts a (the LRU)
        let stats = engine.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.index_entries, 2);
        assert_eq!(
            stats.bytes,
            wb + base_c,
            "the victim's matrix and index bytes must both come back"
        );
        // Growing the surviving index keeps the ledger exact.
        warm_index(&ixc);
        let wc = warmed(&ec);
        assert_eq!(engine.stats().bytes, wb + wc);
        // And the evicted release rebuilds (and re-indexes) on demand.
        let before = engine.stats().index_misses;
        engine.index(&ea).unwrap();
        assert_eq!(engine.stats().index_misses, before + 1);
    }

    #[test]
    fn republish_invalidates_the_stale_index() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let old_entry = c.get("a").unwrap();
        let old_ix = engine.index(&old_entry).unwrap();
        warm_index(&old_ix);
        let old_top = old_ix.top_k(1);

        // Republish different data under the same name.
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[7, 0], 9_999).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(61))
            .unwrap();
        c.publish("a", PublishedRelease::from_sanitized(&out));
        let new_entry = c.get("a").unwrap();
        let new_ix = engine.index(&new_entry).unwrap();
        assert!(!Arc::ptr_eq(&old_ix, &new_ix));
        // Exactly one resident entry: (a, v2). The stale (a, v1) index
        // left with its matrix.
        let stats = engine.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.index_entries, 1);
        // The new index answers over the new data, not the stale order.
        let new_top = new_ix.top_k(1);
        assert_ne!(old_top[0].value.to_bits(), new_top[0].value.to_bits());
        assert_eq!(
            new_top[0].value.to_bits(),
            out.range_sum(&AxisBox::cell(&new_top[0].coords)).to_bits()
        );
        // A straggler resolving the old entry is served, never cached.
        let straggler = engine.index(&old_entry).unwrap();
        assert!(!Arc::ptr_eq(&straggler, &new_ix));
        assert_eq!(engine.stats().entries, 1);
        let hits = engine.stats().index_hits;
        assert!(Arc::ptr_eq(&engine.index(&new_entry).unwrap(), &new_ix));
        assert_eq!(engine.stats().index_hits, hits + 1);
    }

    #[test]
    fn index_racing_a_removal_is_served_but_not_cached() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let entry = c.get("a").unwrap();
        let served = engine.index_if(&entry, || false).unwrap();
        assert!(served.total().is_finite());
        let stats = engine.stats();
        assert_eq!(stats.entries, 0, "stale index must not be cached");
        assert_eq!(stats.index_entries, 0);
        // A current build caches as usual.
        engine.index_if(&entry, || true).unwrap();
        assert_eq!(engine.stats().index_entries, 1);
    }

    #[test]
    fn window_partials_memoize_per_entry() {
        use dpod_query::{plan, QueryPlan};
        let c = catalog_with(&["s@1", "s@2"], 8);
        let engine = QueryEngine::new(1 << 20);
        let plan = QueryPlan::Total;
        let key = serde_json::to_string(&plan).unwrap();
        let run = |entry: &crate::CatalogEntry| {
            engine
                .window_partial(
                    entry,
                    &key,
                    || true,
                    |ix| plan::execute_with(ix, &plan).map_err(|e| crate::ServeError(e.0)),
                )
                .unwrap()
        };
        let e1 = c.get("s@1").unwrap();
        let e2 = c.get("s@2").unwrap();
        let a1 = run(&e1);
        let a2 = run(&e2);
        let stats = engine.stats();
        assert_eq!((stats.partial_hits, stats.partial_misses), (0, 2));
        assert_eq!(stats.partial_entries, 2);
        assert!(stats.bytes > 0);
        // Warm repeats serve the memo, bit for bit.
        assert_eq!(run(&e1), a1);
        assert_eq!(run(&e2), a2);
        let stats = engine.stats();
        assert_eq!((stats.partial_hits, stats.partial_misses), (2, 2));
    }

    #[test]
    fn republishing_one_epoch_keeps_the_others_partials_warm() {
        use dpod_query::{plan, QueryPlan};
        let c = catalog_with(&["s@1", "s@2"], 8);
        let engine = QueryEngine::new(1 << 20);
        let plan = QueryPlan::TopK { k: 2 };
        let key = serde_json::to_string(&plan).unwrap();
        let run = |entry: &crate::CatalogEntry| {
            engine
                .window_partial(
                    entry,
                    &key,
                    || true,
                    |ix| plan::execute_with(ix, &plan).map_err(|e| crate::ServeError(e.0)),
                )
                .unwrap()
        };
        run(&c.get("s@1").unwrap());
        run(&c.get("s@2").unwrap());

        // Republish epoch 2 only.
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[4, 4], 777).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(70))
            .unwrap();
        c.publish("s@2", PublishedRelease::from_sanitized(&out));

        let (hits0, misses0) = {
            let s = engine.stats();
            (s.partial_hits, s.partial_misses)
        };
        // Epoch 1 still answers from the memo; epoch 2's new version is
        // a miss — exactly one re-execution for a one-epoch republish.
        run(&c.get("s@1").unwrap());
        run(&c.get("s@2").unwrap());
        let stats = engine.stats();
        assert_eq!(stats.partial_hits, hits0 + 1, "epoch 1 must stay warm");
        assert_eq!(stats.partial_misses, misses0 + 1);
    }

    #[test]
    fn failed_window_partials_are_not_memoized() {
        use dpod_query::{plan, QueryPlan};
        let c = catalog_with(&["s@1"], 8);
        let engine = QueryEngine::new(1 << 20);
        // An invalid plan (2-D release has no dimension 9).
        let plan = QueryPlan::Marginal { keep: vec![9] };
        let key = serde_json::to_string(&plan).unwrap();
        let entry = c.get("s@1").unwrap();
        for _ in 0..2 {
            let err = engine.window_partial(
                &entry,
                &key,
                || true,
                |ix| plan::execute_with(ix, &plan).map_err(|e| crate::ServeError(e.0)),
            );
            assert!(err.is_err());
        }
        let stats = engine.stats();
        assert_eq!(stats.partial_entries, 0, "errors must not be memoized");
        assert_eq!((stats.partial_hits, stats.partial_misses), (0, 2));
    }

    #[test]
    fn encoded_responses_memoize_per_entry_and_encoding() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let entry = c.get("a").unwrap();
        // The memo rides the release's cache entry (in production the
        // compute path resolves it); create it as an executor would.
        engine.sanitized(&entry).unwrap();
        // Two encodings of the "same plan" memoize independently.
        let run = |enc: u8, payload: &[u8]| {
            let payload = payload.to_vec();
            engine
                .encoded_response(&entry, enc, "plan-key", || true, move || Ok((payload, 3)))
                .unwrap()
        };
        let (b1, u1) = run(0, b"json bytes");
        assert_eq!((&b1[..], u1), (&b"json bytes"[..], 3));
        let (b2, _) = run(1, b"frame bytes");
        assert_eq!(&b2[..], b"frame bytes");
        // Warm repeats return the first compute's bytes, bit for bit —
        // the second closure's payload is never consulted.
        let (warm, units) = run(0, b"IGNORED");
        assert!(Arc::ptr_eq(&warm, &b1));
        assert_eq!(units, 3);
        let stats = engine.stats();
        assert_eq!((stats.encoded_hits, stats.encoded_misses), (1, 2));
        assert_eq!(stats.encoded_entries, 2);
        assert!(stats.encoded_bytes > 0);

        // Errors are never memoized.
        let err: Result<_, ServeError> = engine.encoded_response(
            &entry,
            0,
            "bad-plan",
            || true,
            || Err(ServeError("nope".into())),
        );
        assert!(err.is_err());
        assert_eq!(engine.stats().encoded_entries, 2);

        // A compute that raced a removal is served but not cached.
        let (served, _) = engine
            .encoded_response(&entry, 0, "racing", || false, || Ok((vec![1, 2], 1)))
            .unwrap();
        assert_eq!(&served[..], &[1, 2]);
        assert_eq!(engine.stats().encoded_entries, 2);
    }

    #[test]
    fn encoded_memo_bytes_ride_the_shared_ledger() {
        let c = catalog_with(&["a", "b"], 16);
        let (ea, eb) = (c.get("a").unwrap(), c.get("b").unwrap());
        let (sa, sb) = (charged_bytes(&ea), charged_bytes(&eb));

        let engine = QueryEngine::new(usize::MAX);
        engine.sanitized(&ea).unwrap();
        engine.sanitized(&eb).unwrap();
        assert_eq!(
            engine.stats().bytes,
            sa + sb,
            "an unused encoded memo must charge zero bytes"
        );
        let payload = vec![0u8; 1 << 12];
        engine
            .encoded_response(&ea, 1, "k", || true, || Ok((payload, 1)))
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.bytes, sa + sb + stats.encoded_bytes);
        assert!(stats.encoded_bytes >= 1 << 12);

        // Evicting the release reclaims the memo's bytes with it.
        let reclaimed = engine.evict("a");
        assert_eq!(reclaimed, sa + stats.encoded_bytes);
        let stats = engine.stats();
        assert_eq!((stats.bytes, stats.encoded_entries), (sb, 0));
        assert_eq!(stats.encoded_bytes, 0);
    }

    #[test]
    fn republish_invalidates_the_encoded_memo() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let old = c.get("a").unwrap();
        engine
            .encoded_response(&old, 1, "k", || true, || Ok((b"v1".to_vec(), 1)))
            .unwrap();
        // Republish under the same name: the next resolve drops the
        // stale entry, so the memo misses and re-computes.
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[2, 2], 999).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(42))
            .unwrap();
        c.publish("a", PublishedRelease::from_sanitized(&out));
        let new = c.get("a").unwrap();
        engine.sanitized(&new).unwrap(); // drops (a, v1) and its memo
        let (bytes, _) = engine
            .encoded_response(&new, 1, "k", || true, || Ok((b"v2".to_vec(), 1)))
            .unwrap();
        assert_eq!(&bytes[..], b"v2");
        let stats = engine.stats();
        assert_eq!((stats.encoded_hits, stats.encoded_misses), (0, 2));
        assert_eq!(stats.encoded_entries, 1);
    }

    #[test]
    fn pyramid_stats_aggregate_across_indexes_and_survive_eviction() {
        use dpod_query::{plan, QueryPlan};
        let c = catalog_with(&["a"], 16);
        let engine = QueryEngine::new(1 << 20);
        let ix = engine.index(&c.get("a").unwrap()).unwrap();
        let drill = QueryPlan::DrillDown {
            level: 2,
            plan: Box::new(QueryPlan::Total),
        };
        plan::execute_with(&*ix, &drill).unwrap(); // builds level 2
        plan::execute_with(&*ix, &drill).unwrap(); // warm hit
        let stats = engine.stats();
        assert_eq!(
            (
                stats.pyramid_entries,
                stats.pyramid_hits,
                stats.pyramid_misses
            ),
            (1, 1, 1)
        );
        assert!(stats.pyramid_bytes > 0);
        assert_eq!(engine.pyramid_level_hits(), vec![(2, 1)]);
        // Eviction drops the resident level but the lifetime counters
        // survive in the retired accumulators.
        engine.evict("a");
        let stats = engine.stats();
        assert_eq!((stats.pyramid_entries, stats.pyramid_bytes), (0, 0));
        assert_eq!((stats.pyramid_hits, stats.pyramid_misses), (1, 1));
        assert_eq!(engine.pyramid_level_hits(), vec![(2, 1)]);
    }

    #[test]
    fn evict_drops_the_index_with_the_matrix() {
        let c = catalog_with(&["a"], 16);
        let engine = QueryEngine::new(usize::MAX);
        let ix = engine.index(&c.get("a").unwrap()).unwrap();
        warm_index(&ix);
        let charged = engine.stats().bytes;
        assert!(engine.stats().index_build_nanos > 0);
        let reclaimed = engine.evict("a");
        assert_eq!(reclaimed, charged, "evict must reclaim index bytes too");
        let stats = engine.stats();
        assert_eq!((stats.entries, stats.index_entries, stats.bytes), (0, 0, 0));
        // Build time of the evicted index survives in the lifetime
        // counter.
        assert!(stats.index_build_nanos > 0);
    }
}
