//! The query engine: memoized analyst-side rebuilds.
//!
//! A `PublishedRelease` is cheap to store but must be rebuilt into a
//! [`SanitizedMatrix`] — dense estimate plus prefix-sum table — before it
//! can answer `O(2^d)` range queries. The rebuild is `O(domain size)` and
//! the table doubles the memory, so the engine memoizes rebuilds per
//! `(name, version)` under an LRU byte budget: hot releases answer from
//! cache, cold ones pay one rebuild, and a republish (new version) never
//! serves stale answers because the version is part of the key.

use crate::{CatalogEntry, ServeError};
use dpod_core::SanitizedMatrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A memoizing rebuild cache with an LRU byte budget.
#[derive(Debug)]
pub struct QueryEngine {
    byte_budget: usize,
    state: Mutex<LruState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct LruState {
    map: HashMap<(String, u64), Cached>,
    tick: u64,
    bytes: usize,
}

#[derive(Debug)]
struct Cached {
    matrix: Arc<SanitizedMatrix>,
    bytes: usize,
    last_used: u64,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Cached rebuilds currently resident.
    pub entries: usize,
    /// Estimated resident bytes.
    pub bytes: usize,
    /// Lifetime cache hits.
    pub hits: u64,
    /// Lifetime cache misses (— rebuilds performed).
    pub misses: u64,
}

/// Estimated resident size of one rebuilt release: the dense estimate and
/// its prefix table are each `size × 8` bytes, and a retained
/// [`PartitionSummary::Boxes`](dpod_core::PartitionSummary) carries two
/// heap-allocated corner vectors plus one count per box — significant for
/// partition-heavy (DAF/quadtree) releases over large domains.
fn resident_bytes(m: &SanitizedMatrix) -> usize {
    let tables = m.matrix().len() * 16;
    let summary = match m.summary() {
        dpod_core::PartitionSummary::PerEntry => 0,
        dpod_core::PartitionSummary::Boxes { partitioning, .. } => {
            let d = m.matrix().shape().ndim();
            // Two Vec<usize> corners (24-byte header + 8·d payload each)
            // plus the box struct and its noisy count.
            partitioning.len() * (2 * (24 + 8 * d) + 32)
        }
    };
    tables + summary + 512
}

impl QueryEngine {
    /// An engine caching up to ~`byte_budget` bytes of rebuilt releases.
    ///
    /// A single release larger than the whole budget is still cached (the
    /// alternative — rebuilding on every query — is strictly worse); the
    /// budget then holds exactly that one entry.
    pub fn new(byte_budget: usize) -> Self {
        QueryEngine {
            byte_budget,
            state: Mutex::new(LruState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Returns the queryable rebuild of `entry`, from cache when warm.
    ///
    /// # Errors
    /// [`ServeError`] when the artifact fails validation (tampered or
    /// corrupt release) — the entry is *not* cached in that case.
    pub fn sanitized(&self, entry: &CatalogEntry) -> Result<Arc<SanitizedMatrix>, ServeError> {
        let key = (entry.name.clone(), entry.version);
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.tick += 1;
            let tick = state.tick;
            if let Some(cached) = state.map.get_mut(&key) {
                cached.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&cached.matrix));
            }
        }
        // Rebuild outside the lock: concurrent first-touch of the same
        // release may rebuild twice, but a slow rebuild never blocks
        // queries against other (cached) releases.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let rebuilt = entry
            .release
            .as_ref()
            .clone()
            .into_sanitized()
            .map_err(|e| ServeError(format!("release '{}' is invalid: {e}", entry.name)))?;
        let matrix = Arc::new(rebuilt);
        let bytes = resident_bytes(&matrix);

        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.tick += 1;
        let tick = state.tick;
        // Another thread may have raced the rebuild; keep the winner.
        if let Some(cached) = state.map.get_mut(&key) {
            cached.last_used = tick;
            return Ok(Arc::clone(&cached.matrix));
        }
        state.bytes += bytes;
        state.map.insert(
            key.clone(),
            Cached {
                matrix: Arc::clone(&matrix),
                bytes,
                last_used: tick,
            },
        );
        // Evict least-recently-used entries (never the one just added)
        // until the budget holds.
        while state.bytes > self.byte_budget && state.map.len() > 1 {
            let victim = state
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, c)| c.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(v) => {
                    if let Some(evicted) = state.map.remove(&v) {
                        state.bytes -= evicted.bytes;
                    }
                }
                None => break,
            }
        }
        Ok(matrix)
    }

    /// Drops every cached rebuild (counters are preserved).
    pub fn clear(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.map.clear();
        state.bytes = 0;
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        EngineStats {
            entries: state.map.len(),
            bytes: state.bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;
    use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
    use dpod_dp::Epsilon;
    use dpod_fmatrix::{AxisBox, DenseMatrix, Shape};

    fn catalog_with(names: &[&str], side: usize) -> Catalog {
        let c = Catalog::new();
        for (i, name) in names.iter().enumerate() {
            let s = Shape::new(vec![side, side]).unwrap();
            let mut m = DenseMatrix::<u64>::zeros(s);
            m.add_at(&[1, 1], 100 + i as u64).unwrap();
            let out = Ebp::default()
                .sanitize(
                    &m,
                    Epsilon::new(0.5).unwrap(),
                    &mut dpod_dp::seeded_rng(i as u64),
                )
                .unwrap();
            c.publish(name, PublishedRelease::from_sanitized(&out));
        }
        c
    }

    #[test]
    fn second_access_hits_cache() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let e = c.get("a").unwrap();
        let m1 = engine.sanitized(&e).unwrap();
        let m2 = engine.sanitized(&e).unwrap();
        assert!(Arc::ptr_eq(&m1, &m2));
        let stats = engine.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn republish_invalidates_by_version() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let v1 = engine.sanitized(&c.get("a").unwrap()).unwrap();
        // Republish under the same name.
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[2, 2], 999).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(42))
            .unwrap();
        c.publish("a", PublishedRelease::from_sanitized(&out));
        let v2 = engine.sanitized(&c.get("a").unwrap()).unwrap();
        assert!(!Arc::ptr_eq(&v1, &v2));
        let q = AxisBox::new(vec![0, 0], vec![8, 8]).unwrap();
        assert_ne!(v1.range_sum(&q), v2.range_sum(&q));
    }

    #[test]
    fn remove_then_republish_never_serves_stale_answers() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        let old = engine.sanitized(&c.get("a").unwrap()).unwrap();
        c.remove("a");
        // Republish different data under the same name.
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[5, 5], 7_777).unwrap();
        let out = Ebp::default()
            .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(90))
            .unwrap();
        c.publish("a", PublishedRelease::from_sanitized(&out));
        let fresh = engine.sanitized(&c.get("a").unwrap()).unwrap();
        assert!(
            !Arc::ptr_eq(&old, &fresh),
            "cache must not serve the removed release"
        );
        let q = AxisBox::new(vec![0, 0], vec![8, 8]).unwrap();
        assert_eq!(fresh.range_sum(&q), out.range_sum(&q));
    }

    #[test]
    fn lru_evicts_cold_entries_under_budget() {
        let c = catalog_with(&["a", "b", "c"], 16);
        // Measure one rebuild's charged size, then budget for exactly two.
        let probe = QueryEngine::new(usize::MAX);
        probe.sanitized(&c.get("a").unwrap()).unwrap();
        let per_entry = probe.stats().bytes;
        let engine = QueryEngine::new(per_entry * 2 + per_entry / 2);
        let (ea, eb, ec) = (
            c.get("a").unwrap(),
            c.get("b").unwrap(),
            c.get("c").unwrap(),
        );
        engine.sanitized(&ea).unwrap();
        engine.sanitized(&eb).unwrap();
        engine.sanitized(&ea).unwrap(); // refresh a; b is now LRU
        engine.sanitized(&ec).unwrap(); // evicts b
        assert_eq!(engine.stats().entries, 2);
        let misses_before = engine.stats().misses;
        engine.sanitized(&ea).unwrap(); // still cached
        assert_eq!(engine.stats().misses, misses_before);
        engine.sanitized(&eb).unwrap(); // rebuilt
        assert_eq!(engine.stats().misses, misses_before + 1);
    }

    #[test]
    fn oversized_release_is_still_served() {
        let c = catalog_with(&["big"], 32);
        let engine = QueryEngine::new(16); // far below one rebuild
        let e = c.get("big").unwrap();
        assert!(engine.sanitized(&e).is_ok());
        assert_eq!(engine.stats().entries, 1);
        // And it stays cached (evicting the only entry would thrash).
        engine.sanitized(&e).unwrap();
        assert_eq!(engine.stats().hits, 1);
    }

    #[test]
    fn invalid_release_errors_and_is_not_cached() {
        let c = Catalog::new();
        let mut release = {
            let s = Shape::new(vec![4, 4]).unwrap();
            let m = DenseMatrix::<u64>::zeros(s);
            let out = Ebp::default()
                .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(1))
                .unwrap();
            PublishedRelease::from_sanitized(&out)
        };
        release.domain = vec![3, 3]; // tampered
        c.publish("bad", release);
        let engine = QueryEngine::new(1 << 20);
        assert!(engine.sanitized(&c.get("bad").unwrap()).is_err());
        assert_eq!(engine.stats().entries, 0);
    }

    #[test]
    fn clear_resets_residency() {
        let c = catalog_with(&["a"], 8);
        let engine = QueryEngine::new(1 << 20);
        engine.sanitized(&c.get("a").unwrap()).unwrap();
        engine.clear();
        let stats = engine.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
    }
}
