//! The release catalog: a sharded, lock-striped store of named, versioned
//! releases with directory persistence.
//!
//! Sharding bounds contention under the north-star workload (many analyst
//! threads resolving names while curators publish): each name hashes to
//! one of [`Catalog::shards`] independent `RwLock`-protected maps, so
//! reads of different names never serialize and a publish only blocks the
//! one shard it lands in.

use crate::ServeError;
use dpod_core::PublishedRelease;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::{Arc, RwLock};

/// Default shard count (power of two; plenty for tens of worker threads).
const DEFAULT_SHARDS: usize = 16;

/// Name of the JSON manifest written next to the `.dprl` frames.
const MANIFEST: &str = "catalog.json";

/// One catalogued release.
#[derive(Debug)]
pub struct CatalogEntry {
    /// Catalog name (analyst-visible identifier).
    pub name: String,
    /// Monotonic per-name version, bumped on every publish.
    pub version: u64,
    /// The published artifact (shared, immutable).
    pub release: Arc<PublishedRelease>,
}

/// Manifest row persisted alongside the binary frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    name: String,
    version: u64,
    file: String,
}

/// One lock stripe: the live entries plus the last version ever
/// assigned per name. `last_versions` outlives removal so that a
/// remove-then-republish still advances the version — the
/// `QueryEngine` cache keys on `(name, version)` and must never see a
/// version reused for different data.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, Arc<CatalogEntry>>,
    last_versions: HashMap<String, u64>,
}

/// A sharded, `RwLock`-striped in-memory release store.
#[derive(Debug)]
pub struct Catalog {
    shards: Vec<RwLock<Shard>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty catalog with `shards` lock stripes (minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Catalog {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
        }
    }

    /// Number of lock stripes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, name: &str) -> &RwLock<Shard> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Publishes `release` under `name`, returning the new version
    /// (1 for a never-before-seen name, previous + 1 otherwise — versions
    /// keep advancing across [`Self::remove`], never repeating).
    pub fn publish(&self, name: &str, release: PublishedRelease) -> u64 {
        let shard = self.shard_for(name);
        let mut shard = shard.write().unwrap_or_else(|e| e.into_inner());
        let version = shard.last_versions.get(name).copied().unwrap_or(0) + 1;
        shard.last_versions.insert(name.to_string(), version);
        shard.entries.insert(
            name.to_string(),
            Arc::new(CatalogEntry {
                name: name.to_string(),
                version,
                release: Arc::new(release),
            }),
        );
        version
    }

    /// Resolves `name` to its current entry.
    pub fn get(&self, name: &str) -> Option<Arc<CatalogEntry>> {
        self.shard_for(name)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .get(name)
            .cloned()
    }

    /// Removes `name`, returning whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.shard_for(name)
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .remove(name)
            .is_some()
    }

    /// All current entries, sorted by name.
    pub fn entries(&self) -> Vec<Arc<CatalogEntry>> {
        let mut out: Vec<Arc<CatalogEntry>> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(|e| e.into_inner())
                    .entries
                    .values()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// All current names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries().iter().map(|e| e.name.clone()).collect()
    }

    /// Number of catalogued releases.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// `true` when no releases are catalogued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persists every release to `dir`: one `DPRL` frame per entry plus a
    /// `catalog.json` manifest mapping names/versions to files. Returns
    /// the number of entries written.
    ///
    /// Frame files are keyed by release *name* (sanitized, hash-suffixed
    /// for uniqueness) and every write goes through a temp-file + rename,
    /// so a crash mid-save can never leave one name's manifest row
    /// pointing at another name's data — the worst case is a frame one
    /// publish newer than the manifest row describing it.
    ///
    /// # Errors
    /// [`ServeError`] wrapping the first IO or serialization failure.
    pub fn save_dir(&self, dir: &Path) -> Result<usize, ServeError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ServeError(format!("cannot create {}: {e}", dir.display())))?;
        let entries = self.entries();
        let mut manifest = Vec::with_capacity(entries.len());
        for entry in &entries {
            let file = frame_file_name(&entry.name);
            write_atomically(&dir.join(&file), &entry.release.to_bytes())?;
            manifest.push(ManifestEntry {
                name: entry.name.clone(),
                version: entry.version,
                file,
            });
        }
        let manifest_json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| ServeError(format!("cannot serialize manifest: {e}")))?;
        write_atomically(&dir.join(MANIFEST), manifest_json.as_bytes())?;
        // Delete frames no longer referenced (removed releases): the
        // manifest-less scan fallback in `load_dir` must not resurrect
        // a release the curator deliberately removed.
        let live: std::collections::HashSet<&str> =
            manifest.iter().map(|m| m.file.as_str()).collect();
        if let Ok(listing) = std::fs::read_dir(dir) {
            for dirent in listing.flatten() {
                let path = dirent.path();
                let is_stale_frame = path.extension().is_some_and(|e| e == "dprl")
                    && path
                        .file_name()
                        .and_then(|f| f.to_str())
                        .is_some_and(|f| !live.contains(f));
                if is_stale_frame {
                    std::fs::remove_file(&path).ok();
                }
            }
        }
        Ok(entries.len())
    }

    /// Loads a catalog persisted by [`Self::save_dir`]. Without a
    /// manifest, every `*.dprl` file in `dir` is loaded under its file
    /// stem at version 1 (so hand-assembled directories also serve).
    ///
    /// # Errors
    /// [`ServeError`] when the directory is unreadable, a frame fails to
    /// parse, or a manifest entry points at a missing file.
    pub fn load_dir(dir: &Path) -> Result<Self, ServeError> {
        let catalog = Catalog::new();
        let manifest_path = dir.join(MANIFEST);
        if manifest_path.is_file() {
            let text = std::fs::read_to_string(&manifest_path)
                .map_err(|e| ServeError(format!("cannot read {}: {e}", manifest_path.display())))?;
            let manifest: Vec<ManifestEntry> = serde_json::from_str(&text)
                .map_err(|e| ServeError(format!("bad manifest: {e}")))?;
            for row in manifest {
                let path = dir.join(&row.file);
                let release = read_release(&path)?;
                let shard = catalog.shard_for(&row.name);
                let mut shard = shard.write().unwrap_or_else(|e| e.into_inner());
                shard.last_versions.insert(row.name.clone(), row.version);
                shard.entries.insert(
                    row.name.clone(),
                    Arc::new(CatalogEntry {
                        name: row.name,
                        version: row.version,
                        release: Arc::new(release),
                    }),
                );
            }
        } else {
            let listing = std::fs::read_dir(dir)
                .map_err(|e| ServeError(format!("cannot read {}: {e}", dir.display())))?;
            for dirent in listing {
                let path = dirent
                    .map_err(|e| ServeError(format!("cannot list {}: {e}", dir.display())))?
                    .path();
                if path.extension().is_some_and(|e| e == "dprl") {
                    let name = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .ok_or_else(|| ServeError(format!("bad file name {}", path.display())))?;
                    let release = read_release(&path)?;
                    catalog.publish(&name, release);
                }
            }
        }
        Ok(catalog)
    }
}

/// Stable, filesystem-safe frame name for a release: a sanitized prefix
/// of the name plus a hash suffix disambiguating collisions ("a/b" vs
/// "a_b"). Keying by name keeps a file's content bound to one release
/// across saves.
fn frame_file_name(name: &str) -> String {
    let safe: String = name
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    format!("{safe}-{:016x}.dprl", h.finish())
}

/// Writes via a sibling temp file + rename (atomic on one filesystem).
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)
        .map_err(|e| ServeError(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| ServeError(format!("cannot rename into {}: {e}", path.display())))
}

fn read_release(path: &Path) -> Result<PublishedRelease, ServeError> {
    let bytes = std::fs::read(path)
        .map_err(|e| ServeError(format!("cannot read {}: {e}", path.display())))?;
    PublishedRelease::from_bytes(&bytes).map_err(|e| ServeError(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_core::{baselines::Identity, grid::Ebp, Mechanism};
    use dpod_dp::Epsilon;
    use dpod_fmatrix::{DenseMatrix, Shape};

    fn release(seed: u64) -> PublishedRelease {
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[1, 2], 300).unwrap();
        let out = Ebp::default()
            .sanitize(
                &m,
                Epsilon::new(0.5).unwrap(),
                &mut dpod_dp::seeded_rng(seed),
            )
            .unwrap();
        PublishedRelease::from_sanitized(&out)
    }

    #[test]
    fn publish_bumps_versions_per_name() {
        let c = Catalog::new();
        assert_eq!(c.publish("a", release(1)), 1);
        assert_eq!(c.publish("a", release(2)), 2);
        assert_eq!(c.publish("b", release(3)), 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a").unwrap().version, 2);
        assert_eq!(c.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(c.remove("a"));
        assert!(!c.remove("a"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn versions_advance_across_remove() {
        // (name, version) is the QueryEngine cache key; reusing a version
        // after remove would serve the deleted release's answers.
        let c = Catalog::new();
        assert_eq!(c.publish("a", release(1)), 1);
        assert_eq!(c.publish("a", release(2)), 2);
        assert!(c.remove("a"));
        assert_eq!(c.publish("a", release(3)), 3);
    }

    #[test]
    fn save_and_load_round_trip() {
        let c = Catalog::new();
        c.publish("ebp-city", release(7));
        c.publish("ebp-city", release(8)); // v2
        c.publish("other", release(9));
        let dir = std::env::temp_dir().join(format!("dpod_catalog_{}", std::process::id()));
        let written = c.save_dir(&dir).unwrap();
        assert_eq!(written, 2);

        let loaded = Catalog::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        let entry = loaded.get("ebp-city").unwrap();
        assert_eq!(entry.version, 2);
        assert_eq!(*entry.release, *c.get("ebp-city").unwrap().release);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_dir_deletes_frames_of_removed_releases() {
        let c = Catalog::new();
        c.publish("keep", release(1));
        c.publish("drop", release(2));
        let dir = std::env::temp_dir().join(format!("dpod_prune_{}", std::process::id()));
        c.save_dir(&dir).unwrap();
        c.remove("drop");
        c.save_dir(&dir).unwrap();
        let frames: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|d| d.ok())
            .map(|d| d.file_name().to_string_lossy().into_owned())
            .filter(|f| f.ends_with(".dprl"))
            .collect();
        assert_eq!(frames.len(), 1, "{frames:?}");
        assert!(frames[0].starts_with("keep-"));
        // Even the manifest-less scan fallback cannot resurrect "drop".
        std::fs::remove_file(dir.join(MANIFEST)).unwrap();
        let scanned = Catalog::load_dir(&dir).unwrap();
        assert_eq!(scanned.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_without_manifest_scans_frames() {
        let dir = std::env::temp_dir().join(format!("dpod_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("city.dprl"), release(4).to_bytes()).unwrap();
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        let loaded = Catalog::load_dir(&dir).unwrap();
        assert_eq!(loaded.names(), vec!["city".to_string()]);
        assert_eq!(loaded.get("city").unwrap().version, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_corrupt_frames() {
        let dir = std::env::temp_dir().join(format!("dpod_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.dprl"), b"not a frame").unwrap();
        assert!(Catalog::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_publish_and_get() {
        let c = Arc::new(Catalog::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let name = format!("r{}", t % 4);
                for _ in 0..50 {
                    c.publish(&name, release(t));
                    let entry = c.get(&name).expect("entry visible after publish");
                    assert_eq!(entry.name, name);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 4);
        // Each name saw 2 writers × 50 publishes.
        for i in 0..4 {
            assert_eq!(c.get(&format!("r{i}")).unwrap().version, 100);
        }
    }

    #[test]
    fn per_entry_releases_catalog_too() {
        let s = Shape::new(vec![4, 4]).unwrap();
        let m = DenseMatrix::<u64>::zeros(s);
        let out = Identity
            .sanitize(&m, Epsilon::new(1.0).unwrap(), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        let c = Catalog::new();
        c.publish("id", PublishedRelease::from_sanitized(&out));
        assert_eq!(c.get("id").unwrap().release.len(), 16);
    }
}
