//! The release catalog: a sharded, lock-striped store of named, versioned
//! releases with directory persistence.
//!
//! Sharding bounds contention under the north-star workload (many analyst
//! threads resolving names while curators publish): each name hashes to
//! one of [`Catalog::shards`] independent `RwLock`-protected maps, so
//! reads of different names never serialize and a publish only blocks the
//! one shard it lands in.

use crate::ServeError;
use dpod_core::PublishedRelease;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default shard count (power of two; plenty for tens of worker threads).
const DEFAULT_SHARDS: usize = 16;

/// Name of the JSON manifest written next to the `.dprl` frames.
const MANIFEST: &str = "catalog.json";

/// One catalogued release.
#[derive(Debug)]
pub struct CatalogEntry {
    /// Catalog name (analyst-visible identifier).
    pub name: String,
    /// Monotonic per-name version, bumped on every publish.
    pub version: u64,
    /// The published artifact (shared, immutable).
    pub release: Arc<PublishedRelease>,
}

/// Manifest row persisted alongside the binary frames.
///
/// A row with `deleted: true` is a *tombstone*: the release was removed,
/// its frame file is gone, but its last version is retained so that a
/// reload followed by a republish keeps the per-name version sequence
/// monotonic (the `QueryEngine` cache keys on `(name, version)` and must
/// never see a version reused for different data, even across a restart).
/// `checksum` is an FNV-1a digest of the frame bytes: versions alone
/// cannot prove a frame is current (a fresh catalog that never loaded
/// this directory can re-assign an existing `(name, version)` pair to
/// different data), so the incremental skip requires the content digest
/// to match too.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    name: String,
    version: u64,
    file: String,
    checksum: u64,
    deleted: bool,
}

/// FNV-1a over frame bytes: stable across processes and toolchains
/// (unlike `DefaultHasher`, which carries no cross-version guarantee),
/// which is what a persisted digest needs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What one [`Catalog::save_dir`] call actually did on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaveReport {
    /// Frames written because the release was new or republished.
    pub written: usize,
    /// Frames left untouched (same name, version and file already on
    /// disk) — the incremental fast path.
    pub skipped: usize,
    /// Stale files removed (frames of removed releases, orphans from an
    /// interrupted save, leftover temp files).
    pub pruned: usize,
    /// Tombstone rows recorded for removed releases.
    pub tombstones: usize,
}

impl SaveReport {
    /// Number of live releases the saved directory holds.
    pub fn live(&self) -> usize {
        self.written + self.skipped
    }
}

/// One lock stripe: the live entries plus the last version ever
/// assigned per name. `last_versions` outlives removal so that a
/// remove-then-republish still advances the version — the
/// `QueryEngine` cache keys on `(name, version)` and must never see a
/// version reused for different data.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, Arc<CatalogEntry>>,
    last_versions: HashMap<String, u64>,
}

/// Serializes every [`Catalog::save_dir`] in this process — across
/// catalog instances, not just per instance. Concurrent savers would
/// otherwise interleave manifest writes, and the prune step's "this
/// process's temp files are sweepable" rule is only sound if no other
/// save in the process can be mid-`write_atomically` (two instances
/// share one pid, so a per-instance lock would not protect them from
/// each other). Publishes never take this lock — saving runs against a
/// point-in-time snapshot.
static SAVE_LOCK: Mutex<()> = Mutex::new(());

/// A sharded, `RwLock`-striped in-memory release store.
#[derive(Debug)]
pub struct Catalog {
    shards: Vec<RwLock<Shard>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty catalog with `shards` lock stripes (minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Catalog {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
        }
    }

    /// Number of lock stripes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, name: &str) -> &RwLock<Shard> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Publishes `release` under `name`, returning the new version
    /// (1 for a never-before-seen name, previous + 1 otherwise — versions
    /// keep advancing across [`Self::remove`], never repeating).
    pub fn publish(&self, name: &str, release: PublishedRelease) -> u64 {
        let shard = self.shard_for(name);
        let mut shard = shard.write().unwrap_or_else(|e| e.into_inner());
        let version = shard.last_versions.get(name).copied().unwrap_or(0) + 1;
        shard.last_versions.insert(name.to_string(), version);
        shard.entries.insert(
            name.to_string(),
            Arc::new(CatalogEntry {
                name: name.to_string(),
                version,
                release: Arc::new(release),
            }),
        );
        version
    }

    /// Resolves `name` to its current entry.
    pub fn get(&self, name: &str) -> Option<Arc<CatalogEntry>> {
        self.shard_for(name)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .get(name)
            .cloned()
    }

    /// Removes `name`, returning whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.shard_for(name)
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .remove(name)
            .is_some()
    }

    /// All current entries, sorted by name.
    pub fn entries(&self) -> Vec<Arc<CatalogEntry>> {
        let mut out: Vec<Arc<CatalogEntry>> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(|e| e.into_inner())
                    .entries
                    .values()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// All current names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries().iter().map(|e| e.name.clone()).collect()
    }

    /// Number of catalogued releases.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// `true` when no releases are catalogued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One consistent pass over the shards: the live entries plus every
    /// last version this catalog has assigned. Both views of a name come
    /// from the same lock acquisition (a name lives in exactly one
    /// shard), so a concurrent publish is either wholly visible or
    /// wholly absent — it can never appear in `last_versions` but not in
    /// the entries, which would be misread as a removal.
    fn snapshot(&self) -> (Vec<Arc<CatalogEntry>>, Vec<(String, u64)>) {
        let mut entries = Vec::new();
        let mut versions = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap_or_else(|e| e.into_inner());
            entries.extend(shard.entries.values().cloned());
            versions.extend(shard.last_versions.iter().map(|(n, v)| (n.clone(), *v)));
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        (entries, versions)
    }

    /// Persists the catalog to `dir` *incrementally*: one `DPRL` frame
    /// per release plus a `catalog.json` manifest, writing only frames
    /// whose release is new or republished since the directory's last
    /// save. An unchanged release's frame file is not touched at all —
    /// same bytes, same mtime. Removed releases leave a tombstone row
    /// in the manifest (preserving version monotonicity across a
    /// reload) and their frames are pruned.
    ///
    /// Frame files are keyed by release *name* (sanitized, hash-suffixed
    /// for uniqueness) and every write goes through a uniquely-named
    /// temp file + rename, so a crash mid-save can never leave one
    /// name's manifest row pointing at another name's data — the worst
    /// case is a frame one publish newer than the manifest row
    /// describing it, which the next save repairs. Concurrent
    /// `save_dir` calls anywhere in the process serialize on one
    /// internal lock; publishes never wait on a save.
    ///
    /// # Errors
    /// [`ServeError`] wrapping the first IO or serialization failure.
    pub fn save_dir(&self, dir: &Path) -> Result<SaveReport, ServeError> {
        let _guard = SAVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::fs::create_dir_all(dir)
            .map_err(|e| ServeError(format!("cannot create {}: {e}", dir.display())))?;
        // Best-effort read of the previous manifest: a missing or
        // corrupt one simply downgrades this save to a full rewrite.
        let previous: HashMap<String, ManifestEntry> = std::fs::read_to_string(dir.join(MANIFEST))
            .ok()
            .and_then(|text| serde_json::from_str::<Vec<ManifestEntry>>(&text).ok())
            .map(|rows| rows.into_iter().map(|r| (r.name.clone(), r)).collect())
            .unwrap_or_default();

        let (entries, last_versions) = self.snapshot();
        let live: HashSet<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        let mut report = SaveReport::default();
        let mut manifest = Vec::with_capacity(entries.len());
        for entry in &entries {
            let file = frame_file_name(&entry.name);
            let bytes = entry.release.to_bytes();
            let checksum = fnv1a(&bytes);
            // Skipping requires the on-disk content to provably match:
            // name, version, file AND content digest. Version equality
            // alone is not proof — this catalog may never have loaded
            // the directory it is saving into.
            let unchanged = previous.get(&entry.name).is_some_and(|old| {
                !old.deleted
                    && old.version == entry.version
                    && old.file == file
                    && old.checksum == checksum
                    && dir.join(&file).is_file()
            });
            if unchanged {
                report.skipped += 1;
            } else {
                write_atomically(&dir.join(&file), &bytes)?;
                report.written += 1;
            }
            manifest.push(ManifestEntry {
                name: entry.name.clone(),
                version: entry.version,
                file,
                checksum,
                deleted: false,
            });
        }

        // Tombstones: every name this catalog has ever versioned, or the
        // previous manifest recorded, that is no longer live. Keep the
        // highest version seen from either source.
        let mut tombstones: BTreeMap<String, u64> = BTreeMap::new();
        for (name, version) in last_versions {
            if !live.contains(name.as_str()) {
                let slot = tombstones.entry(name).or_insert(0);
                *slot = (*slot).max(version);
            }
        }
        for (name, old) in &previous {
            if !live.contains(name.as_str()) {
                let slot = tombstones.entry(name.clone()).or_insert(0);
                *slot = (*slot).max(old.version);
            }
        }
        for (name, version) in tombstones {
            manifest.push(ManifestEntry {
                name,
                version,
                file: String::new(),
                checksum: 0,
                deleted: true,
            });
            report.tombstones += 1;
        }

        let manifest_json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| ServeError(format!("cannot serialize manifest: {e}")))?;
        write_atomically(&dir.join(MANIFEST), manifest_json.as_bytes())?;

        // Prune everything the new manifest does not reference: frames
        // of removed releases (the manifest-less scan fallback in
        // `load_dir` must not resurrect them), orphans from interrupted
        // saves, and sweepable temp files. This process's temp files are
        // safe to sweep (the save lock means no sibling save is
        // mid-write); another live process may be mid-`write_atomically`
        // right now, so foreign temp files are only swept once old
        // enough to be a crashed writer's leftover.
        let referenced: HashSet<&str> = manifest
            .iter()
            .filter(|m| !m.deleted)
            .map(|m| m.file.as_str())
            .collect();
        if let Ok(listing) = std::fs::read_dir(dir) {
            for dirent in listing.flatten() {
                let path = dirent.path();
                let stale_frame = path.extension().is_some_and(|e| e == "dprl")
                    && path
                        .file_name()
                        .and_then(|f| f.to_str())
                        .is_some_and(|f| !referenced.contains(f));
                let sweepable_tmp =
                    path.extension().is_some_and(|e| e == "tmp") && tmp_is_sweepable(&path);
                if (stale_frame || sweepable_tmp) && std::fs::remove_file(&path).is_ok() {
                    report.pruned += 1;
                }
            }
        }
        Ok(report)
    }

    /// Loads a catalog persisted by [`Self::save_dir`]. Tombstone rows
    /// restore only the per-name version floor, so a republish after
    /// reload continues the version sequence instead of restarting it.
    /// Without a manifest, every `*.dprl` file in `dir` is loaded under
    /// its file stem at version 1 (so hand-assembled directories also
    /// serve).
    ///
    /// # Errors
    /// [`ServeError`] when the directory is unreadable, a frame fails to
    /// parse, or a manifest entry points at a missing file.
    pub fn load_dir(dir: &Path) -> Result<Self, ServeError> {
        let catalog = Catalog::new();
        let manifest_path = dir.join(MANIFEST);
        if manifest_path.is_file() {
            let text = std::fs::read_to_string(&manifest_path)
                .map_err(|e| ServeError(format!("cannot read {}: {e}", manifest_path.display())))?;
            let manifest: Vec<ManifestEntry> = serde_json::from_str(&text)
                .map_err(|e| ServeError(format!("bad manifest: {e}")))?;
            for row in manifest {
                let shard = catalog.shard_for(&row.name);
                if row.deleted {
                    let mut shard = shard.write().unwrap_or_else(|e| e.into_inner());
                    let floor = shard.last_versions.entry(row.name).or_insert(0);
                    *floor = (*floor).max(row.version);
                    continue;
                }
                let path = dir.join(&row.file);
                let release = read_release(&path)?;
                let mut shard = shard.write().unwrap_or_else(|e| e.into_inner());
                shard.last_versions.insert(row.name.clone(), row.version);
                shard.entries.insert(
                    row.name.clone(),
                    Arc::new(CatalogEntry {
                        name: row.name,
                        version: row.version,
                        release: Arc::new(release),
                    }),
                );
            }
        } else {
            let listing = std::fs::read_dir(dir)
                .map_err(|e| ServeError(format!("cannot read {}: {e}", dir.display())))?;
            for dirent in listing {
                let path = dirent
                    .map_err(|e| ServeError(format!("cannot list {}: {e}", dir.display())))?
                    .path();
                if path.extension().is_some_and(|e| e == "dprl") {
                    let name = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .ok_or_else(|| ServeError(format!("bad file name {}", path.display())))?;
                    let release = read_release(&path)?;
                    catalog.publish(&name, release);
                }
            }
        }
        Ok(catalog)
    }
}

/// Stable, filesystem-safe frame name for a release: a sanitized prefix
/// of the name plus a hash suffix disambiguating collisions ("a/b" vs
/// "a_b"). Keying by name keeps a file's content bound to one release
/// across saves.
fn frame_file_name(name: &str) -> String {
    let safe: String = name
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    format!("{safe}-{:016x}.dprl", h.finish())
}

/// Whether a temp file may be deleted during prune: ours (the save lock
/// guarantees this process has no write in flight by prune time), or so
/// old it can only be a crashed writer's leftover — never another live
/// process's in-flight rename.
fn tmp_is_sweepable(path: &Path) -> bool {
    let marker = format!(".{}-", std::process::id());
    let ours = path
        .file_name()
        .and_then(|f| f.to_str())
        .is_some_and(|f| f.contains(&marker));
    if ours {
        return true;
    }
    const STALE: std::time::Duration = std::time::Duration::from_secs(15 * 60);
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .is_some_and(|age| age > STALE)
}

/// Writes via a uniquely-named sibling temp file + rename (atomic on one
/// filesystem). The temp name carries the process id and a global
/// sequence number so writers racing on the same target — two catalogs
/// saving into one directory, or two processes — never interleave bytes
/// in a shared temp file; last rename wins cleanly.
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| "frame".to_string());
    tmp_name.push_str(&format!(".{}-{seq}.tmp", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, bytes)
        .map_err(|e| ServeError(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| ServeError(format!("cannot rename into {}: {e}", path.display())))
}

fn read_release(path: &Path) -> Result<PublishedRelease, ServeError> {
    let bytes = std::fs::read(path)
        .map_err(|e| ServeError(format!("cannot read {}: {e}", path.display())))?;
    PublishedRelease::from_bytes(&bytes).map_err(|e| ServeError(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_core::{baselines::Identity, grid::Ebp, Mechanism};
    use dpod_dp::Epsilon;
    use dpod_fmatrix::{DenseMatrix, Shape};

    fn release(seed: u64) -> PublishedRelease {
        let s = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[1, 2], 300).unwrap();
        let out = Ebp::default()
            .sanitize(
                &m,
                Epsilon::new(0.5).unwrap(),
                &mut dpod_dp::seeded_rng(seed),
            )
            .unwrap();
        PublishedRelease::from_sanitized(&out)
    }

    #[test]
    fn publish_bumps_versions_per_name() {
        let c = Catalog::new();
        assert_eq!(c.publish("a", release(1)), 1);
        assert_eq!(c.publish("a", release(2)), 2);
        assert_eq!(c.publish("b", release(3)), 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a").unwrap().version, 2);
        assert_eq!(c.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(c.remove("a"));
        assert!(!c.remove("a"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn versions_advance_across_remove() {
        // (name, version) is the QueryEngine cache key; reusing a version
        // after remove would serve the deleted release's answers.
        let c = Catalog::new();
        assert_eq!(c.publish("a", release(1)), 1);
        assert_eq!(c.publish("a", release(2)), 2);
        assert!(c.remove("a"));
        assert_eq!(c.publish("a", release(3)), 3);
    }

    #[test]
    fn save_and_load_round_trip() {
        let c = Catalog::new();
        c.publish("ebp-city", release(7));
        c.publish("ebp-city", release(8)); // v2
        c.publish("other", release(9));
        let dir = std::env::temp_dir().join(format!("dpod_catalog_{}", std::process::id()));
        let report = c.save_dir(&dir).unwrap();
        assert_eq!(report.written, 2);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.live(), 2);

        let loaded = Catalog::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        let entry = loaded.get("ebp-city").unwrap();
        assert_eq!(entry.version, 2);
        assert_eq!(*entry.release, *c.get("ebp-city").unwrap().release);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_dir_deletes_frames_of_removed_releases() {
        let c = Catalog::new();
        c.publish("keep", release(1));
        c.publish("drop", release(2));
        let dir = std::env::temp_dir().join(format!("dpod_prune_{}", std::process::id()));
        c.save_dir(&dir).unwrap();
        c.remove("drop");
        c.save_dir(&dir).unwrap();
        let frames: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|d| d.ok())
            .map(|d| d.file_name().to_string_lossy().into_owned())
            .filter(|f| f.ends_with(".dprl"))
            .collect();
        assert_eq!(frames.len(), 1, "{frames:?}");
        assert!(frames[0].starts_with("keep-"));
        // Even the manifest-less scan fallback cannot resurrect "drop".
        std::fs::remove_file(dir.join(MANIFEST)).unwrap();
        let scanned = Catalog::load_dir(&dir).unwrap();
        assert_eq!(scanned.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_without_manifest_scans_frames() {
        let dir = std::env::temp_dir().join(format!("dpod_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("city.dprl"), release(4).to_bytes()).unwrap();
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        let loaded = Catalog::load_dir(&dir).unwrap();
        assert_eq!(loaded.names(), vec!["city".to_string()]);
        assert_eq!(loaded.get("city").unwrap().version, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_corrupt_frames() {
        let dir = std::env::temp_dir().join(format!("dpod_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.dprl"), b"not a frame").unwrap();
        assert!(Catalog::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_publish_and_get() {
        let c = Arc::new(Catalog::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let name = format!("r{}", t % 4);
                for _ in 0..50 {
                    c.publish(&name, release(t));
                    let entry = c.get(&name).expect("entry visible after publish");
                    assert_eq!(entry.name, name);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 4);
        // Each name saw 2 writers × 50 publishes.
        for i in 0..4 {
            assert_eq!(c.get(&format!("r{i}")).unwrap().version, 100);
        }
    }

    /// Regression for the rewrite-everything behavior: a second save
    /// with nothing republished must not touch an existing frame file —
    /// identical bytes AND identical mtime (i.e. no write happened).
    #[test]
    fn second_save_leaves_unchanged_frames_untouched() {
        let c = Catalog::new();
        c.publish("stable", release(11));
        c.publish("churning", release(12));
        let dir = std::env::temp_dir().join(format!("dpod_incr_{}", std::process::id()));
        let first = c.save_dir(&dir).unwrap();
        assert_eq!((first.written, first.skipped), (2, 0));

        let stable_path = dir.join(frame_file_name("stable"));
        let bytes_before = std::fs::read(&stable_path).unwrap();
        let mtime_before = std::fs::metadata(&stable_path).unwrap().modified().unwrap();
        // Give the clock room so a rewrite would be observable even on
        // coarse-mtime filesystems.
        std::thread::sleep(std::time::Duration::from_millis(20));

        c.publish("churning", release(13)); // v2: only this frame changes
        let second = c.save_dir(&dir).unwrap();
        assert_eq!((second.written, second.skipped), (1, 1));
        assert_eq!(std::fs::read(&stable_path).unwrap(), bytes_before);
        assert_eq!(
            std::fs::metadata(&stable_path).unwrap().modified().unwrap(),
            mtime_before,
            "unchanged frame was rewritten"
        );

        // A third save with no publishes at all writes nothing.
        let third = c.save_dir(&dir).unwrap();
        assert_eq!((third.written, third.skipped), (0, 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A frame that vanished out from under the manifest (operator
    /// deleted it, partial copy) is re-written, not skipped.
    #[test]
    fn save_repairs_a_missing_frame() {
        let c = Catalog::new();
        c.publish("a", release(21));
        let dir = std::env::temp_dir().join(format!("dpod_repair_{}", std::process::id()));
        c.save_dir(&dir).unwrap();
        let frame = dir.join(frame_file_name("a"));
        std::fs::remove_file(&frame).unwrap();
        let report = c.save_dir(&dir).unwrap();
        assert_eq!((report.written, report.skipped), (1, 0));
        assert!(frame.is_file());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Tombstones carry the version floor across save → load → republish:
    /// the reloaded catalog must not restart a removed name at version 1.
    #[test]
    fn tombstones_keep_versions_monotonic_across_reload() {
        let c = Catalog::new();
        c.publish("a", release(31));
        c.publish("a", release(32)); // v2
        c.publish("b", release(33));
        let dir = std::env::temp_dir().join(format!("dpod_tomb_{}", std::process::id()));
        c.save_dir(&dir).unwrap();
        c.remove("a");
        let report = c.save_dir(&dir).unwrap();
        assert_eq!(report.tombstones, 1);
        assert_eq!(report.live(), 1);

        let reloaded = Catalog::load_dir(&dir).unwrap();
        assert_eq!(reloaded.len(), 1, "tombstone must not resurrect 'a'");
        assert!(reloaded.get("a").is_none());
        // The republished version continues past the tombstoned v2.
        assert_eq!(reloaded.publish("a", release(34)), 3);
        // And the tombstone clears once the name is live again.
        let after = reloaded.save_dir(&dir).unwrap();
        assert_eq!(after.tombstones, 0);
        assert_eq!(
            Catalog::load_dir(&dir).unwrap().get("a").unwrap().version,
            3
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The incremental skip must be content-aware: a catalog that never
    /// loaded the directory can reuse an existing `(name, version)` pair
    /// for different data, and that save must write, not skip.
    #[test]
    fn save_rewrites_when_same_version_holds_different_bytes() {
        let dir = std::env::temp_dir().join(format!("dpod_cksum_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let first = Catalog::new();
        first.publish("x", release(51));
        first.save_dir(&dir).unwrap();

        // A fresh catalog (same name, same version 1, different data)
        // saving into the same directory.
        let second = Catalog::new();
        second.publish("x", release(52));
        let report = second.save_dir(&dir).unwrap();
        assert_eq!((report.written, report.skipped), (1, 0));
        let loaded = Catalog::load_dir(&dir).unwrap();
        assert_eq!(
            *loaded.get("x").unwrap().release,
            *second.get("x").unwrap().release,
            "directory must hold the saving catalog's bytes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Prune sweeps this process's leftover temp files but must not
    /// delete a fresh foreign one — another process could be mid-way
    /// through its atomic rename.
    #[test]
    fn prune_spares_fresh_foreign_temp_files() {
        let c = Catalog::new();
        c.publish("a", release(41));
        let dir = std::env::temp_dir().join(format!("dpod_tmp_sweep_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ours = dir.join(format!("x.dprl.{}-999.tmp", std::process::id()));
        let foreign = dir.join("x.dprl.1-0.tmp");
        std::fs::write(&ours, b"ours").unwrap();
        std::fs::write(&foreign, b"foreign").unwrap();
        c.save_dir(&dir).unwrap();
        assert!(!ours.exists(), "own temp file must be swept");
        assert!(foreign.exists(), "fresh foreign temp file must survive");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_entry_releases_catalog_too() {
        let s = Shape::new(vec![4, 4]).unwrap();
        let m = DenseMatrix::<u64>::zeros(s);
        let out = Identity
            .sanitize(&m, Epsilon::new(1.0).unwrap(), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        let c = Catalog::new();
        c.publish("id", PublishedRelease::from_sanitized(&out));
        assert_eq!(c.get("id").unwrap().release.len(), 16);
    }
}
