//! Property tests for the `DPRB` binary protocol: any request or
//! response round-trips through the binary codec, and the binary path is
//! *JSON-path-equivalent* — an arbitrary request decoded from its binary
//! encoding produces, against a live server, exactly the answers (in
//! order) that the NDJSON encoding of the same request produces.

use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
use dpod_dp::Epsilon;
use dpod_fmatrix::{DenseMatrix, Shape};
use dpod_serve::protocol::{
    ReleaseHits, ReleaseInfo, Request, Response, ServerStats, StageLatency,
};
use dpod_serve::{wire, Catalog, Server};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// A shared reference server: two 8×8 releases under the names the
/// request strategy likes to draw.
fn server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| {
        let catalog = Catalog::new();
        for (i, name) in ["city", "transit"].into_iter().enumerate() {
            let shape = Shape::new(vec![8, 8]).unwrap();
            let mut m = DenseMatrix::<u64>::zeros(shape);
            m.add_at(&[i, 7 - i], 400).unwrap();
            let out = Ebp::default()
                .sanitize(
                    &m,
                    Epsilon::new(0.5).unwrap(),
                    &mut dpod_dp::seeded_rng(30 + i as u64),
                )
                .unwrap();
            catalog.publish(name, PublishedRelease::from_sanitized(&out));
        }
        Server::new(Arc::new(catalog), 1 << 22)
    })
}

/// Release names: mostly catalogued ones, sometimes unknown or empty so
/// the error paths are exercised too.
fn arb_name() -> impl Strategy<Value = String> {
    (0usize..5, prop::collection::vec(0u32..36, 0..10)).prop_map(|(kind, raw)| match kind {
        0 | 1 => "city".to_string(),
        2 => "transit".to_string(),
        3 => String::new(),
        _ => raw
            .iter()
            .map(|c| char::from_digit(*c, 36).expect("digit < 36"))
            .collect(),
    })
}

/// One range: 0–3 dimensions, coordinates straying past the 8×8 domain
/// so in-domain, out-of-domain and lo>hi corners all occur.
fn arb_range() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (0usize..4).prop_flat_map(|d| {
        (
            prop::collection::vec(0usize..12, d),
            prop::collection::vec(0usize..12, d),
        )
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0usize..8,
        arb_name(),
        prop::collection::vec(arb_range(), 0..24),
        arb_range(),
    )
        .prop_map(|(kind, release, ranges, single)| match kind {
            0 | 1 => Request::Query {
                release,
                lo: single.0,
                hi: single.1,
            },
            // Batches dominate: they are the protocol's reason to exist,
            // and mixing per-range dimensionality exercises both the
            // packed and the heterogeneous encodings.
            2..=5 => Request::Batch { release, ranges },
            6 => Request::List,
            _ => Request::Stats,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0usize..5,
        prop::collection::vec(any::<f64>(), 0..32),
        arb_name(),
        0u64..1_000_000,
        prop::collection::vec(1usize..64, 0..4),
    )
        .prop_map(|(kind, values, name, counter, domain)| match kind {
            0 => Response::Value {
                value: values.first().copied().unwrap_or(0.5),
            },
            1 => Response::Values { values },
            2 => Response::Releases {
                releases: vec![ReleaseInfo {
                    name: name.clone(),
                    version: counter,
                    mechanism: name,
                    epsilon: 0.25,
                    released_values: domain.iter().product(),
                    domain,
                }],
            },
            3 => Response::Stats {
                stats: ServerStats {
                    releases: domain.len(),
                    queries: counter,
                    cache_entries: 1,
                    cache_bytes: counter as usize,
                    cache_hits: counter / 2,
                    cache_misses: counter / 3,
                    index_entries: (counter % 5) as usize,
                    index_hits: counter / 4,
                    index_misses: counter / 5,
                    index_build_nanos: counter.wrapping_mul(17),
                    cache_hit_rate: (counter % 100) as f64 / 100.0,
                    index_hit_rate: (counter % 7) as f64 / 7.0,
                    open_connections: counter % 513,
                    accepted_connections: counter.wrapping_mul(3),
                    release_hits: vec![ReleaseHits {
                        name: name.clone(),
                        hits: counter,
                    }],
                    evicted_stat_entries: counter % 3,
                    // 0–2 rows so the empty and populated tails both
                    // travel through the codec.
                    stage_latencies: (0..(counter % 3) as usize)
                        .map(|i| StageLatency {
                            stage: ["execute", "queue"][i % 2].to_string(),
                            transport: ["binary", "json"][i % 2].to_string(),
                            count: counter.wrapping_add(i as u64),
                            p50_nanos: counter,
                            p90_nanos: counter.wrapping_mul(2),
                            p99_nanos: counter.wrapping_mul(4),
                            p999_nanos: counter.wrapping_mul(8),
                        })
                        .collect(),
                    series: domain.len(),
                    partial_entries: (counter % 9) as usize,
                    partial_hits: counter / 6,
                    partial_misses: counter / 7,
                    encoded_entries: (counter % 11) as usize,
                    encoded_hits: counter / 8,
                    encoded_misses: counter / 9,
                    encoded_bytes: (counter % 4096) as usize,
                    pyramid_entries: (counter % 13) as usize,
                    pyramid_hits: counter / 10,
                    pyramid_misses: counter / 11,
                    pyramid_bytes: (counter % 8192) as usize,
                },
            },
            _ => Response::Error { message: name },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Binary and JSON encodings decode to the same `Request` value.
    #[test]
    fn requests_round_trip_identically(req in arb_request()) {
        let via_wire = wire::decode_request(&wire::encode_request(&req))
            .map_err(|e| TestCaseError::fail(e.0))?;
        prop_assert_eq!(&via_wire, &req);
        let json = serde_json::to_string(&req)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let via_json: Request = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&via_json, &via_wire);
    }

    /// Binary response frames are lossless, down to f64 bit patterns.
    #[test]
    fn responses_round_trip_identically(resp in arb_response()) {
        let via_wire = wire::decode_response(&wire::encode_response(&resp))
            .map_err(|e| TestCaseError::fail(e.0))?;
        prop_assert_eq!(&via_wire, &resp);
    }

    /// The tentpole equivalence: for ANY request — batches of arbitrary
    /// (even degenerate) ranges included — the server's answer to the
    /// binary-decoded request is JSON-path-equivalent to its answer to
    /// the NDJSON-decoded request: same variant, same values, same
    /// order, same serialized bytes.
    #[test]
    fn wire_and_json_paths_answer_identically(req in arb_request()) {
        let json = serde_json::to_string(&req)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let via_json: Request = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let via_wire = wire::decode_request(&wire::encode_request(&req))
            .map_err(|e| TestCaseError::fail(e.0))?;

        let json_answer = server().handle(&via_json);
        let wire_answer = server().handle(&via_wire);
        // The binary answer, once more through its own codec (as the TCP
        // path would carry it), serializes to the same JSON document the
        // NDJSON path would have written.
        let wire_answer = wire::decode_response(&wire::encode_response(&wire_answer))
            .map_err(|e| TestCaseError::fail(e.0))?;
        let a = serde_json::to_string(&json_answer)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let b = serde_json::to_string(&wire_answer)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(a, b);
    }
}
