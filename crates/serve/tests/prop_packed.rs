//! Packed-wire and encoded-memo acceptance tests.
//!
//! * Property tests: zigzag and varint primitives round-trip across
//!   their whole domains.
//! * 256 deterministic mixed requests answer identically across all
//!   three transports — in-process dispatch, NDJSON over TCP, and the
//!   `DPRB` binary protocol — with the binary protocol exercised both
//!   legacy and packed (feature bit negotiated in the preamble).
//! * Warm encoded-memo hits serve bit-identical bytes to cold
//!   execution, on one server and across identically-seeded servers.

use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
use dpod_dp::Epsilon;
use dpod_fmatrix::{DenseMatrix, Shape};
use dpod_query::QueryPlan;
use dpod_serve::protocol::{Request, Response};
use dpod_serve::{spawn, wire, Catalog, ResponseEncoding, Server};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #[test]
    fn zigzag_round_trips(bits in any::<u64>()) {
        let v = bits as i64;
        prop_assert_eq!(wire::unzigzag(wire::zigzag(v)), v);
    }

    #[test]
    fn uvarint_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        wire::put_uvarint(&mut buf, v);
        prop_assert!(buf.len() <= 10);
        let mut pos = 0;
        let back = wire::get_uvarint(&buf, &mut pos, "v")
            .map_err(|e| TestCaseError::fail(e.0))?;
        prop_assert_eq!(back, v);
        prop_assert_eq!(pos, buf.len());
    }

    /// Concatenated varints decode back in order (the packed-blob
    /// framing depends on self-delimiting entries).
    #[test]
    fn uvarint_sequences_round_trip(vs in prop::collection::vec(any::<u64>(), 0..64)) {
        let mut buf = Vec::new();
        for v in &vs {
            wire::put_uvarint(&mut buf, *v);
        }
        let mut pos = 0;
        for v in &vs {
            let back = wire::get_uvarint(&buf, &mut pos, "v")
                .map_err(|e| TestCaseError::fail(e.0))?;
            prop_assert_eq!(back, *v);
        }
        prop_assert_eq!(pos, buf.len());
    }
}

/// A small deterministic generator (xorshift) so the 256 cases are the
/// same on every run, with no proptest shrink machinery between the
/// four live transports.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn seeded_server() -> Arc<Server> {
    let catalog = Arc::new(Catalog::new());
    for (i, name) in ["city", "transit"].into_iter().enumerate() {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(shape);
        m.add_at(&[i, 7 - i], 400).unwrap();
        m.add_at(&[3, 3], 90).unwrap();
        let out = Ebp::default()
            .sanitize(
                &m,
                Epsilon::new(0.5).unwrap(),
                &mut dpod_dp::seeded_rng(900 + i as u64),
            )
            .unwrap();
        catalog.publish(name, PublishedRelease::from_sanitized(&out));
    }
    Arc::new(Server::new(catalog, 16 << 20))
}

fn request_for(rng: &mut Rng) -> Request {
    let release = match rng.below(5) {
        0 => "transit".to_string(),
        1 => "nowhere".to_string(), // error path
        _ => "city".to_string(),
    };
    match rng.below(8) {
        0 => Request::Query {
            release,
            lo: vec![rng.below(8) as usize, rng.below(8) as usize],
            hi: vec![rng.below(10) as usize, rng.below(10) as usize],
        },
        1 | 2 => {
            // Dense batches: the packed coordinate encoding's target.
            let n = rng.below(24) as usize;
            let ranges = (0..n)
                .map(|_| {
                    let lo = vec![rng.below(8) as usize, rng.below(8) as usize];
                    let hi = vec![lo[0] + rng.below(3) as usize, lo[1] + rng.below(3) as usize];
                    (lo, hi)
                })
                .collect();
            Request::Batch { release, ranges }
        }
        3 => Request::Plan {
            release,
            plan: QueryPlan::Marginal {
                keep: vec![rng.below(2) as usize],
            },
        },
        4 => Request::Plan {
            release,
            plan: QueryPlan::TopK {
                k: rng.below(9) as usize,
            },
        },
        5 => Request::Plan {
            release,
            plan: QueryPlan::Many {
                plans: vec![
                    QueryPlan::Total,
                    QueryPlan::Marginal { keep: vec![0, 1] },
                    QueryPlan::TopK { k: 3 },
                ],
            },
        },
        6 => Request::Plan {
            release,
            plan: QueryPlan::Total,
        },
        _ => Request::List,
    }
}

fn ndjson_round_trip(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    req: &Request,
) -> Response {
    let mut line = serde_json::to_string(req).unwrap();
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut answer = String::new();
    reader.read_line(&mut answer).unwrap();
    serde_json::from_str(answer.trim()).unwrap()
}

/// The satellite acceptance test: 256 deterministic mixed requests,
/// answered over four live paths — in-process, NDJSON/TCP, legacy
/// `DPRB`, and packed `DPRB` — produce JSON-identical responses.
#[test]
fn packed_and_unpacked_transports_answer_identically_256_cases() {
    let server = seeded_server();
    let handle = spawn(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut json_reader = BufReader::new(stream.try_clone().unwrap());
    let mut json_writer = stream;

    let mut legacy = wire::Client::connect_with(addr, false).unwrap();
    let mut packed = wire::Client::connect_with(addr, true).unwrap();
    assert!(!legacy.is_packed());
    assert!(packed.is_packed());

    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    for case in 0..256 {
        let req = request_for(&mut rng);
        let in_process = server.handle(&req);
        let via_json = ndjson_round_trip(&mut json_reader, &mut json_writer, &req);
        let via_legacy = legacy.request(&req).unwrap();
        let via_packed = packed.request(&req).unwrap();

        let want = serde_json::to_string(&in_process).unwrap();
        for (name, got) in [
            ("ndjson", &via_json),
            ("dprb", &via_legacy),
            ("dprb-packed", &via_packed),
        ] {
            assert_eq!(
                serde_json::to_string(got).unwrap(),
                want,
                "case {case} over {name}: {req:?}"
            );
        }
    }
    handle.stop();
}

/// Warm memo hits are bit-identical to cold execution — on the same
/// server (the warm call returns the very bytes the cold call produced)
/// and across two identically-seeded servers that never shared a cache.
#[test]
fn memo_hits_are_bit_identical_to_cold_execution() {
    let a = seeded_server();
    let b = seeded_server();
    let requests = [
        Request::Plan {
            release: "city".into(),
            plan: QueryPlan::Marginal { keep: vec![1] },
        },
        Request::Plan {
            release: "city".into(),
            plan: QueryPlan::TopK { k: 5 },
        },
        Request::Plan {
            release: "transit".into(),
            plan: QueryPlan::Many {
                plans: vec![QueryPlan::Total, QueryPlan::Marginal { keep: vec![0] }],
            },
        },
    ];
    for enc in [
        ResponseEncoding::Json,
        ResponseEncoding::Binary,
        ResponseEncoding::BinaryPacked,
    ] {
        for req in &requests {
            let cold = a.handle_encoded(req, enc);
            let warm = a.handle_encoded(req, enc);
            assert!(Arc::ptr_eq(&cold, &warm), "{req:?} {enc:?}");
            let other = b.handle_encoded(req, enc);
            assert_eq!(*cold, *other, "{req:?} {enc:?}");
        }
    }
    // The warm half of each pair hit the memo.
    let Response::Stats { stats } = a.handle(&Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(stats.encoded_hits, 9);
    assert_eq!(stats.encoded_misses, 9);
    assert!(stats.encoded_entries > 0 && stats.encoded_bytes > 0);
}
