//! End-to-end observability tests: traffic through a live front end
//! shows up in the `/metrics` exposition, the extended stats frame, and
//! agrees across the two surfaces.

use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
use dpod_dp::Epsilon;
use dpod_fmatrix::{DenseMatrix, Shape};
use dpod_serve::protocol::{Request, Response};
use dpod_serve::{
    spawn_metrics_exporter, spawn_with, wire, Catalog, FrontEnd, Server, SpawnOptions,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn test_server() -> Arc<Server> {
    let catalog = Arc::new(Catalog::new());
    let shape = Shape::new(vec![8, 8]).unwrap();
    let mut m = DenseMatrix::<u64>::zeros(shape);
    m.add_at(&[2, 2], 500).unwrap();
    let out = Ebp::default()
        .sanitize(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(7))
        .unwrap();
    catalog.publish("city", PublishedRelease::from_sanitized(&out));
    Arc::new(Server::new(catalog, 1 << 22))
}

/// One plain-HTTP scrape of the exporter.
fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "bad status: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "bad content type: {head}"
    );
    body.to_string()
}

fn drive_traffic(addr: std::net::SocketAddr) {
    // A few NDJSON requests…
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for _ in 0..3 {
        let mut line = serde_json::to_string(&Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![4, 4],
        })
        .unwrap();
        line.push('\n');
        (&stream).write_all(line.as_bytes()).unwrap();
        let mut answer = String::new();
        reader.read_line(&mut answer).unwrap();
        assert!(matches!(
            serde_json::from_str::<Response>(answer.trim()).unwrap(),
            Response::Value { .. }
        ));
    }
    drop(reader);
    // …and a few DPRB frames.
    let mut client = wire::Client::connect(addr).unwrap();
    for _ in 0..3 {
        client
            .send(&Request::Batch {
                release: "city".into(),
                ranges: vec![(vec![0, 0], vec![4, 4]), (vec![0, 0], vec![8, 8])],
            })
            .unwrap();
        assert!(matches!(client.receive().unwrap(), Response::Values { .. }));
    }
}

fn assert_key_series(body: &str, front_end: FrontEnd) {
    // Per-stage latency histograms, with samples recorded.
    assert!(
        body.contains(
            "dpod_request_stage_nanoseconds_count{transport=\"binary\",stage=\"execute\"}"
        ),
        "missing binary execute-stage series"
    );
    assert!(
        body.contains("dpod_request_stage_nanoseconds_count{transport=\"json\",stage=\"execute\"}"),
        "missing json execute-stage series"
    );
    assert!(body.contains("quantile=\"0.99\""), "missing p99 quantiles");
    // Request mix.
    assert!(body.contains("dpod_requests_total{transport=\"json\",kind=\"query\"} 3"));
    assert!(body.contains("dpod_requests_total{transport=\"binary\",kind=\"batch\"} 3"));
    // Event-loop health gauges exist either way (shard 0's series are
    // pre-registered); on the event front end the shards must actually
    // have woken. Since the loop was sharded the series carry a
    // `shard` label — sum across them.
    assert!(body.contains("dpod_eventloop_epoll_wakes_total{shard=\"0\"}"));
    if front_end == FrontEnd::Event {
        let wakes: u64 = body
            .lines()
            .filter_map(|l| l.strip_prefix("dpod_eventloop_epoll_wakes_total{shard=\""))
            .filter_map(|rest| {
                rest.split_once("\"} ")
                    .and_then(|(_, v)| v.parse::<u64>().ok())
            })
            .sum();
        assert!(wakes > 0, "event-loop shards should have woken");
    }
    assert!(body.contains("dpod_eventloop_pending_bytes{shard=\"0\"}"));
    // ε-budget accounting.
    assert!(body.contains("dpod_release_epsilon{release=\"city\"} 0.5"));
    assert!(body.contains("dpod_epsilon_spent_total 0.5"));
    assert!(body.contains("dpod_epsilon_ledger_entries 1"));
    // Engine + catalog scrape-time gauges.
    assert!(body.contains("dpod_catalog_releases 1"));
    assert!(body.contains("dpod_release_hits_total{release=\"city\"}"));
    // Front-end info gauge.
    let label = match front_end {
        FrontEnd::Event => "event",
        FrontEnd::Pool => "pool",
    };
    assert!(
        body.contains(&format!(
            "dpod_serve_front_end_info{{front_end=\"{label}\"}} 1"
        )),
        "missing front-end info gauge for {label}"
    );
}

fn exposition_covers_served_traffic(front_end: FrontEnd) {
    let server = test_server();
    let handle = spawn_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        SpawnOptions {
            workers: 2,
            front_end: Some(front_end),
            ..SpawnOptions::default()
        },
    )
    .unwrap();
    assert_eq!(handle.front_end(), front_end);
    let exporter = spawn_metrics_exporter(Arc::clone(&server), "127.0.0.1:0").unwrap();

    drive_traffic(handle.addr());
    let body = scrape(exporter.addr());
    assert_key_series(&body, front_end);

    // The stats frame reports the same stage histograms.
    let mut client = wire::Client::connect(handle.addr()).unwrap();
    client.send(&Request::Stats).unwrap();
    let Response::Stats { stats } = client.receive().unwrap() else {
        panic!("expected stats");
    };
    let execute_rows: Vec<_> = stats
        .stage_latencies
        .iter()
        .filter(|row| row.stage == "execute")
        .collect();
    assert!(
        execute_rows
            .iter()
            .any(|r| r.transport == "json" && r.count >= 3),
        "stats frame missing json execute-stage quantiles: {:?}",
        stats.stage_latencies
    );
    assert!(
        execute_rows
            .iter()
            .any(|r| r.transport == "binary" && r.count >= 3),
        "stats frame missing binary execute-stage quantiles: {:?}",
        stats.stage_latencies
    );
    for row in &stats.stage_latencies {
        assert!(row.p50_nanos <= row.p90_nanos);
        assert!(row.p90_nanos <= row.p99_nanos);
        assert!(row.p99_nanos <= row.p999_nanos);
    }

    exporter.stop();
    handle.stop();
}

#[test]
fn metrics_exposition_event_front_end() {
    exposition_covers_served_traffic(FrontEnd::Event);
}

#[test]
fn metrics_exposition_pool_front_end() {
    exposition_covers_served_traffic(FrontEnd::Pool);
}

/// The epoch catalog's whole lifecycle is visible on `/metrics`: live
/// epoch counts, the per-epoch ε series, per-series active ε (shrunk by
/// retention refunds), publish/retire counters, and the window-partial
/// cache counters.
#[test]
fn epoch_gauges_cover_the_series_lifecycle() {
    use dpod_query::{EpochSelector, QueryPlan, WindowMerge};

    let fresh = |seed: u64| {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(shape);
        m.add_at(&[2, 2], 500).unwrap();
        let out = Ebp::default()
            .sanitize(
                &m,
                Epsilon::new(0.5).unwrap(),
                &mut dpod_dp::seeded_rng(seed),
            )
            .unwrap();
        PublishedRelease::from_sanitized(&out)
    };
    // The pre-epoch "city" release plays epoch 0 of its series.
    let server = test_server();
    server.publish_epoch("city", 1, fresh(11)).unwrap();
    server.publish_epoch("city", 2, fresh(12)).unwrap();
    assert_eq!(server.apply_retention("city", 2).unwrap(), vec![0]);

    // A window query warms the per-epoch partial cache.
    let answer = server.handle(&Request::Plan {
        release: "city".into(),
        plan: QueryPlan::Window {
            select: EpochSelector::LastK { k: 2 },
            merge: WindowMerge::Sum,
            plan: Box::new(QueryPlan::Total),
        },
    });
    assert!(matches!(answer, Response::Answer { .. }), "{answer:?}");

    let exporter = spawn_metrics_exporter(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let body = scrape(exporter.addr());
    assert!(
        body.contains("dpod_epoch_count{series=\"city\"} 2"),
        "{body}"
    );
    assert!(body.contains("dpod_epoch_epsilon{series=\"city\",epoch=\"1\"} 0.5"));
    assert!(body.contains("dpod_epoch_epsilon{series=\"city\",epoch=\"2\"} 0.5"));
    assert!(
        !body.contains("epoch=\"0\""),
        "retired epoch 0 must drop out of the exposition"
    );
    assert!(body.contains("dpod_series_epsilon_active{series=\"city\"} 1"));
    assert!(body.contains("dpod_epochs_published_total 2"));
    assert!(body.contains("dpod_epochs_retired_total 1"));
    assert!(body.contains("dpod_engine_partial_entries 2"));
    assert!(body.contains("dpod_engine_partial_misses_total 2"));
    exporter.stop();
}

/// The pyramid memo's whole surface is visible on `/metrics`: the four
/// aggregate gauges and the per-level hit-counter rows, agreeing with
/// the stats frame's pyramid tail.
#[test]
fn pyramid_gauges_cover_drill_down_traffic() {
    use dpod_query::QueryPlan;

    let server = test_server();
    let drill = Request::Plan {
        release: "city".into(),
        plan: QueryPlan::DrillDown {
            level: 2,
            plan: Box::new(QueryPlan::Marginal { keep: vec![0, 1] }),
        },
    };
    // First execution builds level 2 (miss); the repeat answers warm
    // from the memoized level (hit). A second level adds an entry.
    for _ in 0..2 {
        let answer = server.handle(&drill);
        assert!(matches!(answer, Response::Answer { .. }), "{answer:?}");
    }
    let total = Request::Plan {
        release: "city".into(),
        plan: QueryPlan::DrillDown {
            level: 1,
            plan: Box::new(QueryPlan::Total),
        },
    };
    assert!(matches!(server.handle(&total), Response::Answer { .. }));

    let exporter = spawn_metrics_exporter(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let body = scrape(exporter.addr());
    assert!(body.contains("dpod_engine_pyramid_entries 2"), "{body}");
    assert!(body.contains("dpod_engine_pyramid_hits_total 1"), "{body}");
    assert!(
        body.contains("dpod_engine_pyramid_misses_total 2"),
        "{body}"
    );
    assert!(
        body.contains("dpod_engine_pyramid_level_hits_total{level=\"2\"} 1"),
        "{body}"
    );
    let bytes: usize = body
        .lines()
        .find_map(|l| l.strip_prefix("dpod_engine_pyramid_bytes "))
        .and_then(|v| v.parse().ok())
        .expect("pyramid bytes gauge present");
    assert!(bytes > 0);

    // The stats frame's pyramid tail reports the same counters.
    let Response::Stats { stats } = server.handle(&Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(stats.pyramid_entries, 2);
    assert_eq!((stats.pyramid_hits, stats.pyramid_misses), (1, 2));
    assert_eq!(stats.pyramid_bytes, bytes);
    exporter.stop();
}

/// A second scrape on a fresh connection must work (the exporter serves
/// one request per connection, `Connection: close`).
#[test]
fn exporter_serves_repeated_scrapes() {
    let server = test_server();
    let exporter = spawn_metrics_exporter(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let a = scrape(exporter.addr());
    let b = scrape(exporter.addr());
    assert!(a.contains("dpod_catalog_releases 1"));
    assert!(b.contains("dpod_catalog_releases 1"));
    exporter.stop();
}

/// Reads as much of the HTTP response as the peer delivers and returns
/// its status line. Tolerates a mid-stream reset: a handler that
/// answers and closes while our unread request bytes are still in
/// flight makes the kernel RST the tail, after the status line already
/// arrived.
fn status_of(mut stream: TcpStream) -> String {
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&raw)
        .lines()
        .next()
        .unwrap_or_default()
        .to_string()
}

/// Regression: the exporter used to block forever on a peer that
/// connects and sends nothing (or trickles bytes) — one slow-loris
/// connection wedged `/metrics` for every scraper. Now each connection
/// gets its own handler under a hard read deadline, so a healthy scrape
/// succeeds *while* the loris holds its connection open, and the loris
/// itself is answered 400 once the deadline lapses.
#[test]
fn slow_loris_does_not_wedge_the_exporter() {
    let server = test_server();
    let exporter = spawn_metrics_exporter(Arc::clone(&server), "127.0.0.1:0").unwrap();

    // Open and stall: no bytes at all, and a second that trickles an
    // incomplete header and stops.
    let silent = TcpStream::connect(exporter.addr()).unwrap();
    let mut trickler = TcpStream::connect(exporter.addr()).unwrap();
    trickler.write_all(b"GET /metr").unwrap();

    // A healthy scrape right behind them must not wait on either.
    let start = std::time::Instant::now();
    let body = scrape(exporter.addr());
    assert!(body.contains("dpod_catalog_releases 1"));
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "scrape stalled behind a slow-loris connection: {:?}",
        start.elapsed()
    );

    // The stalled connections are answered 400 (not held forever).
    assert!(status_of(silent).contains("400"), "silent peer gets 400");
    assert!(status_of(trickler.try_clone().unwrap()).contains("400"));
    exporter.stop();
}

/// Non-`GET /metrics` requests get proper error statuses instead of the
/// exposition body (or a hang): unknown path → 404, non-GET → 400,
/// oversized request → 400.
#[test]
fn exporter_rejects_non_scrape_requests() {
    let server = test_server();
    let exporter = spawn_metrics_exporter(Arc::clone(&server), "127.0.0.1:0").unwrap();

    let mut wrong_path = TcpStream::connect(exporter.addr()).unwrap();
    wrong_path
        .write_all(b"GET /debug/pprof HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    assert!(status_of(wrong_path).contains("404 Not Found"));

    let mut post = TcpStream::connect(exporter.addr()).unwrap();
    post.write_all(b"POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    assert!(status_of(post).contains("400 Bad Request"));

    // An unbounded "request" is cut off at the byte cap, not buffered
    // forever.
    let mut oversized = TcpStream::connect(exporter.addr()).unwrap();
    let filler = vec![b'a'; 64 * 1024];
    let _ = oversized.write_all(b"GET /metrics HTTP/1.1\r\n");
    let _ = oversized.write_all(&filler); // no terminator, way past the cap
    assert!(status_of(oversized).contains("400 Bad Request"));

    // A query string still counts as /metrics.
    let mut with_query = TcpStream::connect(exporter.addr()).unwrap();
    with_query
        .write_all(b"GET /metrics?debug=1 HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    assert!(status_of(with_query).contains("200 OK"));
    exporter.stop();
}
