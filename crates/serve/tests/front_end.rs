//! Event-loop front-end tests: the behaviors that motivated the
//! readiness-driven serving core.
//!
//! * slow-loris clients (bytes trickling in one at a time) are served
//!   correctly on both encodings — partial reads assemble, they never
//!   pin a worker;
//! * a pipelining client that stops draining responses trips write-side
//!   backpressure and is *timed out*, while workers keep serving other
//!   connections — no deadlock;
//! * many idle connections (far more than workers) are all served: open
//!   sockets are state, not threads;
//! * 512 concurrent connections on an 8-worker pool answer
//!   bit-identically to the thread-pool front end (the acceptance pin),
//!   and 1024 connections over four `SO_REUSEPORT` loop shards do too;
//! * graceful drain answers everything already received, flushes, and
//!   closes — on both front ends, and across all shards within one
//!   global deadline;
//! * the per-shard Dekker wake handshake loses no dispatches even with
//!   a single worker serving four shards, and each shard's idle sweep
//!   reaps its own connections.

use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
use dpod_dp::Epsilon;
use dpod_fmatrix::{DenseMatrix, Shape};
use dpod_serve::protocol::{Request, Response};
use dpod_serve::{
    spawn_with, wire, Catalog, FrontEnd, Server, ServerHandle, SpawnOptions,
    WRITE_BACKPRESSURE_BYTES,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Read side must answer well within this (the suite's "promptly").
const REPLY_TIMEOUT: Duration = Duration::from_secs(10);

fn test_server(names: &[&str]) -> Arc<Server> {
    let catalog = Arc::new(Catalog::new());
    for (i, name) in names.iter().enumerate() {
        let shape = Shape::new(vec![16, 16]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(shape);
        m.add_at(&[i % 16, (i * 3) % 16], 700).unwrap();
        let out = Ebp::default()
            .sanitize(
                &m,
                Epsilon::new(0.5).unwrap(),
                &mut dpod_dp::seeded_rng(400 + i as u64),
            )
            .unwrap();
        catalog.publish(name, PublishedRelease::from_sanitized(&out));
    }
    Arc::new(Server::new(catalog, 64 << 20))
}

fn spawn_front_end(server: &Arc<Server>, front_end: FrontEnd, workers: usize) -> ServerHandle {
    let handle = spawn_with(
        Arc::clone(server),
        "127.0.0.1:0",
        SpawnOptions {
            workers,
            front_end: Some(front_end),
            ..SpawnOptions::default()
        },
    )
    .expect("bind");
    assert_eq!(handle.front_end(), front_end, "no fallback expected here");
    handle
}

/// Event front end with an explicit shard count (this suite runs on
/// machines where the core-count default may resolve to one loop).
fn spawn_sharded(server: &Arc<Server>, event_loops: usize, workers: usize) -> ServerHandle {
    let handle = spawn_with(
        Arc::clone(server),
        "127.0.0.1:0",
        SpawnOptions {
            workers,
            front_end: Some(FrontEnd::Event),
            event_loops,
            ..SpawnOptions::default()
        },
    )
    .expect("bind");
    assert_eq!(handle.front_end(), FrontEnd::Event);
    handle
}

fn json_round_trip(stream: &TcpStream, reader: &mut impl BufRead, req: &Request) -> Response {
    let mut writer = stream;
    let mut line = serde_json::to_string(req).unwrap();
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    let mut answer = String::new();
    reader.read_line(&mut answer).unwrap();
    serde_json::from_str(answer.trim()).unwrap()
}

#[test]
fn slow_loris_ndjson_client_is_served() {
    let server = test_server(&["city"]);
    let handle = spawn_front_end(&server, FrontEnd::Event, 2);
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let req = Request::Query {
        release: "city".into(),
        lo: vec![0, 0],
        hi: vec![16, 16],
    };
    let mut line = serde_json::to_string(&req).unwrap();
    line.push('\n');
    // One byte per write, flushed, with pauses: the assembler must see
    // dozens of partial reads and still produce exactly one request.
    let mut writer = stream.try_clone().unwrap();
    for b in line.as_bytes() {
        writer.write_all(&[*b]).unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut answer = String::new();
    reader.read_line(&mut answer).unwrap();
    let Response::Value { value } = serde_json::from_str(answer.trim()).unwrap() else {
        panic!("expected value, got {answer}");
    };
    // The connection is still healthy: a normal request follows.
    let resp = json_round_trip(&stream, &mut reader, &req);
    let Response::Value { value: again } = resp else {
        panic!("second request failed");
    };
    assert_eq!(value, again);
    handle.stop();
}

#[test]
fn slow_loris_dprb_client_is_served() {
    let server = test_server(&["city"]);
    let handle = spawn_front_end(&server, FrontEnd::Event, 2);
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Preamble, length prefix, and frame body — every byte its own
    // packet.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(wire::WIRE_MAGIC);
    bytes.push(wire::WIRE_VERSION);
    let body = wire::encode_request(&Request::Query {
        release: "city".into(),
        lo: vec![2, 2],
        hi: vec![10, 10],
    });
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&body);
    for b in &bytes {
        writer.write_all(&[*b]).unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let frame = wire::read_frame(&mut reader).unwrap().unwrap();
    let Response::Value { value } = wire::decode_response(&frame).unwrap() else {
        panic!("expected value");
    };
    assert!(value.is_finite());
    // A pipelined pair afterwards still answers in order.
    let mut two = Vec::new();
    wire::write_frame(&mut two, &body).unwrap();
    wire::write_frame(&mut two, &wire::encode_request(&Request::List)).unwrap();
    writer.write_all(&two).unwrap();
    let first = wire::read_frame(&mut reader).unwrap().unwrap();
    assert!(matches!(
        wire::decode_response(&first),
        Ok(Response::Value { .. })
    ));
    let second = wire::read_frame(&mut reader).unwrap().unwrap();
    assert!(matches!(
        wire::decode_response(&second),
        Ok(Response::Releases { .. })
    ));
    handle.stop();
}

#[test]
fn stalled_pipeliner_times_out_without_deadlocking_the_worker() {
    let server = test_server(&["city"]);
    // One worker and a short idle timeout: if write backpressure ever
    // parked the worker, the second client below could not be served.
    let handle = spawn_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        SpawnOptions {
            workers: 1,
            front_end: Some(FrontEnd::Event),
            idle_timeout: Duration::from_millis(400),
            ..SpawnOptions::default()
        },
    )
    .unwrap();

    // Client A: pipelines batches whose responses exceed the
    // backpressure threshold, then never reads a byte.
    let stalled = TcpStream::connect(handle.addr()).unwrap();
    stalled.set_nodelay(true).unwrap();
    let mut w = stalled.try_clone().unwrap();
    w.write_all(wire::WIRE_MAGIC).unwrap();
    w.write_all(&[wire::WIRE_VERSION]).unwrap();
    let ranges: Vec<(Vec<usize>, Vec<usize>)> = (0..300_000)
        .map(|i| (vec![0, 0], vec![1 + (i % 16), 16]))
        .collect();
    let batch = wire::encode_request(&Request::Batch {
        release: "city".into(),
        ranges,
    });
    // 3 × ~2.4 MB of responses ≫ the 4 MiB outbound cap plus socket
    // buffers: the loop must pause reads and, with no write progress,
    // time the connection out.
    let mut frames = Vec::new();
    for _ in 0..3 {
        wire::write_frame(&mut frames, &batch).unwrap();
    }
    assert!(frames.len() > WRITE_BACKPRESSURE_BYTES);
    w.write_all(&frames).unwrap();
    w.flush().unwrap();

    // Client B must be answered promptly while A is stalled.
    std::thread::sleep(Duration::from_millis(100));
    let t0 = Instant::now();
    let mut client = wire::Client::connect(handle.addr()).unwrap();
    let resp = client
        .request(&Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![16, 16],
        })
        .expect("worker must not be deadlocked by the stalled client");
    assert!(matches!(resp, Response::Value { .. }));
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "query took {:?}",
        t0.elapsed()
    );

    // And A is eventually dropped by the idle/stall timeout: reading its
    // socket ends in EOF or a reset, never a hang.
    stalled.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
    let mut sink = vec![0u8; 1 << 20];
    let mut reader = stalled;
    let deadline = Instant::now() + REPLY_TIMEOUT;
    loop {
        match reader.read(&mut sink) {
            Ok(0) => break,  // clean close after the flushable part
            Ok(_) => {}      // draining whatever was buffered
            Err(_) => break, // reset also proves the drop
        }
        assert!(
            Instant::now() < deadline,
            "stalled connection never dropped"
        );
    }
    handle.stop();
}

#[test]
fn many_idle_connections_are_all_served_by_two_workers() {
    let server = test_server(&["city"]);
    let handle = spawn_front_end(&server, FrontEnd::Event, 2);

    // 40 connections ≫ 2 workers, all held open and idle before any of
    // them speaks. Under the pool front end this layout would wedge
    // (worker-per-connection); here sockets are just state.
    let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> = (0..40)
        .map(|_| {
            let s = TcpStream::connect(handle.addr()).unwrap();
            s.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
            let r = BufReader::new(s.try_clone().unwrap());
            (s, r)
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50)); // let all accepts land

    let req = Request::Query {
        release: "city".into(),
        lo: vec![0, 0],
        hi: vec![16, 16],
    };
    let mut values = Vec::new();
    for (stream, reader) in conns.iter_mut() {
        let Response::Value { value } = json_round_trip(stream, reader, &req) else {
            panic!("idle connection not served");
        };
        values.push(value);
    }
    assert_eq!(values.len(), 40);
    assert!(values.windows(2).all(|w| w[0] == w[1]), "answers diverged");

    // The gauges see every open socket, idle or not.
    let Response::Stats { stats } = server.handle(&Request::Stats) else {
        panic!("stats");
    };
    assert!(stats.open_connections >= 40, "{}", stats.open_connections);
    assert!(
        stats.accepted_connections >= 40,
        "{}",
        stats.accepted_connections
    );

    // Dropping the clients drains the gauge.
    drop(conns);
    let deadline = Instant::now() + REPLY_TIMEOUT;
    while server.open_connections() > 0 {
        assert!(Instant::now() < deadline, "open-connection gauge stuck");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.stop();
}

/// The acceptance pin, parameterized over the shard count: `conns`
/// concurrent connections on an 8-worker pool, answered bit-identically
/// to the thread-pool front end, across both encodings.
fn bit_identical_to_pool_mode(conns: usize, event_loops: usize) {
    let server = test_server(&["city", "transit"]);
    let event = spawn_sharded(&server, event_loops, 8);

    // Reference bytes from the legacy front end (one pipelined
    // connection per encoding is enough — the pool cannot hold 512).
    let pool_server = test_server(&["city", "transit"]);
    let pool = spawn_front_end(&pool_server, FrontEnd::Pool, 8);
    let request_for = |i: usize| Request::Query {
        release: if i.is_multiple_of(2) {
            "city"
        } else {
            "transit"
        }
        .into(),
        lo: vec![0, 0],
        hi: vec![1 + (i % 16), 1 + ((i * 7) % 16)],
    };
    let mut expected_json: Vec<String> = Vec::new();
    {
        let stream = TcpStream::connect(pool.addr()).unwrap();
        stream.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..conns {
            let mut line = serde_json::to_string(&request_for(i)).unwrap();
            line.push('\n');
            (&stream).write_all(line.as_bytes()).unwrap();
            let mut answer = String::new();
            reader.read_line(&mut answer).unwrap();
            expected_json.push(answer);
        }
    }
    let mut expected_frames: Vec<Vec<u8>> = Vec::new();
    {
        let mut client = wire::Client::connect(pool.addr()).unwrap();
        for i in 0..conns {
            client.send(&request_for(i)).unwrap();
        }
        for _ in 0..conns {
            let resp = client.receive().unwrap();
            expected_frames.push(wire::encode_response(&resp));
        }
    }
    pool.stop();

    // Open all sockets first — every one of them concurrently open
    // and idle — then speak on each: JSON on even connections, DPRB on
    // odd ones. Waves keep the accept backlog comfortable.
    let mut socks: Vec<TcpStream> = Vec::with_capacity(conns);
    for _wave in 0..(conns / 64) {
        for _ in 0..64 {
            let s = TcpStream::connect(event.addr()).unwrap();
            s.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
            s.set_nodelay(true).unwrap();
            socks.push(s);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for (i, stream) in socks.iter().enumerate() {
        let mut w = stream;
        if i % 2 == 0 {
            let mut line = serde_json::to_string(&request_for(i)).unwrap();
            line.push('\n');
            w.write_all(line.as_bytes()).unwrap();
        } else {
            w.write_all(wire::WIRE_MAGIC).unwrap();
            w.write_all(&[wire::WIRE_VERSION]).unwrap();
            wire::write_frame(&mut w, &wire::encode_request(&request_for(i))).unwrap();
        }
    }
    for (i, stream) in socks.iter().enumerate() {
        if i % 2 == 0 {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut answer = String::new();
            reader.read_line(&mut answer).unwrap();
            assert_eq!(answer, expected_json[i], "connection {i} diverged");
        } else {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let frame = wire::read_frame(&mut reader).unwrap().unwrap();
            let resp = wire::decode_response(&frame).unwrap();
            assert_eq!(
                wire::encode_response(&resp),
                expected_frames[i],
                "connection {i} diverged"
            );
        }
    }
    assert!(server.accepted_connections() >= conns as u64);
    drop(socks);
    event.stop();
}

/// The original acceptance pin: 512 connections on a single loop shard.
#[test]
fn event_loop_serves_512_connections_bit_identically_to_pool_mode() {
    bit_identical_to_pool_mode(512, 1);
}

/// The sharded acceptance pin: 1024 connections spread over four
/// `SO_REUSEPORT` shards, still bit-identical to pool mode on both
/// encodings — sharding must not change a single answered byte.
#[test]
fn four_shards_serve_1024_connections_bit_identically_to_pool_mode() {
    bit_identical_to_pool_mode(1024, 4);
}

#[test]
fn deep_pipeline_past_the_pending_cap_is_fully_served() {
    // Regression: a client that pipelines far more requests than the
    // loop's parsed-queue cap (4096) trips the read pause; once
    // fast-path completions drain the queue, reads must resume — the
    // original code left the pause armed and the connection starved
    // until the idle sweep reset it.
    let server = test_server(&["city"]);
    let handle = spawn_front_end(&server, FrontEnd::Event, 2);
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    const N: usize = 10_000;
    let mut pipelined = String::with_capacity(N * 64);
    for i in 0..N {
        let req = Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![1 + (i % 16), 16],
        };
        pipelined.push_str(&serde_json::to_string(&req).unwrap());
        pipelined.push('\n');
    }
    let writer_stream = stream.try_clone().unwrap();
    let writer = std::thread::spawn(move || {
        (&writer_stream).write_all(pipelined.as_bytes()).unwrap();
    });
    let mut line = String::new();
    for i in 0..N {
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "connection closed after {i} of {N} responses");
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(resp, Response::Value { .. }), "{resp:?}");
    }
    writer.join().unwrap();
    assert_eq!(server.queries_answered(), N as u64);
    handle.stop();
}

#[test]
fn graceful_drain_answers_everything_already_received() {
    let server = test_server(&["city"]);
    let handle = spawn_front_end(&server, FrontEnd::Event, 2);
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Pipeline 50 requests, reading nothing yet.
    let mut pipelined = String::new();
    for i in 0..50usize {
        let req = Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![1 + (i % 16), 16],
        };
        pipelined.push_str(&serde_json::to_string(&req).unwrap());
        pipelined.push('\n');
    }
    (&stream).write_all(pipelined.as_bytes()).unwrap();

    // Wait until the server has answered them all…
    let deadline = Instant::now() + REPLY_TIMEOUT;
    while server.queries_answered() < 50 {
        assert!(Instant::now() < deadline, "requests not processed");
        std::thread::sleep(Duration::from_millis(5));
    }
    // …then drain. Every response must be flushed, then EOF — none lost.
    handle.drain(Duration::from_secs(5));
    let mut answers = 0;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        if n == 0 {
            break;
        }
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(resp, Response::Value { .. }), "{resp:?}");
        answers += 1;
    }
    assert_eq!(answers, 50, "drain lost in-flight responses");
}

#[test]
fn pool_front_end_drains_gracefully_too() {
    let server = test_server(&["city"]);
    let handle = spawn_front_end(&server, FrontEnd::Pool, 1);
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let resp = json_round_trip(
        &stream,
        &mut reader,
        &Request::Query {
            release: "city".into(),
            lo: vec![0, 0],
            hi: vec![4, 4],
        },
    );
    assert!(matches!(resp, Response::Value { .. }));

    // The connection is idle-open; drain must shut it down promptly
    // (not wait out the 30 s idle timeout) and return.
    let t0 = Instant::now();
    handle.drain(Duration::from_secs(3));
    assert!(t0.elapsed() < Duration::from_secs(10), "{:?}", t0.elapsed());
    // The worker observed EOF and closed: the client reads EOF back.
    let mut line = String::new();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "{line}");
    let deadline = Instant::now() + REPLY_TIMEOUT;
    while server.open_connections() > 0 {
        assert!(Instant::now() < deadline, "gauge not drained");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn connection_gauges_cross_the_wire() {
    let server = test_server(&["city"]);
    let handle = spawn_front_end(&server, FrontEnd::Event, 2);
    // Two idle connections plus the stats client itself.
    let idle_a = TcpStream::connect(handle.addr()).unwrap();
    let idle_b = TcpStream::connect(handle.addr()).unwrap();
    let mut client = wire::Client::connect(handle.addr()).unwrap();
    let deadline = Instant::now() + REPLY_TIMEOUT;
    loop {
        let Response::Stats { stats } = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        if stats.open_connections == 3 && stats.accepted_connections == 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gauges never converged: {} open / {} accepted",
            stats.open_connections,
            stats.accepted_connections
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(idle_a);
    drop(idle_b);
    // Closes are observed and the accepted count is monotone.
    let deadline = Instant::now() + REPLY_TIMEOUT;
    loop {
        let Response::Stats { stats } = client.request(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        if stats.open_connections == 1 {
            assert_eq!(stats.accepted_connections, 3);
            break;
        }
        assert!(Instant::now() < deadline, "closed connections not observed");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.stop();
}

/// Cross-shard isolation: slow-loris connections trickling partial
/// requests on every shard must not delay healthy clients — each shard
/// parks the stalled sockets as state while workers stay free.
#[test]
fn loris_connections_do_not_stall_healthy_clients_across_shards() {
    let server = test_server(&["city"]);
    let handle = spawn_sharded(&server, 4, 2);

    // Eight stalled connections — enough that (kernel REUSEPORT
    // hashing) every shard almost surely holds at least one — each with
    // a partial JSON request that never completes.
    let lorises: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut s = TcpStream::connect(handle.addr()).unwrap();
            s.write_all(b"{\"Query\":{\"release\":\"ci").unwrap();
            s
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    // Sixteen healthy round trips must all answer promptly.
    let req = Request::Query {
        release: "city".into(),
        lo: vec![0, 0],
        hi: vec![16, 16],
    };
    let t0 = Instant::now();
    for _ in 0..16 {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp = json_round_trip(&stream, &mut reader, &req);
        assert!(matches!(resp, Response::Value { .. }), "{resp:?}");
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "healthy clients stalled behind lorises: {:?}",
        t0.elapsed()
    );
    drop(lorises);
    handle.stop();
}

/// Multi-shard graceful drain: responses already computed on *every*
/// shard are flushed before close, and the shards converge on one
/// global drain deadline — `drain` returns in about one deadline, not
/// `shards × deadline` (the loops anchor a shared instant and the
/// sequential joins each find their shard already done).
#[test]
fn multi_shard_drain_flushes_every_shard_within_one_deadline() {
    const CONNS: usize = 12;
    const PER_CONN: usize = 20;
    let server = test_server(&["city"]);
    let handle = spawn_sharded(&server, 4, 2);

    let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> = Vec::new();
    for _ in 0..CONNS {
        let s = TcpStream::connect(handle.addr()).unwrap();
        s.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
        let r = BufReader::new(s.try_clone().unwrap());
        conns.push((s, r));
    }
    for (i, (stream, _)) in conns.iter().enumerate() {
        let mut pipelined = String::new();
        for j in 0..PER_CONN {
            let req = Request::Query {
                release: "city".into(),
                lo: vec![0, 0],
                hi: vec![1 + ((i + j) % 16), 16],
            };
            pipelined.push_str(&serde_json::to_string(&req).unwrap());
            pipelined.push('\n');
        }
        (&*stream).write_all(pipelined.as_bytes()).unwrap();
    }

    // Wait until every shard has answered its share…
    let deadline = Instant::now() + REPLY_TIMEOUT;
    while server.queries_answered() < (CONNS * PER_CONN) as u64 {
        assert!(Instant::now() < deadline, "requests not processed");
        std::thread::sleep(Duration::from_millis(5));
    }
    // …then drain with a 3 s window. Four shards × 3 s would be 12 s;
    // the global deadline keeps the whole barrier to ~one window.
    let t0 = Instant::now();
    handle.drain(Duration::from_secs(3));
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "drain did not converge on one global deadline: {:?}",
        t0.elapsed()
    );
    // No response was lost on any shard: every connection reads all of
    // its answers, then EOF.
    for (i, (_, reader)) in conns.iter_mut().enumerate() {
        let mut answers = 0;
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader.read_line(&mut line).unwrap();
            if n == 0 {
                break;
            }
            let resp: Response = serde_json::from_str(line.trim()).unwrap();
            assert!(matches!(resp, Response::Value { .. }), "{resp:?}");
            answers += 1;
        }
        assert_eq!(answers, PER_CONN, "connection {i} lost drained responses");
    }
}

/// The Dekker-handshake pin under maximum contention: a *single* worker
/// serves four shards, so every dispatch/completion crosses the
/// sleeping/busy handshake with three other loops in flight. A lost
/// wake strands a round trip and trips the read timeout.
#[test]
fn single_worker_across_four_shards_loses_no_wakeups() {
    let server = test_server(&["city"]);
    let handle = spawn_sharded(&server, 4, 1);
    let addr = handle.addr();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                stream.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for j in 0..50usize {
                    let req = Request::Query {
                        release: "city".into(),
                        lo: vec![0, 0],
                        hi: vec![1 + ((t + j) % 16), 16],
                    };
                    let mut line = serde_json::to_string(&req).unwrap();
                    line.push('\n');
                    (&stream).write_all(line.as_bytes()).unwrap();
                    let mut answer = String::new();
                    reader.read_line(&mut answer).unwrap();
                    let resp: Response = serde_json::from_str(answer.trim()).unwrap();
                    assert!(matches!(resp, Response::Value { .. }), "{resp:?}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("round trip stranded: lost wakeup");
    }
    assert_eq!(server.queries_answered(), 400);
    handle.stop();
}

/// The idle sweep is shard-local: every shard times out its own idle
/// connections — none are missed because "their" shard never looked.
#[test]
fn idle_sweep_reaps_connections_on_every_shard() {
    let server = test_server(&["city"]);
    let handle = spawn_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        SpawnOptions {
            workers: 2,
            front_end: Some(FrontEnd::Event),
            event_loops: 4,
            idle_timeout: Duration::from_millis(300),
            ..SpawnOptions::default()
        },
    )
    .unwrap();

    // Twelve idle connections spread over the shards; all must be
    // swept, each by whichever shard owns it.
    let conns: Vec<TcpStream> = (0..12)
        .map(|_| {
            let s = TcpStream::connect(handle.addr()).unwrap();
            s.set_read_timeout(Some(REPLY_TIMEOUT)).unwrap();
            s
        })
        .collect();
    for mut s in conns {
        let mut sink = [0u8; 64];
        loop {
            match s.read(&mut sink) {
                Ok(0) | Err(_) => break, // EOF or reset: swept
                Ok(_) => {}
            }
        }
    }
    let deadline = Instant::now() + REPLY_TIMEOUT;
    while server.open_connections() > 0 {
        assert!(Instant::now() < deadline, "idle sweep missed a shard");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.stop();
}
