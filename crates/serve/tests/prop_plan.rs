//! Property tests for the typed query algebra: every [`QueryPlan`]
//! variant answers **bit-identically** across the three transports —
//! in-process [`Server::handle`], newline-delimited JSON, and `DPRB`
//! binary frames — and the legacy `Query`/`Batch` JSON surface is
//! byte-stable (documents a pre-algebra client sends keep producing the
//! exact response bytes they always did).

use dpod_core::{grid::Ebp, Mechanism, PublishedRelease};
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, DenseMatrix, Shape};
use dpod_query::{QueryPlan, Region};
use dpod_serve::protocol::{Request, Response};
use dpod_serve::{wire, Catalog, Server};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

/// A shared reference server: a 2-D release ("city", 8×8) and a 4-D
/// OD release ("od", 6^4) so OD and marginal plans have real targets.
fn server() -> &'static Arc<Server> {
    static SERVER: OnceLock<Arc<Server>> = OnceLock::new();
    SERVER.get_or_init(|| {
        let catalog = Catalog::new();
        let mut flat = DenseMatrix::<u64>::zeros(Shape::new(vec![8, 8]).unwrap());
        flat.add_at(&[2, 5], 300).unwrap();
        let mut od = DenseMatrix::<u64>::zeros(Shape::cube(4, 6).unwrap());
        od.add_at(&[0, 1, 4, 5], 150).unwrap();
        od.add_at(&[3, 3, 2, 2], 90).unwrap();
        for (name, matrix, seed) in [("city", flat, 40u64), ("od", od, 41)] {
            let out = Ebp::default()
                .sanitize(
                    &matrix,
                    Epsilon::new(0.5).unwrap(),
                    &mut dpod_dp::seeded_rng(seed),
                )
                .unwrap();
            catalog.publish(name, PublishedRelease::from_sanitized(&out));
        }
        Arc::new(Server::new(Arc::new(catalog), 1 << 22))
    })
}

/// Mostly-real release names with a sprinkling of unknown ones.
fn arb_name() -> impl Strategy<Value = String> {
    (0usize..6).prop_map(|kind| match kind {
        0 | 1 => "city".to_string(),
        2 | 3 => "od".to_string(),
        4 => "missing".to_string(),
        _ => String::new(),
    })
}

/// Regions both inside and straying past the 6×6 / 8×8 grids, inverted
/// corners included, so error paths must agree across transports too.
fn arb_region() -> impl Strategy<Value = Region> {
    (0usize..10, 0usize..10, 0usize..10, 0usize..10)
        .prop_map(|(a, b, c, d)| Region::new((a, b), (c, d)))
}

/// One leaf plan of every variant (never `Many`; that nests via
/// `arb_plan`). Coordinates deliberately stray out of domain.
fn arb_leaf() -> impl Strategy<Value = QueryPlan> {
    let range = (0usize..5).prop_flat_map(|d| {
        (
            prop::collection::vec(0usize..10, d),
            prop::collection::vec(0usize..10, d),
        )
    });
    let od = (
        any::<bool>(),
        arb_region(),
        any::<bool>(),
        arb_region(),
        prop::collection::vec((0usize..3, arb_region()), 0..3),
    )
        .prop_map(|(has_o, o, has_d, d, stops)| QueryPlan::Od {
            origin: has_o.then_some(o),
            stops,
            destination: has_d.then_some(d),
        });
    (
        0usize..5,
        range,
        od,
        prop::collection::vec(0usize..6, 0..4),
        0usize..80,
    )
        .prop_map(|(kind, (lo, hi), od, keep, k)| match kind {
            0 => QueryPlan::Range { lo, hi },
            1 => od,
            2 => QueryPlan::Marginal { keep },
            3 => QueryPlan::TopK { k },
            _ => QueryPlan::Total,
        })
}

fn arb_plan() -> impl Strategy<Value = QueryPlan> {
    (
        0usize..4,
        arb_leaf(),
        prop::collection::vec(arb_leaf(), 0..6),
    )
        .prop_map(|(kind, leaf, plans)| match kind {
            0 => QueryPlan::Many { plans },
            _ => leaf,
        })
}

/// The cold reference executor: rebuilds the named release's matrix and
/// answers through the un-prepared [`ScanBackend`] path — exactly what
/// the server did before the `ReleaseIndex` existed.
fn cold_answer(release: &str, plan: &dpod_query::QueryPlan) -> Option<Response> {
    let entry = server().catalog().get(release)?;
    let matrix = entry.release.as_ref().clone().into_sanitized().unwrap();
    Some(match dpod_query::plan::execute(&matrix, plan) {
        Ok(answer) => Response::Answer { answer },
        Err(e) => Response::Error { message: e.0 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The prepare/execute tentpole: ANY plan answered by the server's
    /// warm `ReleaseIndex` backend is **bit-identical** (the serialized
    /// shortest-round-trip floats compare equal, i.e. the same f64 bit
    /// patterns) to a cold `ScanBackend` execution over a fresh rebuild
    /// of the same release — and stays identical through both wire
    /// codecs, so all three transports serve the cold answers.
    #[test]
    fn indexed_serving_matches_cold_scan(release in arb_name(), plan in arb_plan()) {
        let req = Request::Plan { release: release.clone(), plan: plan.clone() };
        let served = server().handle(&req); // in-process, indexed backend
        if let Some(cold) = cold_answer(&release, &plan) {
            let cold = serde_json::to_string(&cold)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let warm = serde_json::to_string(&served)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&cold, &warm, "indexed backend drifted from cold scan");
            // The cold answer also survives the binary response codec —
            // what a DPRB client receives — and the JSON line codec.
            let via_wire = wire::decode_response(&wire::encode_response(&served))
                .map_err(|e| TestCaseError::fail(e.0))?;
            let via_wire = serde_json::to_string(&via_wire)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&cold, &via_wire);
            let via_json: Response = serde_json::from_str(&warm)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let via_json = serde_json::to_string(&via_json)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&cold, &via_json);
        } else {
            prop_assert!(matches!(served, Response::Error { .. }));
        }
    }

    /// A `Plan` request survives both codecs unchanged.
    #[test]
    fn plan_requests_round_trip_identically(release in arb_name(), plan in arb_plan()) {
        let req = Request::Plan { release, plan };
        let via_wire = wire::decode_request(&wire::encode_request(&req))
            .map_err(|e| TestCaseError::fail(e.0))?;
        prop_assert_eq!(&via_wire, &req);
        let json = serde_json::to_string(&req)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let via_json: Request = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&via_json, &via_wire);
    }

    /// The tentpole equivalence: ANY plan — valid, out-of-domain, or
    /// structurally wrong — answers identically whether it reaches the
    /// server through the JSON codec or the binary codec, and the
    /// answer survives the binary response codec bit-for-bit (the
    /// packed marginal vectors and top-k index/value pairs included).
    #[test]
    fn plan_answers_are_transport_invariant(release in arb_name(), plan in arb_plan()) {
        let req = Request::Plan { release, plan };
        let json = serde_json::to_string(&req)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let via_json: Request = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let via_wire = wire::decode_request(&wire::encode_request(&req))
            .map_err(|e| TestCaseError::fail(e.0))?;

        let json_answer = server().handle(&via_json);
        let wire_answer = server().handle(&via_wire);
        let wire_answer = wire::decode_response(&wire::encode_response(&wire_answer))
            .map_err(|e| TestCaseError::fail(e.0))?;
        let a = serde_json::to_string(&json_answer)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let b = serde_json::to_string(&wire_answer)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(a, b);
    }
}

/// One NDJSON round trip on an open connection.
fn ndjson_round_trip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    req: &Request,
) -> Response {
    let mut line = serde_json::to_string(req).unwrap();
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut answer = String::new();
    reader.read_line(&mut answer).unwrap();
    serde_json::from_str(answer.trim()).unwrap()
}

/// End-to-end over real sockets: every plan variant answers with the
/// same serialized bytes via in-process dispatch, a live NDJSON
/// connection, and a live `DPRB` connection.
#[test]
fn live_transports_agree_on_every_variant() {
    let server = server();
    let handle = dpod_serve::spawn(Arc::clone(server), "127.0.0.1:0", 2).unwrap();
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut binary = wire::Client::connect(addr).unwrap();

    let plans = vec![
        QueryPlan::Range {
            lo: vec![0, 0],
            hi: vec![8, 8],
        },
        QueryPlan::Total,
        QueryPlan::TopK { k: 5 },
        QueryPlan::Marginal { keep: vec![0] },
        QueryPlan::Marginal { keep: vec![0, 1] },
        QueryPlan::Many {
            plans: vec![
                QueryPlan::Total,
                QueryPlan::TopK { k: 2 },
                QueryPlan::Marginal { keep: vec![1] },
            ],
        },
        // Errors must cross both wires verbatim too.
        QueryPlan::Marginal { keep: vec![7] },
    ];
    for (release, od_only) in [("city", false), ("od", true)] {
        let mut plans = plans.clone();
        if od_only {
            plans.push(
                QueryPlan::od()
                    .with_origin(Region::new((0, 0), (3, 3)))
                    .with_destination(Region::new((2, 2), (6, 6))),
            );
            plans.push(QueryPlan::Marginal { keep: vec![2, 3] });
        }
        for plan in plans {
            let cold = cold_answer(release, &plan).map(|r| serde_json::to_string(&r).unwrap());
            let req = Request::Plan {
                release: release.to_string(),
                plan,
            };
            let in_process = serde_json::to_string(&server.handle(&req)).unwrap();
            let via_ndjson =
                serde_json::to_string(&ndjson_round_trip(&mut reader, &mut writer, &req)).unwrap();
            let via_binary = serde_json::to_string(&binary.request(&req).unwrap()).unwrap();
            assert_eq!(in_process, via_ndjson, "NDJSON drifted on {req:?}");
            assert_eq!(in_process, via_binary, "DPRB drifted on {req:?}");
            // Live sockets serve the indexed backend; every transport
            // must still produce the cold ScanBackend bytes.
            assert_eq!(
                cold.expect("test releases exist"),
                in_process,
                "indexed serving drifted from cold scan on {req:?}"
            );
        }
    }
    handle.stop();
}

/// Legacy back-compat: the exact JSON documents a pre-algebra client
/// sends still parse, still answer, and still serialize to the exact
/// byte shapes PR 2 produced — single-field `Value`/`Values` documents
/// whose numbers bit-equal the engine's direct answers.
#[test]
fn legacy_query_and_batch_json_is_byte_stable() {
    let server = server();

    // The released estimate, read directly (not through the protocol).
    let entry = server.catalog().get("city").unwrap();
    let matrix = entry.release.as_ref().clone().into_sanitized().unwrap();
    let expect_44 = matrix.range_sum(&AxisBox::new(vec![0, 0], vec![4, 4]).unwrap());
    let expect_88 = matrix.range_sum(&AxisBox::new(vec![0, 0], vec![8, 8]).unwrap());

    // Byte-for-byte what a PR 2 client would write on the wire.
    let query_doc = r#"{"Query":{"release":"city","lo":[0,0],"hi":[4,4]}}"#;
    let req: Request = serde_json::from_str(query_doc).unwrap();
    let response = serde_json::to_string(&server.handle(&req)).unwrap();
    assert_eq!(
        response,
        format!(
            "{{\"Value\":{{\"value\":{}}}}}",
            serde_json::to_string(&expect_44).unwrap()
        ),
        "legacy Query response drifted"
    );

    let batch_doc = r#"{"Batch":{"release":"city","ranges":[[[0,0],[4,4]],[[0,0],[8,8]]]}}"#;
    let req: Request = serde_json::from_str(batch_doc).unwrap();
    let response = serde_json::to_string(&server.handle(&req)).unwrap();
    assert_eq!(
        response,
        format!(
            "{{\"Values\":{{\"values\":[{},{}]}}}}",
            serde_json::to_string(&expect_44).unwrap(),
            serde_json::to_string(&expect_88).unwrap()
        ),
        "legacy Batch response drifted"
    );

    // And the legacy DPRB opcodes produce the same values through the
    // binary codec (opcode bytes pinned: 0x01 Query → 0x81 Value).
    let req = Request::Query {
        release: "city".into(),
        lo: vec![0, 0],
        hi: vec![4, 4],
    };
    let frame = wire::encode_request(&req);
    assert_eq!(frame[5], 0x01, "legacy Query opcode moved");
    let resp = server.handle(&wire::decode_request(&frame).unwrap());
    let encoded = wire::encode_response(&resp);
    assert_eq!(encoded[5], 0x81, "legacy Value opcode moved");
    let Response::Value { value } = wire::decode_response(&encoded).unwrap() else {
        panic!("expected value");
    };
    assert_eq!(value.to_bits(), expect_44.to_bits());
}
