//! Property tests for the resolution pyramid: every coarse cell is the
//! row-major sum of its children, and a routed [`QueryPlan::DrillDown`]
//! answers **bit-identically** to executing the inner plan over a
//! hand-coarsened leaf — across in-process dispatch (cold and indexed),
//! newline-delimited JSON, and `DPRB` binary frames. Legacy wire bytes
//! (plan frames without a drill-down) are pinned unchanged.

use dpod_core::{grid::Ebp, Mechanism, PublishedRelease, SanitizedMatrix};
use dpod_dp::Epsilon;
use dpod_fmatrix::codec::FrameWriter;
use dpod_fmatrix::{coarsen_once, coarsen_to_level, DenseMatrix, Shape};
use dpod_query::QueryPlan;
use dpod_serve::protocol::{Request, Response};
use dpod_serve::{wire, Catalog, Server};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

/// A shared reference server: a 16×16 release ("city", pyramid root 4)
/// and an odd-extent 3-D release ("odd", 9×7×5) whose ragged boundary
/// tiles exercise the ceiling-halved shapes.
fn server() -> &'static Arc<Server> {
    static SERVER: OnceLock<Arc<Server>> = OnceLock::new();
    SERVER.get_or_init(|| {
        let catalog = Catalog::new();
        let mut city = DenseMatrix::<u64>::zeros(Shape::new(vec![16, 16]).unwrap());
        city.add_at(&[3, 12], 400).unwrap();
        city.add_at(&[9, 2], 250).unwrap();
        let mut odd = DenseMatrix::<u64>::zeros(Shape::new(vec![9, 7, 5]).unwrap());
        odd.add_at(&[8, 6, 4], 120).unwrap();
        odd.add_at(&[0, 3, 1], 75).unwrap();
        for (name, matrix, seed) in [("city", city, 50u64), ("odd", odd, 51)] {
            let out = Ebp::default()
                .sanitize(
                    &matrix,
                    Epsilon::new(0.5).unwrap(),
                    &mut dpod_dp::seeded_rng(seed),
                )
                .unwrap();
            catalog.publish(name, PublishedRelease::from_sanitized(&out));
        }
        Arc::new(Server::new(Arc::new(catalog), 1 << 22))
    })
}

/// Inner plans for a drill-down: the three routable kinds with
/// coordinates that deliberately stray out of the coarse domain, plus a
/// forbidden kind so the rejection is transport-invariant too.
fn arb_inner() -> impl Strategy<Value = QueryPlan> {
    let range = (0usize..4).prop_flat_map(|d| {
        (
            prop::collection::vec(0usize..18, d),
            prop::collection::vec(0usize..18, d),
        )
    });
    (
        0usize..5,
        range,
        prop::collection::vec(0usize..4, 0..4),
        0usize..9,
    )
        .prop_map(|(kind, (lo, hi), keep, k)| match kind {
            0 | 1 => QueryPlan::Range { lo, hi },
            2 => QueryPlan::Marginal { keep },
            3 => QueryPlan::Total,
            _ => QueryPlan::TopK { k }, // must be refused identically
        })
}

/// The cold reference executor: rebuilds the named release's matrix and
/// answers the *whole drill plan* through the un-prepared
/// [`dpod_query::ScanBackend`] path (which coarsens per call).
fn cold_answer(release: &str, plan: &QueryPlan) -> Option<Response> {
    let entry = server().catalog().get(release)?;
    let matrix = entry.release.as_ref().clone().into_sanitized().unwrap();
    Some(match dpod_query::plan::execute(&matrix, plan) {
        Ok(answer) => Response::Answer { answer },
        Err(e) => Response::Error { message: e.0 },
    })
}

/// The equivalence-contract reference: coarsen the rebuilt leaf by hand
/// with [`coarsen_to_level`] and execute the *inner* plan against the
/// coarse matrix directly. `None` when the level itself is invalid.
fn coarsened_answer(release: &str, level: u32, inner: &QueryPlan) -> Option<Response> {
    let entry = server().catalog().get(release)?;
    let leaf = entry.release.as_ref().clone().into_sanitized().unwrap();
    let coarse = coarsen_to_level(leaf.matrix(), level).ok()?;
    let coarse = SanitizedMatrix::from_entries("coarse", 0.5, coarse);
    Some(match dpod_query::plan::execute(&coarse, inner) {
        Ok(answer) => Response::Answer { answer },
        Err(e) => Response::Error { message: e.0 },
    })
}

fn json(resp: &Response) -> Result<String, TestCaseError> {
    serde_json::to_string(resp).map_err(|e| TestCaseError::fail(e.to_string()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every coarse cell bit-equals a row-major child-order gather from
    /// 0.0, over arbitrary shapes and signed fractional fills — the
    /// determinism contract every routed answer rests on.
    #[test]
    fn coarse_cells_are_row_major_child_sums(
        dims in prop::collection::vec(1usize..8, 1..4),
        salt in any::<u32>(),
    ) {
        let shape = Shape::new(dims).unwrap();
        let values: Vec<f64> = (0..shape.size())
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(2_654_435_761).wrapping_add(salt as u64);
                ((h % 10_000) as f64) / 11.0 - 450.0
            })
            .collect();
        let m = DenseMatrix::from_vec(shape, values).unwrap();
        let c = coarsen_once(&m);
        for coarse_coords in c.shape().iter_coords() {
            let mut acc = 0.0f64;
            for fine_coords in m.shape().iter_coords() {
                let is_child = fine_coords
                    .iter()
                    .zip(&coarse_coords)
                    .all(|(&f, &p)| f >> 1 == p);
                if is_child {
                    acc += m.get(&fine_coords).unwrap();
                }
            }
            prop_assert_eq!(
                c.get(&coarse_coords).unwrap().to_bits(),
                acc.to_bits(),
                "cell {:?}",
                coarse_coords
            );
        }
    }

    /// The routing contract: ANY drill-down — valid, past the root, or
    /// with a forbidden inner kind — answers bit-identically through
    /// the warm indexed backend, a cold scan, and the binary response
    /// codec; and when the level is valid, all of them bit-equal the
    /// inner plan executed over a hand-coarsened leaf.
    #[test]
    fn routed_drill_downs_match_coarsened_leaf_execution(
        release in (0usize..2).prop_map(|i| ["city", "odd"][i]),
        level in 0u32..6,
        inner in arb_inner(),
    ) {
        let plan = QueryPlan::DrillDown {
            level,
            plan: Box::new(inner.clone()),
        };
        let req = Request::Plan { release: release.to_string(), plan: plan.clone() };
        let served = server().handle(&req); // in-process, indexed backend
        let warm = json(&served)?;
        let cold = json(&cold_answer(release, &plan).expect("test releases exist"))?;
        prop_assert_eq!(&cold, &warm, "indexed routing drifted from cold scan");
        // The routed answer survives the binary codec bit-for-bit.
        let via_wire = wire::decode_response(&wire::encode_response(&served))
            .map_err(|e| TestCaseError::fail(e.0))?;
        prop_assert_eq!(&warm, &json(&via_wire)?);
        // And the request itself round-trips both codecs.
        let via_wire_req = wire::decode_request(&wire::encode_request(&req))
            .map_err(|e| TestCaseError::fail(e.0))?;
        prop_assert_eq!(&via_wire_req, &req);
        match coarsened_answer(release, level, &inner) {
            Some(reference) => {
                // A valid level: the routed answer (or error, for bad
                // inner coordinates/kinds) must bit-match executing the
                // inner plan on the hand-coarsened leaf — except the
                // kind rejection, which the drill validator names
                // differently than a bare unroutable plan would fail.
                if matches!(
                    inner,
                    QueryPlan::Range { .. } | QueryPlan::Marginal { .. } | QueryPlan::Total
                ) {
                    prop_assert_eq!(&warm, &json(&reference)?, "equivalence contract broken");
                } else {
                    prop_assert!(warm.contains("cannot drill down"), "{}", warm);
                }
            }
            None => {
                // Past the pyramid root: a named error — the inner
                // kind is validated first, so a forbidden kind keeps
                // its own rejection even at a bad level.
                if matches!(
                    inner,
                    QueryPlan::Range { .. } | QueryPlan::Marginal { .. } | QueryPlan::Total
                ) {
                    prop_assert!(warm.contains("exceeds the pyramid root"), "{}", warm);
                } else {
                    prop_assert!(warm.contains("cannot drill down"), "{}", warm);
                }
            }
        }
    }
}

/// One NDJSON round trip on an open connection.
fn ndjson_round_trip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    req: &Request,
) -> Response {
    let mut line = serde_json::to_string(req).unwrap();
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut answer = String::new();
    reader.read_line(&mut answer).unwrap();
    serde_json::from_str(answer.trim()).unwrap()
}

/// End-to-end over real sockets: drill-down plans answer with the same
/// serialized bytes via in-process dispatch, a live NDJSON connection,
/// and a live `DPRB` connection — and match the coarsened-leaf
/// reference, with the pyramid hit counters proving the coarse route.
#[test]
fn live_transports_agree_on_drill_downs() {
    let server = server();
    let handle = dpod_serve::spawn(Arc::clone(server), "127.0.0.1:0", 2).unwrap();
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut binary = wire::Client::connect(addr).unwrap();

    let drills: Vec<(u32, QueryPlan)> = vec![
        (0, QueryPlan::Total),
        (1, QueryPlan::Marginal { keep: vec![0] }),
        (
            2,
            QueryPlan::Range {
                lo: vec![0, 0],
                hi: vec![4, 4],
            },
        ),
        (4, QueryPlan::Marginal { keep: vec![0, 1] }),
        // Errors must cross both wires verbatim too.
        (9, QueryPlan::Total),
        (1, QueryPlan::TopK { k: 2 }),
    ];
    for (level, inner) in drills {
        let req = Request::Plan {
            release: "city".to_string(),
            plan: QueryPlan::DrillDown {
                level,
                plan: Box::new(inner.clone()),
            },
        };
        let in_process = serde_json::to_string(&server.handle(&req)).unwrap();
        let via_ndjson =
            serde_json::to_string(&ndjson_round_trip(&mut reader, &mut writer, &req)).unwrap();
        let via_binary = serde_json::to_string(&binary.request(&req).unwrap()).unwrap();
        assert_eq!(in_process, via_ndjson, "NDJSON drifted on {req:?}");
        assert_eq!(in_process, via_binary, "DPRB drifted on {req:?}");
        if let Some(reference) = coarsened_answer("city", level, &inner) {
            if matches!(
                inner,
                QueryPlan::Range { .. } | QueryPlan::Marginal { .. } | QueryPlan::Total
            ) {
                assert_eq!(
                    in_process,
                    serde_json::to_string(&reference).unwrap(),
                    "live serving drifted from the coarsened leaf on {req:?}"
                );
            }
        }
    }
    // The coarse levels answered above were routed through the pyramid
    // memo (level 0 short-circuits to the leaf and never touches it).
    let stats = server.engine_stats();
    assert!(
        stats.pyramid_hits + stats.pyramid_misses >= 3,
        "coarse answers must route through the pyramid memo: {stats:?}"
    );
    assert!(stats.pyramid_bytes > 0);
    handle.stop();
}

/// Legacy back-compat: plan frames without a drill-down are pinned
/// byte-for-byte (tag table and payload layout unchanged), and the
/// legacy JSON document for the same plan carries no new keys.
#[test]
fn legacy_plan_wire_bytes_are_pinned() {
    let req = Request::Plan {
        release: "city".into(),
        plan: QueryPlan::Marginal { keep: vec![0, 1] },
    };
    // Hand-build the exact frame a pre-pyramid encoder produced:
    // opcode 0x05, length-prefixed release name, tag 0x03 Marginal,
    // usize slice payload.
    let mut w = FrameWriter::with_capacity(wire::WIRE_MAGIC, wire::WIRE_VERSION, 64);
    w.put_u8(0x05);
    w.put_bytes(b"city");
    w.put_u8(0x03);
    w.put_usize_slice(&[0, 1]);
    assert_eq!(
        wire::encode_request(&req),
        w.finish().to_vec(),
        "legacy Marginal plan frame drifted"
    );
    // The JSON document is unchanged too: no level key appears on
    // plans that do not drill down.
    assert_eq!(
        serde_json::to_string(&req).unwrap(),
        r#"{"Plan":{"release":"city","plan":{"Marginal":{"keep":[0,1]}}}}"#,
        "legacy Marginal plan JSON drifted"
    );
    // And the server's answer to it still frames as opcode 0x85.
    let resp = server().handle(&req);
    let encoded = wire::encode_response(&resp);
    assert_eq!(encoded[5], 0x85, "legacy Answer opcode moved");
}
