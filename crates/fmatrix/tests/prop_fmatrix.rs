//! Property-based tests for the frequency-matrix substrate.

use dpod_fmatrix::{entropy, AxisBox, DenseMatrix, PrefixSum, Shape};
use proptest::prelude::*;

/// Strategy: a small random shape (1–4 dims, each 1–8 cells).
fn arb_shape() -> impl Strategy<Value = Shape> {
    prop::collection::vec(1usize..=8, 1..=4).prop_map(|dims| Shape::new(dims).unwrap())
}

/// Strategy: a shape plus a matching random count buffer.
fn arb_matrix() -> impl Strategy<Value = DenseMatrix<u64>> {
    arb_shape().prop_flat_map(|shape| {
        let size = shape.size();
        prop::collection::vec(0u64..50, size)
            .prop_map(move |data| DenseMatrix::from_vec(shape.clone(), data).unwrap())
    })
}

/// Strategy: a random box inside `shape`.
fn arb_box_in(shape: &Shape) -> impl Strategy<Value = AxisBox> {
    let dims = shape.dims().to_vec();
    dims.iter()
        .map(|&d| (0..=d, 0..=d))
        .collect::<Vec<_>>()
        .prop_map(|corners| {
            let lo: Vec<usize> = corners.iter().map(|&(a, b)| a.min(b)).collect();
            let hi: Vec<usize> = corners.iter().map(|&(a, b)| a.max(b)).collect();
            AxisBox::new(lo, hi).unwrap()
        })
}

proptest! {
    /// Prefix sums agree with naive box sums on arbitrary matrices and boxes.
    #[test]
    fn prefix_sum_matches_naive(
        (m, b) in arb_matrix().prop_flat_map(|m| {
            let bx = arb_box_in(m.shape());
            (Just(m), bx)
        })
    ) {
        let p = PrefixSum::from_counts(&m);
        prop_assert_eq!(p.box_count(&b) as f64, m.box_sum_naive(&b));
    }

    /// flat_index and coords are mutual inverses over the whole domain.
    #[test]
    fn flat_index_roundtrip(shape in arb_shape()) {
        for i in 0..shape.size() {
            let c = shape.coords(i);
            prop_assert_eq!(shape.flat_index(&c).unwrap(), i);
        }
    }

    /// iter_coords enumerates exactly size() distinct coordinates in
    /// flat-index order.
    #[test]
    fn iter_coords_is_exhaustive_and_ordered(shape in arb_shape()) {
        let coords: Vec<_> = shape.iter_coords().collect();
        prop_assert_eq!(coords.len(), shape.size());
        for (i, c) in coords.iter().enumerate() {
            prop_assert_eq!(shape.flat_index(c).unwrap(), i);
        }
    }

    /// Splitting a box along any dimension preserves total volume and
    /// box sums.
    #[test]
    fn split_preserves_volume_and_sum(
        (m, b, frac) in arb_matrix().prop_flat_map(|m| {
            let bx = arb_box_in(m.shape());
            (Just(m), bx, 0.0f64..1.0)
        })
    ) {
        let dim = 0;
        let at = b.lo()[dim]
            + ((b.extent(dim) as f64) * frac) as usize;
        let (l, r) = b.split_at(dim, at).unwrap();
        prop_assert_eq!(l.volume() + r.volume(), b.volume());
        let p = PrefixSum::from_counts(&m);
        prop_assert_eq!(p.box_count(&l) + p.box_count(&r), p.box_count(&b));
    }

    /// Intersection volume is symmetric and bounded by both operands.
    #[test]
    fn intersection_is_symmetric_and_bounded(
        (a, b) in arb_shape().prop_flat_map(|s| {
            (arb_box_in(&s), arb_box_in(&s))
        })
    ) {
        let v1 = a.overlap_volume(&b);
        let v2 = b.overlap_volume(&a);
        prop_assert_eq!(v1, v2);
        prop_assert!(v1 <= a.volume());
        prop_assert!(v1 <= b.volume());
    }

    /// Entropy of the entry distribution is within [0, log2(size)], and
    /// coarsening to a 2-way partition never increases it.
    #[test]
    fn entropy_bounds_and_coarsening(m in arb_matrix()) {
        let h = entropy::matrix_entropy(&m);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (m.len() as f64).log2() + 1e-9);

        let full = AxisBox::full(m.shape());
        let mid = m.shape().dim(0) / 2;
        if mid > 0 {
            let (l, r) = full.split_at(0, mid).unwrap();
            let p = PrefixSum::from_counts(&m);
            let hp = entropy::partition_entropy(&p, &[l, r]);
            prop_assert!(hp <= h + 1e-9, "coarse {hp} > fine {h}");
        }
    }

    /// from_points totals match the number of points.
    #[test]
    fn from_points_conserves_mass(
        (shape, pts) in arb_shape().prop_flat_map(|s| {
            let d = s.ndim();
            let pts = prop::collection::vec(
                prop::collection::vec(0usize..20, d), 0..100);
            (Just(s), pts)
        })
    ) {
        let m = DenseMatrix::<u64>::from_points(shape, pts.iter());
        prop_assert_eq!(m.total_u64() as usize, pts.len());
    }
}
