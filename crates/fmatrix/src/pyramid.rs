//! Resolution pyramids: coarse views of a frequency matrix derived by
//! per-axis 2×2 child summation.
//!
//! Level 0 is the matrix itself; each level above halves every axis
//! (ceiling division, so odd extents keep a one-child boundary tile).
//! The *root* is the first level at which every axis has collapsed to a
//! single cell. Coarsening a **sanitized** matrix is pure
//! post-processing — it spends no additional privacy budget — and every
//! coarse cell is *exactly* the sum of its children by construction,
//! so cross-level consistency holds with no reconciliation step.
//!
//! ## Determinism contract
//!
//! f64 addition is not associative, so "the sum of the children" only
//! pins bits once the addition order is fixed. [`coarsen_once`]
//! accumulates by scanning the fine matrix **in row-major order** and
//! scattering each cell into its parent; for any one parent this adds
//! the children in row-major child order, which is therefore also what
//! a per-parent gather must use to reproduce the bits. Higher levels
//! are defined recursively ([`coarsen_to_level`] applies
//! [`coarsen_once`] `level` times), so every consumer that builds a
//! level through these functions gets bit-identical tables.

use crate::{DenseMatrix, FmError, Result, Shape};

/// The smallest level at which every axis of `shape` has collapsed to a
/// single cell (0 for a shape that is already all-ones).
#[must_use]
pub fn pyramid_root_level(shape: &Shape) -> u32 {
    shape
        .dims()
        .iter()
        .map(|&d| {
            // Halvings (ceiling) needed to reach 1: ceil(log2(d)).
            if d <= 1 {
                0
            } else {
                usize::BITS - (d - 1).leading_zeros()
            }
        })
        .max()
        .unwrap_or(0)
}

/// The shape of pyramid level `level` over `shape`: every axis extent
/// ceiling-divided by `2^level` (never below 1).
///
/// # Errors
/// [`FmError::InvalidShape`] when `level` exceeds the pyramid root
/// level — there is no coarser view than a single cell.
pub fn coarsen_shape(shape: &Shape, level: u32) -> Result<Shape> {
    let root = pyramid_root_level(shape);
    if level > root {
        return Err(FmError::InvalidShape {
            reason: format!(
                "level {level} exceeds the pyramid root (level {root}) for domain {:?}",
                shape.dims()
            ),
        });
    }
    Shape::new(
        shape
            .dims()
            .iter()
            .map(|&d| {
                // level ≤ root < usize::BITS here, so the shift is safe.
                ((d - 1) >> level) + 1
            })
            .collect(),
    )
}

/// One pyramid step: halves every axis, each output cell holding the
/// sum of its (up to `2^d`) children.
///
/// The fine matrix is scanned in row-major order and each cell is
/// scatter-added into its parent, which fixes the per-parent addition
/// order to row-major child order (see the module docs).
#[must_use]
pub fn coarsen_once(m: &DenseMatrix<f64>) -> DenseMatrix<f64> {
    let fine = m.shape();
    let coarse = Shape::new(fine.dims().iter().map(|&d| ((d - 1) >> 1) + 1).collect())
        .expect("halved dims stay positive");
    let out_strides = coarse.strides().to_vec();
    let src_dims = fine.dims().to_vec();
    let mut out = DenseMatrix::<f64>::zeros(coarse);
    let mut coords = vec![0usize; fine.ndim()];
    for &v in m.as_slice() {
        let mut idx = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            idx += (c >> 1) * out_strides[d];
        }
        let cur = out.get_flat(idx);
        out.set_flat(idx, cur + v);
        // Odometer increment (cheaper than div/mod per cell).
        let mut d = coords.len();
        loop {
            if d == 0 {
                break;
            }
            d -= 1;
            coords[d] += 1;
            if coords[d] < src_dims[d] {
                break;
            }
            coords[d] = 0;
        }
    }
    out
}

/// The pyramid level `level` over `m`, built by applying
/// [`coarsen_once`] `level` times (level 0 is a clone of `m`).
///
/// # Errors
/// [`FmError::InvalidShape`] when `level` exceeds the pyramid root.
pub fn coarsen_to_level(m: &DenseMatrix<f64>, level: u32) -> Result<DenseMatrix<f64>> {
    // Validates the level before doing any work.
    coarsen_shape(m.shape(), level)?;
    let mut cur = m.clone();
    for _ in 0..level {
        cur = coarsen_once(&cur);
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    /// Deterministic pseudo-noisy fill (mirrors the query-crate test
    /// releases: fractional, signed, irregular).
    fn noisy(dims: &[usize]) -> DenseMatrix<f64> {
        let s = shape(dims);
        let data: Vec<f64> = (0..s.size())
            .map(|i| ((i * 2_654_435_761) % 1_000) as f64 / 7.0 - 60.0)
            .collect();
        DenseMatrix::from_vec(s, data).unwrap()
    }

    #[test]
    fn root_level_and_shapes() {
        assert_eq!(pyramid_root_level(&shape(&[1])), 0);
        assert_eq!(pyramid_root_level(&shape(&[2, 2])), 1);
        assert_eq!(pyramid_root_level(&shape(&[8, 8])), 3);
        assert_eq!(pyramid_root_level(&shape(&[5, 2])), 3);
        assert_eq!(pyramid_root_level(&shape(&[1024, 1024])), 10);
        assert_eq!(coarsen_shape(&shape(&[8, 8]), 2).unwrap().dims(), &[2, 2]);
        // Odd extents keep a boundary tile (ceiling division).
        assert_eq!(coarsen_shape(&shape(&[5, 3]), 1).unwrap().dims(), &[3, 2]);
        assert_eq!(coarsen_shape(&shape(&[5, 3]), 3).unwrap().dims(), &[1, 1]);
        let err = coarsen_shape(&shape(&[8, 8]), 4).unwrap_err();
        assert!(
            err.to_string().contains("exceeds the pyramid root"),
            "{err}"
        );
    }

    /// The determinism contract: every coarse cell bit-equals a
    /// row-major child-order gather from 0.0.
    #[test]
    fn coarse_cells_bit_equal_row_major_child_sums() {
        for dims in [vec![8, 8], vec![5, 3], vec![4, 6, 3], vec![7]] {
            let m = noisy(&dims);
            let c = coarsen_once(&m);
            let mut child = vec![0usize; m.ndim()];
            for coarse_coords in c.shape().iter_coords() {
                let mut acc = 0.0f64;
                // Children of a coarse cell, in row-major order of the
                // fine matrix: odometer over the per-axis child pairs.
                for fine_coords in m.shape().iter_coords() {
                    let is_child = fine_coords
                        .iter()
                        .zip(&coarse_coords)
                        .all(|(&f, &p)| f >> 1 == p);
                    if is_child {
                        child.copy_from_slice(&fine_coords);
                        acc += m.get(&child).unwrap();
                    }
                }
                let got = c.get(&coarse_coords).unwrap();
                assert_eq!(
                    got.to_bits(),
                    acc.to_bits(),
                    "cell {coarse_coords:?} in {dims:?}"
                );
            }
        }
    }

    #[test]
    fn multi_level_is_recursive_single_steps() {
        let m = noisy(&[16, 12]);
        let two = coarsen_to_level(&m, 2).unwrap();
        let manual = coarsen_once(&coarsen_once(&m));
        assert_eq!(two.shape(), manual.shape());
        for (a, b) in two.as_slice().iter().zip(manual.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Level 0 is the identity.
        let zero = coarsen_to_level(&m, 0).unwrap();
        assert_eq!(zero.as_slice(), m.as_slice());
        // The root is a single cell.
        let root = coarsen_to_level(&m, pyramid_root_level(m.shape())).unwrap();
        assert_eq!(root.len(), 1);
        assert!(coarsen_to_level(&m, 99).is_err());
    }
}
