//! Compact binary codec for dense matrices.
//!
//! Published artifacts are often shipped and archived; a 1000² sanitized
//! matrix is ~8 MB of floats that JSON would inflate ~3×. The format is a
//! little-endian frame:
//!
//! ```text
//! magic  "DPFM"          4 bytes
//! version u8             currently 1
//! dtype   u8             0 = u64, 1 = f64
//! ndim    u16
//! dims    ndim × u64
//! data    size × 8 bytes
//! ```

use crate::{DenseMatrix, FmError, Result, Shape};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"DPFM";
const VERSION: u8 = 1;

/// Magic for the published-release frame (`dpod_core::PublishedRelease`).
///
/// The release codec lives in `dpod-core` (it needs the release types) but
/// shares this crate's framing primitives; the magic is declared here so
/// every workspace frame format is enumerated in one place.
pub const RELEASE_MAGIC: &[u8; 4] = b"DPRL";

/// Current version of the `DPRL` release frame.
pub const RELEASE_VERSION: u8 = 1;

/// Magic for the binary query-protocol frame (`dpod_serve::wire`).
///
/// Spoken on analyst connections: a client that opens with this magic is
/// served length-prefixed `DPRB` frames instead of newline-delimited
/// JSON. As with [`RELEASE_MAGIC`], the codec lives downstream (it needs
/// the request/response types) but the magic is enumerated here so every
/// workspace frame format shares one registry.
pub const WIRE_MAGIC: &[u8; 4] = b"DPRB";

/// Current version of the `DPRB` query-protocol frame.
pub const WIRE_VERSION: u8 = 1;

/// Builder for little-endian, magic+version prefixed binary frames.
///
/// The `DPFM` matrix codec below and the `DPRL` release codec in
/// `dpod-core` are both expressed over this writer, so framing
/// conventions (length prefixes, float encoding) cannot drift apart.
#[derive(Debug)]
pub struct FrameWriter {
    buf: BytesMut,
}

impl FrameWriter {
    /// Starts a frame with `magic` and `version`, reserving `cap` bytes.
    pub fn with_capacity(magic: &[u8; 4], version: u8, cap: usize) -> Self {
        let mut buf = BytesMut::with_capacity(cap + 5);
        buf.put_slice(magic);
        buf.put_u8(version);
        FrameWriter { buf }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Appends a length-prefixed (u16) UTF-8 string.
    ///
    /// # Panics
    /// When `s` exceeds `u16::MAX` bytes (no workspace identifier does).
    pub fn put_str(&mut self, s: &str) {
        assert!(s.len() <= u16::MAX as usize, "string too long for frame");
        self.buf.put_u16_le(s.len() as u16);
        self.buf.put_slice(s.as_bytes());
    }

    /// Appends a length-prefixed (u64) raw byte slice.
    ///
    /// Unlike [`Self::put_str`] this carries arbitrary payloads of any
    /// length (the query protocol's packed batch bodies).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.put_u64_le(bytes.len() as u64);
        self.buf.put_slice(bytes);
    }

    /// Appends a length-prefixed (u64) slice of `usize` values as u64s.
    pub fn put_usize_slice(&mut self, values: &[usize]) {
        self.buf.put_u64_le(values.len() as u64);
        for &v in values {
            self.buf.put_u64_le(v as u64);
        }
    }

    /// Appends a length-prefixed (u64) slice of `f64` values.
    pub fn put_f64_slice(&mut self, values: &[f64]) {
        self.buf.put_u64_le(values.len() as u64);
        for &v in values {
            self.buf.put_u64_le(v.to_bits());
        }
    }

    /// Finalizes the frame.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Cursor over a magic+version prefixed frame with descriptive errors.
#[derive(Debug)]
pub struct FrameReader<'a> {
    rest: &'a [u8],
}

impl<'a> FrameReader<'a> {
    /// Validates `magic`/`version` and positions the cursor after them.
    ///
    /// # Errors
    /// [`FmError::InvalidShape`] when the header does not match.
    pub fn new(bytes: &'a [u8], magic: &[u8; 4], version: u8) -> Result<Self> {
        let err = |reason: String| FmError::InvalidShape { reason };
        if bytes.len() < 5 {
            return Err(err("frame too short for header".into()));
        }
        let mut b = bytes;
        let mut got = [0u8; 4];
        b.copy_to_slice(&mut got);
        if &got != magic {
            return Err(err(format!("bad magic {got:?}, expected {magic:?}")));
        }
        let got_version = b.get_u8();
        if got_version != version {
            return Err(err(format!(
                "unsupported frame version {got_version}, expected {version}"
            )));
        }
        Ok(FrameReader { rest: b })
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.rest.len() < n {
            return Err(FmError::InvalidShape {
                reason: format!(
                    "frame truncated reading {what}: need {n} bytes, have {}",
                    self.rest.len()
                ),
            });
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self, what: &str) -> Result<u16> {
        let mut b = self.take(2, what)?;
        Ok(b.get_u16_le())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64> {
        let mut b = self.take(8, what)?;
        Ok(b.get_u64_le())
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Reads a u16-length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &str) -> Result<String> {
        let len = self.get_u16(what)? as usize;
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| FmError::InvalidShape {
            reason: format!("frame field {what} is not valid UTF-8"),
        })
    }

    /// Reads a u64-length-prefixed raw byte slice (see
    /// [`FrameWriter::put_bytes`]). The declared length is validated
    /// against the remaining frame before any allocation happens, so an
    /// adversarial length cannot balloon memory.
    pub fn get_bytes(&mut self, what: &str) -> Result<&'a [u8]> {
        let len = self.get_u64(what)?;
        let len = usize::try_from(len).map_err(|_| FmError::InvalidShape {
            reason: format!("frame field {what} length overflows"),
        })?;
        self.take(len, what)
    }

    /// Reads `count` *unprefixed* little-endian `u64` words, returning
    /// the raw bytes (callers that already know the word count from an
    /// earlier field skip the length prefix — the query protocol's
    /// packed batch coordinates). Bounds are validated before returning.
    pub fn get_raw_u64s(&mut self, count: usize, what: &str) -> Result<&'a [u8]> {
        let n = count.checked_mul(8).ok_or_else(|| FmError::InvalidShape {
            reason: format!("frame field {what} length overflows"),
        })?;
        self.take(n, what)
    }

    /// Reads a u64-length-prefixed `usize` vector.
    pub fn get_usize_vec(&mut self, what: &str) -> Result<Vec<usize>> {
        let len = self.get_u64(what)? as usize;
        let raw = self.take(
            len.checked_mul(8).ok_or_else(|| FmError::InvalidShape {
                reason: format!("frame field {what} length overflows"),
            })?,
            what,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")) as usize)
            .collect())
    }

    /// Reads a u64-length-prefixed `f64` vector.
    pub fn get_f64_vec(&mut self, what: &str) -> Result<Vec<f64>> {
        let len = self.get_u64(what)? as usize;
        let raw = self.take(
            len.checked_mul(8).ok_or_else(|| FmError::InvalidShape {
                reason: format!("frame field {what} length overflows"),
            })?,
            what,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunk of 8"))))
            .collect())
    }

    /// Bytes not yet consumed. Lets decoders of *extensible* frames
    /// (fields appended over time, e.g. the serve stats frame) detect
    /// whether an optional tail is present before reading it, while
    /// still ending with [`finish`](Self::finish) to reject garbage.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Asserts the frame was fully consumed.
    ///
    /// # Errors
    /// [`FmError::InvalidShape`] naming the trailing byte count.
    pub fn finish(self) -> Result<()> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(FmError::InvalidShape {
                reason: format!("frame has {} trailing bytes", self.rest.len()),
            })
        }
    }
}

/// Marker for the element type stored in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dtype {
    U64 = 0,
    F64 = 1,
}

/// Encodes a count matrix.
pub fn encode_u64(m: &DenseMatrix<u64>) -> Bytes {
    encode_with(m.shape(), Dtype::U64, m.as_slice().iter().copied())
}

/// Encodes a sanitized (float) matrix.
pub fn encode_f64(m: &DenseMatrix<f64>) -> Bytes {
    encode_with(
        m.shape(),
        Dtype::F64,
        m.as_slice().iter().map(|v| v.to_bits()),
    )
}

fn encode_with(shape: &Shape, dtype: Dtype, words: impl Iterator<Item = u64>) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + shape.ndim() * 8 + shape.size() * 8);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(dtype as u8);
    buf.put_u16_le(shape.ndim() as u16);
    for &d in shape.dims() {
        buf.put_u64_le(d as u64);
    }
    for w in words {
        buf.put_u64_le(w);
    }
    buf.freeze()
}

/// Decodes a count matrix.
///
/// # Errors
/// [`FmError::InvalidShape`] describing the first framing violation.
pub fn decode_u64(bytes: &[u8]) -> Result<DenseMatrix<u64>> {
    let (shape, mut rest) = decode_header(bytes, Dtype::U64)?;
    let data: Vec<u64> = (0..shape.size()).map(|_| rest.get_u64_le()).collect();
    DenseMatrix::from_vec(shape, data)
}

/// Decodes a sanitized (float) matrix.
///
/// # Errors
/// [`FmError::InvalidShape`] describing the first framing violation,
/// including non-finite payloads.
pub fn decode_f64(bytes: &[u8]) -> Result<DenseMatrix<f64>> {
    let (shape, mut rest) = decode_header(bytes, Dtype::F64)?;
    let data: Vec<f64> = (0..shape.size())
        .map(|_| f64::from_bits(rest.get_u64_le()))
        .collect();
    if data.iter().any(|v| !v.is_finite()) {
        return Err(FmError::InvalidShape {
            reason: "frame contains non-finite values".into(),
        });
    }
    DenseMatrix::from_vec(shape, data)
}

fn decode_header(bytes: &[u8], expect: Dtype) -> Result<(Shape, &[u8])> {
    let err = |reason: String| FmError::InvalidShape { reason };
    let mut b = bytes;
    if b.remaining() < 8 {
        return Err(err("frame too short for header".into()));
    }
    let mut magic = [0u8; 4];
    b.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err(format!("bad magic {magic:?}")));
    }
    let version = b.get_u8();
    if version != VERSION {
        return Err(err(format!("unsupported version {version}")));
    }
    let dtype = b.get_u8();
    if dtype != expect as u8 {
        return Err(err(format!(
            "frame holds dtype {dtype}, expected {}",
            expect as u8
        )));
    }
    let ndim = b.get_u16_le() as usize;
    if b.remaining() < ndim * 8 {
        return Err(err("frame too short for dims".into()));
    }
    let dims: Vec<usize> = (0..ndim).map(|_| b.get_u64_le() as usize).collect();
    let shape = Shape::new(dims)?;
    if b.remaining() < shape.size() * 8 {
        return Err(err(format!(
            "frame holds {} bytes of data, need {}",
            b.remaining(),
            shape.size() * 8
        )));
    }
    Ok((shape, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    #[test]
    fn u64_round_trip() {
        let m = DenseMatrix::from_vec(shape(&[3, 4]), (0..12u64).collect::<Vec<_>>()).unwrap();
        let bytes = encode_u64(&m);
        assert_eq!(bytes.len(), 4 + 1 + 1 + 2 + 2 * 8 + 12 * 8);
        let back = decode_u64(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        let m = DenseMatrix::from_vec(shape(&[2, 2]), vec![1.5, -0.000123, 9e99, 0.0]).unwrap();
        let back = decode_f64(&encode_f64(&m)).unwrap();
        assert_eq!(back.as_slice(), m.as_slice());
    }

    #[test]
    fn rejects_corrupted_frames() {
        let m = DenseMatrix::from_vec(shape(&[2, 2]), vec![1u64, 2, 3, 4]).unwrap();
        let bytes = encode_u64(&m).to_vec();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode_u64(&bad).is_err());
        // Wrong version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(decode_u64(&bad).is_err());
        // Wrong dtype request.
        assert!(decode_f64(&bytes).is_err());
        // Truncated payload.
        assert!(decode_u64(&bytes[..bytes.len() - 8]).is_err());
        // Truncated header.
        assert!(decode_u64(&bytes[..6]).is_err());
    }

    #[test]
    fn rejects_non_finite_floats() {
        let m = DenseMatrix::from_vec(shape(&[2]), vec![1.0, 2.0]).unwrap();
        let mut bytes = encode_f64(&m).to_vec();
        let nan = f64::NAN.to_bits().to_le_bytes();
        let off = bytes.len() - 8;
        bytes[off..].copy_from_slice(&nan);
        assert!(decode_f64(&bytes).is_err());
    }

    #[test]
    fn frame_primitives_round_trip() {
        let mut w = FrameWriter::with_capacity(b"TEST", 3, 64);
        w.put_u8(9);
        w.put_u16(512);
        w.put_u64(1 << 40);
        w.put_f64(-2.5);
        w.put_str("ebp");
        w.put_usize_slice(&[1, 2, 3]);
        w.put_f64_slice(&[0.5, -0.25]);
        w.put_bytes(b"raw\x00payload");
        w.put_u64(7); // unprefixed word, read back via get_raw_u64s
        let bytes = w.finish();

        let mut r = FrameReader::new(&bytes, b"TEST", 3).unwrap();
        assert_eq!(r.get_u8("a").unwrap(), 9);
        assert_eq!(r.get_u16("b").unwrap(), 512);
        assert_eq!(r.get_u64("c").unwrap(), 1 << 40);
        assert_eq!(r.get_f64("d").unwrap(), -2.5);
        assert_eq!(r.get_str("e").unwrap(), "ebp");
        assert_eq!(r.get_usize_vec("f").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_f64_vec("g").unwrap(), vec![0.5, -0.25]);
        assert_eq!(r.get_bytes("h").unwrap(), b"raw\x00payload");
        assert_eq!(r.get_raw_u64s(1, "i").unwrap(), 7u64.to_le_bytes());
        r.finish().unwrap();
    }

    #[test]
    fn frame_reader_rejects_mismatch_and_truncation() {
        let mut w = FrameWriter::with_capacity(b"TEST", 1, 8);
        w.put_u64(42);
        let bytes = w.finish();

        assert!(FrameReader::new(&bytes, b"XXXX", 1).is_err());
        assert!(FrameReader::new(&bytes, b"TEST", 2).is_err());
        assert!(FrameReader::new(&bytes[..3], b"TEST", 1).is_err());

        // Reading past the payload is a descriptive error, not a panic:
        // the u64 little-endian bytes of 42 re-read as a 42-byte string
        // length against only 6 remaining bytes.
        let mut r = FrameReader::new(&bytes, b"TEST", 1).unwrap();
        assert!(r.get_str("too much").is_err());

        // Trailing bytes are flagged.
        let r2 = FrameReader::new(&bytes, b"TEST", 1).unwrap();
        assert!(r2.finish().is_err());
    }

    #[test]
    fn high_dimensional_round_trip() {
        let s = shape(&[3, 2, 2, 3, 2]);
        let m = DenseMatrix::from_vec(s.clone(), (0..s.size() as u64).collect::<Vec<_>>()).unwrap();
        assert_eq!(decode_u64(&encode_u64(&m)).unwrap(), m);
    }
}
