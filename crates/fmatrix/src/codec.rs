//! Compact binary codec for dense matrices.
//!
//! Published artifacts are often shipped and archived; a 1000² sanitized
//! matrix is ~8 MB of floats that JSON would inflate ~3×. The format is a
//! little-endian frame:
//!
//! ```text
//! magic  "DPFM"          4 bytes
//! version u8             currently 1
//! dtype   u8             0 = u64, 1 = f64
//! ndim    u16
//! dims    ndim × u64
//! data    size × 8 bytes
//! ```

use crate::{DenseMatrix, FmError, Result, Shape};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"DPFM";
const VERSION: u8 = 1;

/// Marker for the element type stored in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dtype {
    U64 = 0,
    F64 = 1,
}

/// Encodes a count matrix.
pub fn encode_u64(m: &DenseMatrix<u64>) -> Bytes {
    encode_with(m.shape(), Dtype::U64, m.as_slice().iter().copied())
}

/// Encodes a sanitized (float) matrix.
pub fn encode_f64(m: &DenseMatrix<f64>) -> Bytes {
    encode_with(
        m.shape(),
        Dtype::F64,
        m.as_slice().iter().map(|v| v.to_bits()),
    )
}

fn encode_with(shape: &Shape, dtype: Dtype, words: impl Iterator<Item = u64>) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + shape.ndim() * 8 + shape.size() * 8);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(dtype as u8);
    buf.put_u16_le(shape.ndim() as u16);
    for &d in shape.dims() {
        buf.put_u64_le(d as u64);
    }
    for w in words {
        buf.put_u64_le(w);
    }
    buf.freeze()
}

/// Decodes a count matrix.
///
/// # Errors
/// [`FmError::InvalidShape`] describing the first framing violation.
pub fn decode_u64(bytes: &[u8]) -> Result<DenseMatrix<u64>> {
    let (shape, mut rest) = decode_header(bytes, Dtype::U64)?;
    let data: Vec<u64> = (0..shape.size()).map(|_| rest.get_u64_le()).collect();
    DenseMatrix::from_vec(shape, data)
}

/// Decodes a sanitized (float) matrix.
///
/// # Errors
/// [`FmError::InvalidShape`] describing the first framing violation,
/// including non-finite payloads.
pub fn decode_f64(bytes: &[u8]) -> Result<DenseMatrix<f64>> {
    let (shape, mut rest) = decode_header(bytes, Dtype::F64)?;
    let data: Vec<f64> = (0..shape.size())
        .map(|_| f64::from_bits(rest.get_u64_le()))
        .collect();
    if data.iter().any(|v| !v.is_finite()) {
        return Err(FmError::InvalidShape {
            reason: "frame contains non-finite values".into(),
        });
    }
    DenseMatrix::from_vec(shape, data)
}

fn decode_header(bytes: &[u8], expect: Dtype) -> Result<(Shape, &[u8])> {
    let err = |reason: String| FmError::InvalidShape { reason };
    let mut b = bytes;
    if b.remaining() < 8 {
        return Err(err("frame too short for header".into()));
    }
    let mut magic = [0u8; 4];
    b.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err(format!("bad magic {magic:?}")));
    }
    let version = b.get_u8();
    if version != VERSION {
        return Err(err(format!("unsupported version {version}")));
    }
    let dtype = b.get_u8();
    if dtype != expect as u8 {
        return Err(err(format!(
            "frame holds dtype {dtype}, expected {}",
            expect as u8
        )));
    }
    let ndim = b.get_u16_le() as usize;
    if b.remaining() < ndim * 8 {
        return Err(err("frame too short for dims".into()));
    }
    let dims: Vec<usize> = (0..ndim).map(|_| b.get_u64_le() as usize).collect();
    let shape = Shape::new(dims)?;
    if b.remaining() < shape.size() * 8 {
        return Err(err(format!(
            "frame holds {} bytes of data, need {}",
            b.remaining(),
            shape.size() * 8
        )));
    }
    Ok((shape, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    #[test]
    fn u64_round_trip() {
        let m = DenseMatrix::from_vec(shape(&[3, 4]), (0..12u64).collect::<Vec<_>>())
            .unwrap();
        let bytes = encode_u64(&m);
        assert_eq!(bytes.len(), 4 + 1 + 1 + 2 + 2 * 8 + 12 * 8);
        let back = decode_u64(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        let m = DenseMatrix::from_vec(
            shape(&[2, 2]),
            vec![1.5, -0.000123, 9e99, 0.0],
        )
        .unwrap();
        let back = decode_f64(&encode_f64(&m)).unwrap();
        assert_eq!(back.as_slice(), m.as_slice());
    }

    #[test]
    fn rejects_corrupted_frames() {
        let m = DenseMatrix::from_vec(shape(&[2, 2]), vec![1u64, 2, 3, 4]).unwrap();
        let bytes = encode_u64(&m).to_vec();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode_u64(&bad).is_err());
        // Wrong version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(decode_u64(&bad).is_err());
        // Wrong dtype request.
        assert!(decode_f64(&bytes).is_err());
        // Truncated payload.
        assert!(decode_u64(&bytes[..bytes.len() - 8]).is_err());
        // Truncated header.
        assert!(decode_u64(&bytes[..6]).is_err());
    }

    #[test]
    fn rejects_non_finite_floats() {
        let m = DenseMatrix::from_vec(shape(&[2]), vec![1.0, 2.0]).unwrap();
        let mut bytes = encode_f64(&m).to_vec();
        let nan = f64::NAN.to_bits().to_le_bytes();
        let off = bytes.len() - 8;
        bytes[off..].copy_from_slice(&nan);
        assert!(decode_f64(&bytes).is_err());
    }

    #[test]
    fn high_dimensional_round_trip() {
        let s = shape(&[3, 2, 2, 3, 2]);
        let m = DenseMatrix::from_vec(
            s.clone(),
            (0..s.size() as u64).collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(decode_u64(&encode_u64(&m)).unwrap(), m);
    }
}
