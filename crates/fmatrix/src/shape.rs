use crate::{FmError, Result};
use serde::{Deserialize, Serialize};

/// Dimension cardinalities `F₁ × F₂ × … × F_d` of a frequency matrix,
/// together with precomputed row-major strides.
///
/// The last dimension is contiguous in memory. All dimensions must be
/// non-empty; the total size must fit in `usize`.
///
/// ```
/// use dpod_fmatrix::Shape;
/// let s = Shape::new(vec![3, 2, 4]).unwrap();
/// assert_eq!(s.ndim(), 3);
/// assert_eq!(s.size(), 24);
/// assert_eq!(s.flat_index(&[1, 0, 2]).unwrap(), 10);
/// assert_eq!(s.coords(10), vec![1, 0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
    strides: Vec<usize>,
}

impl Shape {
    /// Builds a shape from dimension cardinalities.
    ///
    /// # Errors
    /// Returns [`FmError::InvalidShape`] if `dims` is empty, any dimension is
    /// zero, or the total element count overflows `usize`.
    pub fn new(dims: Vec<usize>) -> Result<Self> {
        if dims.is_empty() {
            return Err(FmError::InvalidShape {
                reason: "shape must have at least one dimension".into(),
            });
        }
        if let Some(&zero_dim) = dims.iter().find(|&&d| d == 0) {
            let _ = zero_dim;
            return Err(FmError::InvalidShape {
                reason: format!("zero-length dimension in {dims:?}"),
            });
        }
        let mut size: usize = 1;
        for &d in &dims {
            size = size.checked_mul(d).ok_or_else(|| FmError::InvalidShape {
                reason: format!("element count overflows usize for dims {dims:?}"),
            })?;
        }
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        Ok(Shape { dims, strides })
    }

    /// Builds a hyper-cube shape with `side` cells in each of `ndim` dimensions.
    pub fn cube(ndim: usize, side: usize) -> Result<Self> {
        Shape::new(vec![side; ndim])
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Cardinality of dimension `dim` (0-based).
    #[inline]
    pub fn dim(&self, dim: usize) -> usize {
        self.dims[dim]
    }

    /// All dimension cardinalities.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major strides (elements, not bytes).
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Total number of entries (`∏ F_i`).
    #[inline]
    pub fn size(&self) -> usize {
        // Non-empty dims with no zero entries: the product fits by construction.
        self.dims.iter().product()
    }

    /// Converts multi-dimensional coordinates to a flat index.
    ///
    /// # Errors
    /// [`FmError::DimensionMismatch`] if `coords.len() != ndim()`;
    /// [`FmError::OutOfBounds`] if any coordinate exceeds its dimension.
    #[inline]
    pub fn flat_index(&self, coords: &[usize]) -> Result<usize> {
        if coords.len() != self.dims.len() {
            return Err(FmError::DimensionMismatch {
                expected: self.dims.len(),
                got: coords.len(),
            });
        }
        let mut idx = 0usize;
        for (i, (&c, &s)) in coords.iter().zip(&self.strides).enumerate() {
            if c >= self.dims[i] {
                return Err(FmError::OutOfBounds {
                    coords: coords.to_vec(),
                    dims: self.dims.clone(),
                });
            }
            idx += c * s;
        }
        Ok(idx)
    }

    /// Converts multi-dimensional coordinates to a flat index without bounds
    /// checks beyond debug assertions. Used on hot paths where the caller
    /// already validated the coordinates.
    #[inline]
    pub fn flat_index_unchecked(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.dims.len());
        let mut idx = 0usize;
        for (i, (&c, &s)) in coords.iter().zip(&self.strides).enumerate() {
            debug_assert!(c < self.dims[i], "coord {c} out of bounds in dim {i}");
            idx += c * s;
        }
        idx
    }

    /// Converts a flat index back to coordinates.
    ///
    /// # Panics
    /// Panics in debug builds if `index >= size()`.
    #[inline]
    pub fn coords(&self, index: usize) -> Vec<usize> {
        debug_assert!(index < self.size());
        let mut rem = index;
        let mut out = Vec::with_capacity(self.dims.len());
        for &s in &self.strides {
            out.push(rem / s);
            rem %= s;
        }
        out
    }

    /// Writes the coordinates of `index` into `out` (no allocation).
    #[inline]
    pub fn coords_into(&self, index: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.dims.len());
        let mut rem = index;
        for (o, &s) in out.iter_mut().zip(&self.strides) {
            *o = rem / s;
            rem %= s;
        }
    }

    /// Iterates over every coordinate tuple of the domain in row-major order.
    pub fn iter_coords(&self) -> CoordIter<'_> {
        CoordIter {
            shape: self,
            next: Some(vec![0; self.dims.len()]),
        }
    }
}

/// Row-major iterator over all coordinate tuples of a [`Shape`].
///
/// Produced by [`Shape::iter_coords`].
#[derive(Debug)]
pub struct CoordIter<'a> {
    shape: &'a Shape,
    next: Option<Vec<usize>>,
}

impl Iterator for CoordIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.next.take()?;
        let mut succ = current.clone();
        // Odometer increment from the last (contiguous) dimension.
        let mut dim = self.shape.ndim();
        loop {
            if dim == 0 {
                // Wrapped past the first dimension: iteration is complete.
                self.next = None;
                break;
            }
            dim -= 1;
            succ[dim] += 1;
            if succ[dim] < self.shape.dim(dim) {
                self.next = Some(succ);
                break;
            }
            succ[dim] = 0;
        }
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.next {
            None => (0, Some(0)),
            Some(c) => {
                let remaining = self.shape.size() - self.shape.flat_index_unchecked(c);
                (remaining, Some(remaining))
            }
        }
    }
}

impl ExactSizeIterator for CoordIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_zero_dims() {
        assert!(matches!(
            Shape::new(vec![]),
            Err(FmError::InvalidShape { .. })
        ));
        assert!(matches!(
            Shape::new(vec![3, 0, 2]),
            Err(FmError::InvalidShape { .. })
        ));
    }

    #[test]
    fn rejects_overflowing_size() {
        let huge = usize::MAX / 2;
        assert!(matches!(
            Shape::new(vec![huge, 4]),
            Err(FmError::InvalidShape { .. })
        ));
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![3, 2, 4]).unwrap();
        assert_eq!(s.strides(), &[8, 4, 1]);
        assert_eq!(s.size(), 24);
    }

    #[test]
    fn one_dimensional_shape() {
        let s = Shape::new(vec![7]).unwrap();
        assert_eq!(s.ndim(), 1);
        assert_eq!(s.strides(), &[1]);
        assert_eq!(s.flat_index(&[5]).unwrap(), 5);
        assert_eq!(s.coords(5), vec![5]);
    }

    #[test]
    fn flat_index_round_trips() {
        let s = Shape::new(vec![3, 5, 2]).unwrap();
        for i in 0..s.size() {
            let c = s.coords(i);
            assert_eq!(s.flat_index(&c).unwrap(), i);
            assert_eq!(s.flat_index_unchecked(&c), i);
        }
    }

    #[test]
    fn coords_into_matches_coords() {
        let s = Shape::new(vec![4, 3]).unwrap();
        let mut buf = [0usize; 2];
        for i in 0..s.size() {
            s.coords_into(i, &mut buf);
            assert_eq!(buf.to_vec(), s.coords(i));
        }
    }

    #[test]
    fn flat_index_validates() {
        let s = Shape::new(vec![3, 2]).unwrap();
        assert!(matches!(
            s.flat_index(&[0, 2]),
            Err(FmError::OutOfBounds { .. })
        ));
        assert!(matches!(
            s.flat_index(&[0]),
            Err(FmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn iter_coords_covers_domain_in_order() {
        let s = Shape::new(vec![2, 3]).unwrap();
        let all: Vec<_> = s.iter_coords().collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
        assert_eq!(s.iter_coords().len(), 6);
    }

    #[test]
    fn cube_builds_hypercube() {
        let s = Shape::cube(4, 5).unwrap();
        assert_eq!(s.dims(), &[5, 5, 5, 5]);
        assert_eq!(s.size(), 625);
    }
}
