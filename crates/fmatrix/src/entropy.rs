//! Shannon entropy of frequency matrices (Definition 4 of the paper).
//!
//! EBP (§3.2) reasons about the *information loss* of a partitioning as
//! `H(F) − H(F|P)`; these helpers compute both sides. All logarithms are
//! base 2, matching the paper.

use crate::{AxisBox, DenseMatrix, Element, PrefixSum};

/// Entropy of a discrete distribution given by non-negative weights.
///
/// Weights are normalized internally; zero weights contribute nothing
/// (`0·log 0 = 0` by convention). Returns `0.0` when every weight is zero.
///
/// ```
/// use dpod_fmatrix::entropy::entropy_of_weights;
/// let h = entropy_of_weights([1.0, 1.0, 1.0, 1.0].iter().copied());
/// assert!((h - 2.0).abs() < 1e-12);
/// ```
pub fn entropy_of_weights(weights: impl Iterator<Item = f64> + Clone) -> f64 {
    let total: f64 = weights.clone().filter(|w| *w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for w in weights {
        if w > 0.0 {
            let p = w / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Entropy of a frequency matrix at entry granularity, `H(F)`.
pub fn matrix_entropy<T: Element>(m: &DenseMatrix<T>) -> f64 {
    entropy_of_weights(m.as_slice().iter().map(|v| v.to_f64()))
}

/// Entropy of a frequency matrix under a partitioning, `H(F|P)`
/// (Definition 4): the entropy of the partition-total distribution.
///
/// Partition totals are read from a prefix-sum table, so the cost is
/// `O(|P| · 2^d)` regardless of partition sizes.
pub fn partition_entropy(prefix: &PrefixSum<i128>, partitions: &[AxisBox]) -> f64 {
    entropy_of_weights(PartitionWeights {
        prefix,
        partitions,
        next: 0,
    })
}

/// Cloneable iterator adapter over partition totals (needed because
/// [`entropy_of_weights`] takes two passes).
struct PartitionWeights<'a> {
    prefix: &'a PrefixSum<i128>,
    partitions: &'a [AxisBox],
    next: usize,
}

impl Clone for PartitionWeights<'_> {
    fn clone(&self) -> Self {
        PartitionWeights {
            prefix: self.prefix,
            partitions: self.partitions,
            next: self.next,
        }
    }
}

impl Iterator for PartitionWeights<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let b = self.partitions.get(self.next)?;
        self.next += 1;
        Some(self.prefix.box_count(b) as f64)
    }
}

/// The paper's uniform-data approximation `H(F) ≈ log₂ N` (Eq. 17),
/// used by EBP when the true entropy cannot be observed privately.
#[inline]
pub fn approx_entropy_from_total(n: f64) -> f64 {
    if n <= 1.0 {
        0.0
    } else {
        n.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    #[test]
    fn uniform_matrix_has_log_size_entropy() {
        let m = DenseMatrix::<u64>::from_vec(shape(&[2, 4]), vec![3; 8]).unwrap();
        assert!((matrix_entropy(&m) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn point_mass_has_zero_entropy() {
        let mut m = DenseMatrix::<u64>::zeros(shape(&[4, 4]));
        m.set(&[2, 2], 100).unwrap();
        assert_eq!(matrix_entropy(&m), 0.0);
    }

    #[test]
    fn empty_matrix_has_zero_entropy() {
        let m = DenseMatrix::<u64>::zeros(shape(&[4, 4]));
        assert_eq!(matrix_entropy(&m), 0.0);
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let uniform = DenseMatrix::<u64>::from_vec(shape(&[8]), vec![5; 8]).unwrap();
        let skewed =
            DenseMatrix::<u64>::from_vec(shape(&[8]), vec![33, 1, 1, 1, 1, 1, 1, 1]).unwrap();
        assert!(matrix_entropy(&skewed) < matrix_entropy(&uniform));
    }

    #[test]
    fn partition_entropy_matches_manual() {
        let m = DenseMatrix::<u64>::from_vec(shape(&[4]), vec![1, 1, 3, 3]).unwrap();
        let p = PrefixSum::from_counts(&m);
        let parts = vec![
            AxisBox::new(vec![0], vec![2]).unwrap(), // total 2
            AxisBox::new(vec![2], vec![4]).unwrap(), // total 6
        ];
        let h = partition_entropy(&p, &parts);
        let expected = entropy_of_weights([2.0, 6.0].iter().copied());
        assert!((h - expected).abs() < 1e-12);
        // Coarsening cannot increase entropy.
        assert!(h <= matrix_entropy(&m) + 1e-12);
    }

    #[test]
    fn approx_entropy_clamps_small_totals() {
        assert_eq!(approx_entropy_from_total(0.0), 0.0);
        assert_eq!(approx_entropy_from_total(-3.0), 0.0);
        assert!((approx_entropy_from_total(1024.0) - 10.0).abs() < 1e-12);
    }
}
