use crate::{AxisBox, FmError, Result, Shape};
use serde::{Deserialize, Serialize};

/// Scalar types storable in a [`DenseMatrix`].
///
/// Raw frequency matrices use `u64`; sanitized (noisy) matrices use `f64`.
pub trait Element: Copy + Default + PartialEq + std::fmt::Debug + 'static {
    /// Lossy conversion used by summary statistics and the query evaluator.
    fn to_f64(self) -> f64;
}

impl Element for u64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}
impl Element for u32 {
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}
impl Element for i64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}
impl Element for f64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

/// A dense, row-major `d`-dimensional frequency matrix.
///
/// This is the central data structure of the paper: entry
/// `F[c₁, …, c_d]` counts the individuals whose (origin, stops…,
/// destination) trajectory maps to cell `(c₁, …, c_d)`.
///
/// ```
/// use dpod_fmatrix::{DenseMatrix, Shape};
/// let mut m = DenseMatrix::<u64>::zeros(Shape::new(vec![3, 2]).unwrap());
/// m.add_at(&[1, 0], 5).unwrap();
/// assert_eq!(m.get(&[1, 0]).unwrap(), 5);
/// assert_eq!(m.total(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Element> DenseMatrix<T> {
    /// An all-zero (default) matrix of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let data = vec![T::default(); shape.size()];
        DenseMatrix { shape, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    /// [`FmError::LengthMismatch`] when `data.len() != shape.size()`.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Result<Self> {
        if data.len() != shape.size() {
            return Err(FmError::LengthMismatch {
                expected: shape.size(),
                got: data.len(),
            });
        }
        Ok(DenseMatrix { shape, data })
    }

    /// The matrix shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` only for the degenerate case of a zero-size buffer (cannot be
    /// constructed through [`Shape`], which rejects zero dims).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry at `coords`.
    ///
    /// # Errors
    /// Propagates coordinate validation from [`Shape::flat_index`].
    #[inline]
    pub fn get(&self, coords: &[usize]) -> Result<T> {
        Ok(self.data[self.shape.flat_index(coords)?])
    }

    /// Entry at a flat row-major index.
    #[inline]
    pub fn get_flat(&self, index: usize) -> T {
        self.data[index]
    }

    /// Sets the entry at `coords`.
    ///
    /// # Errors
    /// Propagates coordinate validation from [`Shape::flat_index`].
    #[inline]
    pub fn set(&mut self, coords: &[usize], value: T) -> Result<()> {
        let idx = self.shape.flat_index(coords)?;
        self.data[idx] = value;
        Ok(())
    }

    /// Sets the entry at a flat row-major index.
    #[inline]
    pub fn set_flat(&mut self, index: usize, value: T) {
        self.data[index] = value;
    }

    /// Read-only view of the row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Sum of all entries as `f64` (the paper's `N` for count matrices).
    pub fn total(&self) -> f64 {
        self.data.iter().map(|v| v.to_f64()).sum()
    }

    /// Sum of the entries inside `b` by direct iteration: `O(volume)`.
    ///
    /// Mechanisms use [`crate::PrefixSum`] instead; this is the reference
    /// implementation used in tests and for small boxes.
    pub fn box_sum_naive(&self, b: &AxisBox) -> f64 {
        debug_assert!(b.fits(&self.shape), "box must fit the matrix domain");
        if b.is_empty() {
            return 0.0;
        }
        // Walk contiguous runs along the last dimension for cache efficiency.
        let d = self.ndim();
        let run = b.extent(d - 1);
        let mut total = 0.0;
        let mut prefix = b.lo().to_vec();
        loop {
            let start = self.shape.flat_index_unchecked(&prefix);
            total += self.data[start..start + run]
                .iter()
                .map(|v| v.to_f64())
                .sum::<f64>();
            // Odometer over the leading d−1 dimensions.
            let mut dim = d - 1;
            loop {
                if dim == 0 {
                    return total;
                }
                dim -= 1;
                prefix[dim] += 1;
                if prefix[dim] < b.hi()[dim] {
                    break;
                }
                prefix[dim] = b.lo()[dim];
            }
        }
    }

    /// Iterates `(flat_index, value)` over the cells of `b` in row-major
    /// order.
    pub fn box_values<'a>(&'a self, b: &'a AxisBox) -> impl Iterator<Item = (usize, T)> + 'a {
        debug_assert!(b.fits(&self.shape));
        BoxRuns::new(&self.shape, b)
            .flat_map(move |(start, run)| (start..start + run).map(move |i| (i, self.data[i])))
    }

    /// Applies `f` to every value, producing a matrix of another element type.
    pub fn map<U: Element>(&self, f: impl Fn(T) -> U) -> DenseMatrix<U> {
        DenseMatrix {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Fills every cell of `b` with `value`.
    pub fn fill_box(&mut self, b: &AxisBox, value: T) {
        debug_assert!(b.fits(&self.shape));
        let runs: Vec<(usize, usize)> = BoxRuns::new(&self.shape, b).collect();
        for (start, run) in runs {
            self.data[start..start + run].fill(value);
        }
    }

    /// Maximum entry converted to `f64`; `None` for empty buffers.
    pub fn max_f64(&self) -> Option<f64> {
        self.data.iter().map(|v| v.to_f64()).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }
}

impl DenseMatrix<u64> {
    /// Adds `amount` to the entry at `coords` (saturating).
    ///
    /// # Errors
    /// Propagates coordinate validation from [`Shape::flat_index`].
    #[inline]
    pub fn add_at(&mut self, coords: &[usize], amount: u64) -> Result<()> {
        let idx = self.shape.flat_index(coords)?;
        self.data[idx] = self.data[idx].saturating_add(amount);
        Ok(())
    }

    /// Builds a count matrix from a stream of cell coordinates, one count
    /// per point. Coordinates outside the domain are clamped to the nearest
    /// boundary cell — matching how the paper's city grids absorb GPS points
    /// on the region boundary.
    pub fn from_points<I>(shape: Shape, points: I) -> Self
    where
        I: IntoIterator,
        I::Item: AsRef<[usize]>,
    {
        let mut m = DenseMatrix::<u64>::zeros(shape);
        let mut clamped = Vec::with_capacity(m.ndim());
        for p in points {
            let p = p.as_ref();
            debug_assert_eq!(p.len(), m.ndim());
            clamped.clear();
            clamped.extend(p.iter().zip(m.shape.dims()).map(|(&c, &d)| c.min(d - 1)));
            let idx = m.shape.flat_index_unchecked(&clamped);
            m.data[idx] = m.data[idx].saturating_add(1);
        }
        m
    }

    /// Total count as an exact integer.
    pub fn total_u64(&self) -> u64 {
        self.data.iter().sum()
    }

    /// Number of non-zero entries.
    pub fn nonzero_count(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }
}

/// Iterator over `(start_flat_index, run_length)` for the contiguous
/// last-dimension runs of a box. Shared by the dense scans above.
struct BoxRuns<'a> {
    shape: &'a Shape,
    b: &'a AxisBox,
    prefix: Option<Vec<usize>>,
    run: usize,
}

impl<'a> BoxRuns<'a> {
    fn new(shape: &'a Shape, b: &'a AxisBox) -> Self {
        let run = if b.is_empty() {
            0
        } else {
            b.extent(shape.ndim() - 1)
        };
        let prefix = if b.is_empty() {
            None
        } else {
            Some(b.lo().to_vec())
        };
        BoxRuns {
            shape,
            b,
            prefix,
            run,
        }
    }
}

impl Iterator for BoxRuns<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.prefix.take()?;
        let start = self.shape.flat_index_unchecked(&current);
        let mut succ = current;
        let mut dim = self.shape.ndim() - 1;
        loop {
            if dim == 0 {
                break;
            }
            dim -= 1;
            succ[dim] += 1;
            if succ[dim] < self.b.hi()[dim] {
                self.prefix = Some(succ);
                break;
            }
            succ[dim] = self.b.lo()[dim];
        }
        Some((start, self.run))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::<u64>::zeros(shape(&[2, 3]));
        assert_eq!(m.total(), 0.0);
        m.set(&[1, 2], 7).unwrap();
        assert_eq!(m.get(&[1, 2]).unwrap(), 7);
        assert_eq!(m.get_flat(5), 7);
        assert!(m.get(&[2, 0]).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::<u64>::from_vec(shape(&[2, 2]), vec![1, 2, 3]).is_err());
        let m = DenseMatrix::<u64>::from_vec(shape(&[2, 2]), vec![1, 2, 3, 4]).unwrap();
        assert_eq!(m.total(), 10.0);
        assert_eq!(m.total_u64(), 10);
    }

    #[test]
    fn from_points_clamps_to_domain() {
        let m = DenseMatrix::<u64>::from_points(
            shape(&[3, 3]),
            [[0usize, 0], [2, 2], [9, 9], [1, 5]].iter(),
        );
        assert_eq!(m.total_u64(), 4);
        assert_eq!(m.get(&[2, 2]).unwrap(), 2, "out-of-range point clamps");
        assert_eq!(m.get(&[1, 2]).unwrap(), 1);
    }

    #[test]
    fn box_sum_naive_matches_manual() {
        let m = DenseMatrix::<u64>::from_vec(
            shape(&[3, 4]),
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12],
        )
        .unwrap();
        let b = AxisBox::new(vec![1, 1], vec![3, 3]).unwrap();
        // rows 1..3, cols 1..3 => 6+7 + 10+11
        assert_eq!(m.box_sum_naive(&b), 34.0);
        assert_eq!(m.box_sum_naive(&AxisBox::full(m.shape())), 78.0);
        let empty = AxisBox::new(vec![1, 2], vec![1, 4]).unwrap();
        assert_eq!(m.box_sum_naive(&empty), 0.0);
    }

    #[test]
    fn box_sum_naive_3d() {
        let s = shape(&[2, 3, 2]);
        let m = DenseMatrix::<u64>::from_vec(s.clone(), (1..=12).collect::<Vec<u64>>()).unwrap();
        let b = AxisBox::new(vec![0, 1, 0], vec![2, 3, 2]).unwrap();
        let expected: f64 = b.iter_points().map(|c| m.get(&c).unwrap() as f64).sum();
        assert_eq!(m.box_sum_naive(&b), expected);
    }

    #[test]
    fn box_values_yields_all_cells() {
        let m = DenseMatrix::<u64>::from_vec(shape(&[2, 3]), vec![1, 2, 3, 4, 5, 6]).unwrap();
        let b = AxisBox::new(vec![0, 1], vec![2, 3]).unwrap();
        let vals: Vec<u64> = m.box_values(&b).map(|(_, v)| v).collect();
        assert_eq!(vals, vec![2, 3, 5, 6]);
    }

    #[test]
    fn fill_box_only_touches_box() {
        let mut m = DenseMatrix::<f64>::zeros(shape(&[3, 3]));
        let b = AxisBox::new(vec![0, 0], vec![2, 2]).unwrap();
        m.fill_box(&b, 1.5);
        assert_eq!(m.total(), 6.0);
        assert_eq!(m.get(&[2, 2]).unwrap(), 0.0);
        assert_eq!(m.get(&[1, 1]).unwrap(), 1.5);
    }

    #[test]
    fn map_converts_element_type() {
        let m = DenseMatrix::<u64>::from_vec(shape(&[2, 2]), vec![1, 2, 3, 4]).unwrap();
        let f = m.map(|v| v as f64 * 0.5);
        assert_eq!(f.as_slice(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn nonzero_and_max() {
        let m = DenseMatrix::<u64>::from_vec(shape(&[2, 2]), vec![0, 2, 0, 9]).unwrap();
        assert_eq!(m.nonzero_count(), 2);
        assert_eq!(m.max_f64(), Some(9.0));
    }

    #[test]
    fn saturating_add() {
        let mut m = DenseMatrix::<u64>::zeros(shape(&[1]));
        m.set(&[0], u64::MAX - 1).unwrap();
        m.add_at(&[0], 5).unwrap();
        assert_eq!(m.get(&[0]).unwrap(), u64::MAX);
    }
}
