use crate::{DenseMatrix, Result, Shape};
use std::collections::HashMap;

/// A hash-based sparse frequency matrix.
///
/// High-dimensional OD matrices are built incrementally from trajectory
/// streams; with `d = 6` and realistic trip counts the overwhelming majority
/// of cells is empty, so accumulation happens here and the result is
/// densified once (mechanisms operate on [`DenseMatrix`] because they need
/// prefix sums over the *domain*, not just the support).
///
/// ```
/// use dpod_fmatrix::{Shape, SparseMatrix};
/// let mut s = SparseMatrix::new(Shape::new(vec![4, 4]).unwrap());
/// s.add(&[1, 2], 3).unwrap();
/// s.add(&[1, 2], 1).unwrap();
/// assert_eq!(s.get(&[1, 2]).unwrap(), 4);
/// assert_eq!(s.to_dense().total_u64(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    shape: Shape,
    cells: HashMap<usize, u64>,
    total: u64,
}

impl SparseMatrix {
    /// An empty sparse matrix over `shape`.
    pub fn new(shape: Shape) -> Self {
        SparseMatrix {
            shape,
            cells: HashMap::new(),
            total: 0,
        }
    }

    /// The matrix shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Adds `amount` to the cell at `coords`.
    ///
    /// # Errors
    /// Propagates coordinate validation from [`Shape::flat_index`].
    pub fn add(&mut self, coords: &[usize], amount: u64) -> Result<()> {
        let idx = self.shape.flat_index(coords)?;
        *self.cells.entry(idx).or_insert(0) += amount;
        self.total = self.total.saturating_add(amount);
        Ok(())
    }

    /// Adds one to the cell at `coords`, clamping out-of-range coordinates
    /// to the domain boundary (mirrors [`DenseMatrix::from_points`]).
    pub fn add_point_clamped(&mut self, coords: &[usize]) {
        debug_assert_eq!(coords.len(), self.shape.ndim());
        let clamped: Vec<usize> = coords
            .iter()
            .zip(self.shape.dims())
            .map(|(&c, &d)| c.min(d - 1))
            .collect();
        let idx = self.shape.flat_index_unchecked(&clamped);
        *self.cells.entry(idx).or_insert(0) += 1;
        self.total = self.total.saturating_add(1);
    }

    /// Count at `coords` (zero when absent).
    ///
    /// # Errors
    /// Propagates coordinate validation from [`Shape::flat_index`].
    pub fn get(&self, coords: &[usize]) -> Result<u64> {
        let idx = self.shape.flat_index(coords)?;
        Ok(self.cells.get(&idx).copied().unwrap_or(0))
    }

    /// Total count across all cells.
    #[inline]
    pub fn total_u64(&self) -> u64 {
        self.total
    }

    /// Number of non-empty cells.
    #[inline]
    pub fn support(&self) -> usize {
        self.cells.len()
    }

    /// Fraction of domain cells that are non-empty.
    pub fn density(&self) -> f64 {
        self.cells.len() as f64 / self.shape.size() as f64
    }

    /// Iterates `(flat_index, count)` over non-empty cells (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.cells.iter().map(|(&i, &v)| (i, v))
    }

    /// Densifies into a [`DenseMatrix`].
    pub fn to_dense(&self) -> DenseMatrix<u64> {
        let mut m = DenseMatrix::zeros(self.shape.clone());
        for (&idx, &v) in &self.cells {
            m.set_flat(idx, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    #[test]
    fn add_and_get() {
        let mut s = SparseMatrix::new(shape(&[3, 3]));
        s.add(&[0, 0], 2).unwrap();
        s.add(&[2, 2], 1).unwrap();
        s.add(&[0, 0], 3).unwrap();
        assert_eq!(s.get(&[0, 0]).unwrap(), 5);
        assert_eq!(s.get(&[1, 1]).unwrap(), 0);
        assert_eq!(s.total_u64(), 6);
        assert_eq!(s.support(), 2);
        assert!(s.add(&[3, 0], 1).is_err());
    }

    #[test]
    fn clamped_points() {
        let mut s = SparseMatrix::new(shape(&[2, 2]));
        s.add_point_clamped(&[5, 5]);
        s.add_point_clamped(&[1, 1]);
        assert_eq!(s.get(&[1, 1]).unwrap(), 2);
    }

    #[test]
    fn densify_round_trip() {
        let mut s = SparseMatrix::new(shape(&[2, 3]));
        s.add(&[0, 1], 4).unwrap();
        s.add(&[1, 2], 9).unwrap();
        let d = s.to_dense();
        assert_eq!(d.get(&[0, 1]).unwrap(), 4);
        assert_eq!(d.get(&[1, 2]).unwrap(), 9);
        assert_eq!(d.total_u64(), s.total_u64());
    }

    #[test]
    fn density_fraction() {
        let mut s = SparseMatrix::new(shape(&[4, 4]));
        assert_eq!(s.density(), 0.0);
        s.add(&[0, 0], 1).unwrap();
        s.add(&[1, 1], 1).unwrap();
        assert!((s.density() - 2.0 / 16.0).abs() < 1e-12);
    }
}
