use crate::{AxisBox, DenseMatrix, Element, Shape};

/// Value types a [`PrefixSum`] can accumulate.
///
/// Integer counts accumulate in `i128` so that the `2^d`-corner
/// inclusion–exclusion never underflows; sanitized matrices accumulate in
/// `f64`.
pub trait SatValue:
    Copy
    + Default
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::fmt::Debug
    + 'static
{
}

impl SatValue for i128 {}
impl SatValue for f64 {}

/// A `d`-dimensional summed-area table.
///
/// Stores, for every cell `c`, the sum of all entries in `[0, c]`; any box
/// sum is then recovered with `2^d` lookups by inclusion–exclusion. Every
/// mechanism uses this to obtain partition totals in `O(2^d)` instead of
/// `O(volume)`, and the query evaluator uses it for exact true answers.
///
/// Build cost: `O(d · size)`; memory: one accumulator per cell.
///
/// ```
/// use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum, Shape};
/// let m = DenseMatrix::<u64>::from_vec(
///     Shape::new(vec![2, 2]).unwrap(), vec![1, 2, 3, 4]).unwrap();
/// let p = PrefixSum::from_counts(&m);
/// assert_eq!(p.box_sum(&AxisBox::full(m.shape())), 10);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixSum<A> {
    shape: Shape,
    table: Vec<A>,
}

impl<A: SatValue> PrefixSum<A> {
    /// Builds a table from any dense matrix via an element conversion.
    pub fn build<T: Element>(matrix: &DenseMatrix<T>, conv: impl Fn(T) -> A) -> Self {
        let shape = matrix.shape().clone();
        let mut table: Vec<A> = matrix.as_slice().iter().map(|&v| conv(v)).collect();
        // One running-sum pass per dimension turns raw values into the SAT.
        let size = shape.size();
        for dim in 0..shape.ndim() {
            let stride = shape.strides()[dim];
            let extent = shape.dim(dim);
            if extent == 1 {
                continue;
            }
            // Walk all lines along `dim`: indices i where coordinate(dim) == 0.
            let block = stride * extent;
            let mut base = 0;
            while base < size {
                for off in 0..stride {
                    let mut idx = base + off;
                    let mut acc = table[idx];
                    for _ in 1..extent {
                        idx += stride;
                        acc = acc + table[idx];
                        table[idx] = acc;
                    }
                }
                base += block;
            }
        }
        PrefixSum { shape, table }
    }

    /// The shape this table was built over.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Sum of all entries with coordinates `≤ coords` component-wise
    /// (inclusive). Returns the zero value when any coordinate is `None`
    /// (used internally for the `lo − 1` corners).
    #[inline]
    fn corner(&self, coords: &[Option<usize>]) -> A {
        let mut idx = 0usize;
        for (i, c) in coords.iter().enumerate() {
            match c {
                None => return A::default(),
                Some(v) => idx += v * self.shape.strides()[i],
            }
        }
        self.table[idx]
    }

    /// Sum of the matrix entries inside the half-open box `b`.
    ///
    /// # Panics
    /// Debug-asserts that the box fits the domain.
    pub fn box_sum(&self, b: &AxisBox) -> A {
        debug_assert!(b.fits(&self.shape), "box must fit the table domain");
        if b.is_empty() {
            return A::default();
        }
        let d = self.shape.ndim();
        debug_assert!(d <= 32, "inclusion-exclusion uses a u32 corner mask");
        let mut total = A::default();
        let mut corner = vec![None; d];
        // Inclusion–exclusion over the 2^d corners: bit i selects hi−1 (no
        // subtraction) vs lo−1 (subtract one step) in dimension i.
        for mask in 0..(1u32 << d) {
            let mut sign_negative = false;
            for (i, slot) in corner.iter_mut().enumerate() {
                if mask & (1 << i) == 0 {
                    *slot = Some(b.hi()[i] - 1);
                } else {
                    sign_negative ^= true;
                    *slot = b.lo()[i].checked_sub(1);
                }
            }
            let v = self.corner(&corner);
            total = if sign_negative { total - v } else { total + v };
        }
        total
    }
}

impl PrefixSum<i128> {
    /// Builds a table over a raw count matrix.
    pub fn from_counts(matrix: &DenseMatrix<u64>) -> Self {
        PrefixSum::build(matrix, |v| v as i128)
    }

    /// Box sum as `u64`.
    ///
    /// # Panics
    /// Debug-asserts the sum is non-negative (always true for count tables).
    pub fn box_count(&self, b: &AxisBox) -> u64 {
        let s = self.box_sum(b);
        debug_assert!(s >= 0, "count table produced negative sum");
        s as u64
    }
}

impl PrefixSum<f64> {
    /// Builds a table over a sanitized (noisy) matrix.
    ///
    /// Floating-point SATs accumulate rounding error of order
    /// `ε_machine · size · magnitude`; for the ≤10⁷-cell matrices used here
    /// this is far below the Laplace noise floor.
    pub fn from_f64(matrix: &DenseMatrix<f64>) -> Self {
        PrefixSum::build(matrix, |v| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use rand::{Rng, SeedableRng};

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    #[test]
    fn matches_naive_2d() {
        let m = DenseMatrix::<u64>::from_vec(
            shape(&[3, 4]),
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12],
        )
        .unwrap();
        let p = PrefixSum::from_counts(&m);
        for lo0 in 0..3 {
            for hi0 in lo0..=3 {
                for lo1 in 0..4 {
                    for hi1 in lo1..=4 {
                        let b = AxisBox::new(vec![lo0, lo1], vec![hi0, hi1]).unwrap();
                        assert_eq!(p.box_count(&b) as f64, m.box_sum_naive(&b), "box {b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn matches_naive_random_4d() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let s = shape(&[4, 3, 5, 2]);
        let data: Vec<u64> = (0..s.size()).map(|_| rng.gen_range(0..20)).collect();
        let m = DenseMatrix::from_vec(s.clone(), data).unwrap();
        let p = PrefixSum::from_counts(&m);
        for _ in 0..200 {
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            for d in 0..s.ndim() {
                let a = rng.gen_range(0..=s.dim(d));
                let b = rng.gen_range(0..=s.dim(d));
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            let b = AxisBox::new(lo, hi).unwrap();
            assert_eq!(p.box_count(&b) as f64, m.box_sum_naive(&b), "box {b:?}");
        }
    }

    #[test]
    fn f64_table_matches_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = shape(&[6, 7]);
        let data: Vec<f64> = (0..s.size()).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let m = DenseMatrix::from_vec(s.clone(), data).unwrap();
        let p = PrefixSum::from_f64(&m);
        for _ in 0..100 {
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            for d in 0..s.ndim() {
                let a = rng.gen_range(0..=s.dim(d));
                let b = rng.gen_range(0..=s.dim(d));
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            let b = AxisBox::new(lo, hi).unwrap();
            let expected = m.box_sum_naive(&b);
            let got = p.box_sum(&b);
            assert!(
                (expected - got).abs() < 1e-9 * (1.0 + expected.abs()),
                "box {b:?}: naive {expected} vs SAT {got}"
            );
        }
    }

    #[test]
    fn one_dimensional() {
        let m = DenseMatrix::<u64>::from_vec(shape(&[5]), vec![1, 2, 3, 4, 5]).unwrap();
        let p = PrefixSum::from_counts(&m);
        assert_eq!(p.box_count(&AxisBox::new(vec![1], vec![4]).unwrap()), 9);
        assert_eq!(p.box_count(&AxisBox::new(vec![0], vec![5]).unwrap()), 15);
        assert_eq!(p.box_count(&AxisBox::new(vec![2], vec![2]).unwrap()), 0);
    }

    #[test]
    fn empty_box_is_zero() {
        let m = DenseMatrix::<u64>::from_vec(shape(&[2, 2]), vec![1, 1, 1, 1]).unwrap();
        let p = PrefixSum::from_counts(&m);
        let empty = AxisBox::new(vec![1, 0], vec![1, 2]).unwrap();
        assert_eq!(p.box_count(&empty), 0);
    }

    #[test]
    fn singleton_dims() {
        let m = DenseMatrix::<u64>::from_vec(shape(&[1, 3, 1]), vec![4, 5, 6]).unwrap();
        let p = PrefixSum::from_counts(&m);
        let b = AxisBox::new(vec![0, 1, 0], vec![1, 3, 1]).unwrap();
        assert_eq!(p.box_count(&b), 11);
    }
}
