//! # dpod-fmatrix
//!
//! The frequency-matrix substrate for the `dp-odmatrix` workspace.
//!
//! A *frequency matrix* (FM) is a `d`-dimensional array `F₁ × F₂ × … × F_d`
//! of counts, the data structure sanitized by every mechanism in
//! *"Differentially-Private Publication of Origin-Destination Matrices with
//! Intermediate Stops"* (EDBT 2022). This crate provides:
//!
//! * [`Shape`] — dimension cardinalities with row-major strides;
//! * [`AxisBox`] — half-open axis-aligned orthotopes (the paper's
//!   *d-orthotope*), used both as partitions and as range queries;
//! * [`DenseMatrix`] — a dense, strided FM over any [`Element`] type
//!   (`u64` raw counts, `f64` sanitized counts);
//! * [`SparseMatrix`] — a hash-based FM for building high-dimensional OD
//!   matrices from trajectory streams before densifying;
//! * [`PrefixSum`] — d-dimensional summed-area tables answering any box sum
//!   in `O(2^d)`;
//! * [`coarsen_to_level`]/[`coarsen_shape`]/[`pyramid_root_level`] —
//!   resolution pyramids: coarse views derived deterministically by
//!   per-axis child summation (pure post-processing over sanitized
//!   matrices);
//! * [`entropy`] — Shannon entropy of an FM and of an FM under a
//!   partitioning (Definition 4 of the paper).
//!
//! The crate is dependency-free (besides `serde`) and fully deterministic;
//! all randomness lives in the sibling crates.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod axisbox;
pub mod codec;
mod dense;
pub mod entropy;
mod error;
mod marginal;
mod prefix;
mod pyramid;
mod shape;
mod sparse;

pub use axisbox::AxisBox;
pub use dense::{DenseMatrix, Element};
pub use error::FmError;
pub use marginal::marginal_shape;
pub use prefix::PrefixSum;
pub use pyramid::{coarsen_once, coarsen_shape, coarsen_to_level, pyramid_root_level};
pub use shape::{CoordIter, Shape};
pub use sparse::SparseMatrix;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FmError>;
