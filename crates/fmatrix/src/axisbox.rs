use crate::{FmError, Result, Shape};
use serde::{Deserialize, Serialize};

/// A half-open axis-aligned orthotope `[lo, hi)` in cell coordinates.
///
/// This is the paper's *d-orthotope*: it serves both as a **partition** (a
/// group of frequency-matrix entries that receives a single noisy count) and
/// as a **range query** (Definition 3).
///
/// Invariant: `lo.len() == hi.len()` and `lo[i] <= hi[i]` for all `i`.
/// A box with `lo[i] == hi[i]` in any dimension is empty.
///
/// ```
/// use dpod_fmatrix::AxisBox;
/// let b = AxisBox::new(vec![0, 2], vec![3, 5]).unwrap();
/// assert_eq!(b.volume(), 9);
/// assert!(b.contains(&[2, 4]));
/// assert!(!b.contains(&[2, 5]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AxisBox {
    lo: Vec<usize>,
    hi: Vec<usize>,
}

impl AxisBox {
    /// Builds a box from inclusive lower and exclusive upper corners.
    ///
    /// # Errors
    /// [`FmError::DimensionMismatch`] when corner lengths differ;
    /// [`FmError::BoxOutOfDomain`] when `lo[i] > hi[i]` for some `i`.
    pub fn new(lo: Vec<usize>, hi: Vec<usize>) -> Result<Self> {
        if lo.len() != hi.len() {
            return Err(FmError::DimensionMismatch {
                expected: lo.len(),
                got: hi.len(),
            });
        }
        if let Some((i, _)) = lo.iter().zip(&hi).enumerate().find(|(_, (l, h))| l > h) {
            return Err(FmError::BoxOutOfDomain {
                reason: format!("lo > hi in dimension {i}: lo={lo:?} hi={hi:?}"),
            });
        }
        Ok(AxisBox { lo, hi })
    }

    /// The box covering the entire domain of `shape`.
    pub fn full(shape: &Shape) -> Self {
        AxisBox {
            lo: vec![0; shape.ndim()],
            hi: shape.dims().to_vec(),
        }
    }

    /// A box covering the single cell at `coords`.
    pub fn cell(coords: &[usize]) -> Self {
        AxisBox {
            lo: coords.to_vec(),
            hi: coords.iter().map(|&c| c + 1).collect(),
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.lo.len()
    }

    /// Inclusive lower corner.
    #[inline]
    pub fn lo(&self) -> &[usize] {
        &self.lo
    }

    /// Exclusive upper corner.
    #[inline]
    pub fn hi(&self) -> &[usize] {
        &self.hi
    }

    /// Side length (`hi − lo`) in dimension `dim`.
    #[inline]
    pub fn extent(&self, dim: usize) -> usize {
        self.hi[dim] - self.lo[dim]
    }

    /// Number of cells covered (product of extents). Zero if empty.
    #[inline]
    pub fn volume(&self) -> usize {
        self.lo.iter().zip(&self.hi).map(|(&l, &h)| h - l).product()
    }

    /// `true` when the box covers no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(&l, &h)| l == h)
    }

    /// `true` when the cell at `coords` lies inside the box.
    #[inline]
    pub fn contains(&self, coords: &[usize]) -> bool {
        debug_assert_eq!(coords.len(), self.ndim());
        coords
            .iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&c, (&l, &h))| c >= l && c < h)
    }

    /// `true` when `other` is fully contained in `self`.
    pub fn contains_box(&self, other: &AxisBox) -> bool {
        debug_assert_eq!(other.ndim(), self.ndim());
        other.is_empty()
            || self
                .lo
                .iter()
                .zip(&self.hi)
                .zip(other.lo.iter().zip(&other.hi))
                .all(|((&sl, &sh), (&ol, &oh))| ol >= sl && oh <= sh)
    }

    /// `true` when the box lies entirely inside the domain of `shape`.
    pub fn fits(&self, shape: &Shape) -> bool {
        self.ndim() == shape.ndim() && self.hi.iter().zip(shape.dims()).all(|(&h, &d)| h <= d)
    }

    /// Intersection with `other`; `None` when the boxes do not overlap in
    /// at least one cell.
    pub fn intersect(&self, other: &AxisBox) -> Option<AxisBox> {
        debug_assert_eq!(other.ndim(), self.ndim());
        let mut lo = Vec::with_capacity(self.ndim());
        let mut hi = Vec::with_capacity(self.ndim());
        for i in 0..self.ndim() {
            let l = self.lo[i].max(other.lo[i]);
            let h = self.hi[i].min(other.hi[i]);
            if l >= h {
                return None;
            }
            lo.push(l);
            hi.push(h);
        }
        Some(AxisBox { lo, hi })
    }

    /// Number of cells shared with `other`.
    pub fn overlap_volume(&self, other: &AxisBox) -> usize {
        self.intersect(other).map_or(0, |b| b.volume())
    }

    /// Splits the box in dimension `dim` at absolute coordinate `at`,
    /// returning `([lo, at), [at, hi))`.
    ///
    /// # Errors
    /// [`FmError::BoxOutOfDomain`] when `at` is outside `[lo[dim], hi[dim]]`.
    pub fn split_at(&self, dim: usize, at: usize) -> Result<(AxisBox, AxisBox)> {
        if at < self.lo[dim] || at > self.hi[dim] {
            return Err(FmError::BoxOutOfDomain {
                reason: format!(
                    "split point {at} outside [{}, {}] in dimension {dim}",
                    self.lo[dim], self.hi[dim]
                ),
            });
        }
        let mut left = self.clone();
        let mut right = self.clone();
        left.hi[dim] = at;
        right.lo[dim] = at;
        Ok((left, right))
    }

    /// Splits the box in dimension `dim` at the interior coordinates
    /// `cuts` (strictly increasing, each in `(lo[dim], hi[dim])`), producing
    /// `cuts.len() + 1` boxes.
    ///
    /// # Errors
    /// [`FmError::BoxOutOfDomain`] for out-of-range or non-increasing cuts.
    pub fn split_many(&self, dim: usize, cuts: &[usize]) -> Result<Vec<AxisBox>> {
        let mut prev = self.lo[dim];
        for &c in cuts {
            if c <= prev || c >= self.hi[dim] {
                return Err(FmError::BoxOutOfDomain {
                    reason: format!(
                        "cut {c} not strictly inside ({}, {}) or not increasing in dim {dim}",
                        prev, self.hi[dim]
                    ),
                });
            }
            prev = c;
        }
        let mut out = Vec::with_capacity(cuts.len() + 1);
        let mut start = self.lo[dim];
        for &c in cuts.iter().chain(std::iter::once(&self.hi[dim])) {
            let mut piece = self.clone();
            piece.lo[dim] = start;
            piece.hi[dim] = c;
            out.push(piece);
            start = c;
        }
        Ok(out)
    }

    /// Iterates over the coordinates of every cell in the box in row-major
    /// order. Intended for small boxes and tests; `O(volume)`.
    pub fn iter_points(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        let mut next = if self.is_empty() {
            None
        } else {
            Some(self.lo.clone())
        };
        std::iter::from_fn(move || {
            let current = next.take()?;
            let mut succ = current.clone();
            let mut dim = self.ndim();
            loop {
                if dim == 0 {
                    break;
                }
                dim -= 1;
                succ[dim] += 1;
                if succ[dim] < self.hi[dim] {
                    next = Some(succ);
                    break;
                }
                succ[dim] = self.lo[dim];
            }
            Some(current)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: &[usize], hi: &[usize]) -> AxisBox {
        AxisBox::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn rejects_inverted_corners() {
        assert!(AxisBox::new(vec![2, 0], vec![1, 5]).is_err());
        assert!(AxisBox::new(vec![0], vec![1, 2]).is_err());
    }

    #[test]
    fn volume_and_empty() {
        assert_eq!(b(&[0, 0], &[3, 4]).volume(), 12);
        let empty = b(&[1, 2], &[1, 5]);
        assert!(empty.is_empty());
        assert_eq!(empty.volume(), 0);
    }

    #[test]
    fn containment() {
        let outer = b(&[0, 0], &[10, 10]);
        let inner = b(&[2, 3], &[4, 9]);
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
        // Empty boxes are contained everywhere.
        assert!(inner.contains_box(&b(&[9, 9], &[9, 9])));
    }

    #[test]
    fn intersection_cases() {
        let a = b(&[0, 0], &[5, 5]);
        let c = b(&[3, 3], &[8, 8]);
        assert_eq!(a.intersect(&c), Some(b(&[3, 3], &[5, 5])));
        assert_eq!(a.overlap_volume(&c), 4);
        let disjoint = b(&[5, 0], &[9, 5]);
        assert_eq!(a.intersect(&disjoint), None);
        assert_eq!(a.overlap_volume(&disjoint), 0);
        // Touching at a corner is not overlapping (half-open semantics).
        let corner = b(&[5, 5], &[7, 7]);
        assert_eq!(a.intersect(&corner), None);
    }

    #[test]
    fn split_at_partitions_volume() {
        let a = b(&[0, 0], &[6, 4]);
        let (l, r) = a.split_at(0, 2).unwrap();
        assert_eq!(l, b(&[0, 0], &[2, 4]));
        assert_eq!(r, b(&[2, 0], &[6, 4]));
        assert_eq!(l.volume() + r.volume(), a.volume());
        // Degenerate splits at the boundary are allowed and yield an empty side.
        let (l2, r2) = a.split_at(0, 0).unwrap();
        assert!(l2.is_empty());
        assert_eq!(r2, a);
        assert!(a.split_at(0, 7).is_err());
    }

    #[test]
    fn split_many_produces_cover() {
        let a = b(&[0, 0], &[10, 3]);
        let parts = a.split_many(0, &[3, 7]).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], b(&[0, 0], &[3, 3]));
        assert_eq!(parts[1], b(&[3, 0], &[7, 3]));
        assert_eq!(parts[2], b(&[7, 0], &[10, 3]));
        let total: usize = parts.iter().map(AxisBox::volume).sum();
        assert_eq!(total, a.volume());
        assert!(a.split_many(0, &[7, 3]).is_err(), "non-increasing cuts");
        assert!(a.split_many(0, &[0]).is_err(), "cut on the boundary");
        assert_eq!(a.split_many(0, &[]).unwrap(), vec![a.clone()]);
    }

    #[test]
    fn full_and_fits() {
        let s = Shape::new(vec![4, 6]).unwrap();
        let f = AxisBox::full(&s);
        assert_eq!(f, b(&[0, 0], &[4, 6]));
        assert!(f.fits(&s));
        assert!(!b(&[0, 0], &[4, 7]).fits(&s));
        assert!(!b(&[0], &[4]).fits(&s));
    }

    #[test]
    fn iter_points_row_major() {
        let a = b(&[1, 2], &[3, 4]);
        let pts: Vec<_> = a.iter_points().collect();
        assert_eq!(pts, vec![vec![1, 2], vec![1, 3], vec![2, 2], vec![2, 3]]);
        assert_eq!(b(&[0, 0], &[0, 5]).iter_points().count(), 0);
    }

    #[test]
    fn cell_box() {
        let c = AxisBox::cell(&[3, 4, 5]);
        assert_eq!(c.volume(), 1);
        assert!(c.contains(&[3, 4, 5]));
        assert!(!c.contains(&[3, 4, 6]));
    }
}
