use std::fmt;

/// Errors produced by frequency-matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FmError {
    /// A shape was constructed with no dimensions or a zero-length dimension.
    InvalidShape {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Coordinates or a flat index fell outside the matrix domain.
    OutOfBounds {
        /// The offending coordinates (or `[index]` for flat access).
        coords: Vec<usize>,
        /// The dimension cardinalities of the matrix.
        dims: Vec<usize>,
    },
    /// The number of coordinates does not match the matrix dimensionality.
    DimensionMismatch {
        /// Dimensionality expected by the matrix.
        expected: usize,
        /// Dimensionality supplied by the caller.
        got: usize,
    },
    /// A buffer passed to `from_vec` has the wrong number of elements.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements supplied.
        got: usize,
    },
    /// A box is not contained in the domain it is used with.
    BoxOutOfDomain {
        /// Description of the offending box.
        reason: String,
    },
}

impl fmt::Display for FmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FmError::InvalidShape { reason } => write!(f, "invalid shape: {reason}"),
            FmError::OutOfBounds { coords, dims } => {
                write!(f, "coordinates {coords:?} out of bounds for dims {dims:?}")
            }
            FmError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            FmError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "length mismatch: expected {expected} elements, got {got}"
                )
            }
            FmError::BoxOutOfDomain { reason } => write!(f, "box out of domain: {reason}"),
        }
    }
}

impl std::error::Error for FmError {}
