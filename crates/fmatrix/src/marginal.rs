//! Marginalization: projecting a frequency matrix onto a subset of its
//! dimensions by summing the rest out.
//!
//! OD matrices make this operation routine — the 2-D *origin density* of a
//! 4-D OD matrix is its marginal over dimensions `(0, 1)`, the conventional
//! OD matrix of a 6-D stops matrix is the marginal over origin+destination
//! dimensions, etc. Marginalizing a *sanitized* matrix is DP
//! post-processing and costs no budget.

use crate::{DenseMatrix, Element, FmError, Result, Shape};

/// Validates a marginal keep-list against a source shape and returns the
/// marginal's shape (the kept dimensions' cardinalities, in `keep`
/// order).
///
/// This is the one keep-list contract shared by every marginal consumer:
/// [`DenseMatrix::marginalize`] lowers through it, and memoizing layers
/// (e.g. a per-release index) use it to size and key their tables
/// without recomputing the projection.
///
/// ```
/// use dpod_fmatrix::{marginal_shape, Shape};
/// let s = Shape::new(vec![4, 5, 6]).unwrap();
/// assert_eq!(marginal_shape(&s, &[0, 2]).unwrap().dims(), &[4, 6]);
/// assert!(marginal_shape(&s, &[2, 0]).is_err());
/// ```
///
/// # Errors
/// [`FmError::InvalidShape`] for an empty, non-strictly-increasing, or
/// out-of-range `keep`.
pub fn marginal_shape(shape: &Shape, keep: &[usize]) -> Result<Shape> {
    if keep.is_empty() {
        return Err(FmError::InvalidShape {
            reason: "marginal must keep at least one dimension".into(),
        });
    }
    if keep.windows(2).any(|w| w[0] >= w[1]) || *keep.last().unwrap() >= shape.ndim() {
        return Err(FmError::InvalidShape {
            reason: format!(
                "keep list {keep:?} must be strictly increasing and < {}",
                shape.ndim()
            ),
        });
    }
    Shape::new(keep.iter().map(|&d| shape.dim(d)).collect())
}

impl<T: Element + std::ops::Add<Output = T>> DenseMatrix<T> {
    /// Sums out every dimension not listed in `keep`, returning the
    /// marginal matrix whose dimension order follows `keep`.
    ///
    /// `keep` must be non-empty, strictly increasing and in range (the
    /// strict order keeps the cell mapping unambiguous).
    ///
    /// ```
    /// use dpod_fmatrix::{DenseMatrix, Shape};
    /// let m = DenseMatrix::from_vec(
    ///     Shape::new(vec![2, 3]).unwrap(), vec![1u64, 2, 3, 4, 5, 6]).unwrap();
    /// let rows = m.marginalize(&[0]).unwrap();
    /// assert_eq!(rows.as_slice(), &[6, 15]);
    /// let cols = m.marginalize(&[1]).unwrap();
    /// assert_eq!(cols.as_slice(), &[5, 7, 9]);
    /// ```
    ///
    /// # Errors
    /// [`FmError::InvalidShape`] for an empty/unsorted/out-of-range `keep`.
    pub fn marginalize(&self, keep: &[usize]) -> Result<DenseMatrix<T>> {
        let out_shape = marginal_shape(self.shape(), keep)?;
        let mut out = DenseMatrix::<T>::zeros(out_shape);
        // Single pass over the source; the kept coordinates of each cell
        // are accumulated via precomputed stride contributions.
        let out_strides: Vec<usize> = out.shape().strides().to_vec();
        let src_dims = self.shape().dims().to_vec();
        let mut coords = vec![0usize; self.ndim()];
        for &v in self.as_slice() {
            let mut out_idx = 0;
            for (k, &dim) in keep.iter().enumerate() {
                out_idx += coords[dim] * out_strides[k];
            }
            let cur = out.get_flat(out_idx);
            out.set_flat(out_idx, cur + v);
            // Odometer increment (cheaper than div/mod per cell).
            let mut d = self.ndim();
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                coords[d] += 1;
                if coords[d] < src_dims[d] {
                    break;
                }
                coords[d] = 0;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    #[test]
    fn marginal_preserves_total() {
        let m = DenseMatrix::from_vec(shape(&[2, 3, 4]), (0..24u64).collect::<Vec<_>>()).unwrap();
        for keep in [
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
        ] {
            let g = m.marginalize(&keep).unwrap();
            assert_eq!(g.total_u64(), m.total_u64(), "keep {keep:?}");
        }
    }

    #[test]
    fn marginal_matches_manual_sum() {
        let m = DenseMatrix::from_vec(shape(&[2, 2, 2]), vec![1u64, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let g = m.marginalize(&[0, 2]).unwrap();
        assert_eq!(g.shape().dims(), &[2, 2]);
        // g[a][c] = sum over b of m[a][b][c]
        assert_eq!(g.get(&[0, 0]).unwrap(), 1 + 3);
        assert_eq!(g.get(&[0, 1]).unwrap(), 2 + 4);
        assert_eq!(g.get(&[1, 0]).unwrap(), 5 + 7);
        assert_eq!(g.get(&[1, 1]).unwrap(), 6 + 8);
    }

    #[test]
    fn keeping_all_dims_is_identity() {
        let m = DenseMatrix::from_vec(shape(&[3, 2]), (0..6u64).collect::<Vec<_>>()).unwrap();
        let g = m.marginalize(&[0, 1]).unwrap();
        assert_eq!(g, m);
    }

    #[test]
    fn works_for_f64_matrices() {
        let m = DenseMatrix::from_vec(shape(&[2, 2]), vec![0.5f64, 1.5, -1.0, 2.0]).unwrap();
        let g = m.marginalize(&[1]).unwrap();
        assert_eq!(g.as_slice(), &[-0.5, 3.5]);
    }

    #[test]
    fn rejects_bad_keep_lists() {
        let m = DenseMatrix::<u64>::zeros(shape(&[2, 2]));
        assert!(m.marginalize(&[]).is_err());
        assert!(m.marginalize(&[1, 0]).is_err());
        assert!(m.marginalize(&[0, 0]).is_err());
        assert!(m.marginalize(&[2]).is_err());
    }

    #[test]
    fn marginal_shape_matches_marginalize() {
        let m = DenseMatrix::from_vec(shape(&[2, 3, 4]), (0..24u64).collect::<Vec<_>>()).unwrap();
        for keep in [vec![0], vec![2], vec![0, 2], vec![0, 1, 2]] {
            let expect = m.marginalize(&keep).unwrap();
            let s = marginal_shape(m.shape(), &keep).unwrap();
            assert_eq!(&s, expect.shape(), "keep {keep:?}");
        }
        for keep in [vec![], vec![1, 1], vec![2, 1], vec![3]] {
            assert!(marginal_shape(m.shape(), &keep).is_err(), "keep {keep:?}");
        }
    }
}
