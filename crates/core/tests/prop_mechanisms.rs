//! Property-based tests applied uniformly to every mechanism in the crate.

use dpod_core::{all_mechanisms, daf::DafEntropy, PartitionSummary};
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, DenseMatrix, Shape};
use proptest::prelude::*;

/// Strategy: a small random count matrix (1–3 dims, each 1–10 cells).
fn arb_matrix() -> impl Strategy<Value = DenseMatrix<u64>> {
    prop::collection::vec(1usize..=10, 1..=3)
        .prop_map(|dims| Shape::new(dims).unwrap())
        .prop_flat_map(|shape| {
            let size = shape.size();
            prop::collection::vec(0u64..200, size)
                .prop_map(move |data| DenseMatrix::from_vec(shape.clone(), data).unwrap())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every mechanism: runs without error on arbitrary small inputs,
    /// produces finite entries, and (when it has partition structure)
    /// a valid partitioning of the domain.
    #[test]
    fn mechanisms_are_total_and_valid(
        m in arb_matrix(),
        eps in 0.05f64..3.0,
        seed in any::<u64>()
    ) {
        for mech in all_mechanisms() {
            let mut rng = dpod_dp::seeded_rng(seed);
            let out = mech
                .sanitize(&m, Epsilon::new(eps).unwrap(), &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", mech.name()));
            prop_assert!(
                out.matrix().as_slice().iter().all(|v| v.is_finite()),
                "{} produced non-finite entries", mech.name()
            );
            if let PartitionSummary::Boxes { partitioning, noisy_counts } = out.summary() {
                prop_assert!(
                    partitioning.validate().is_ok(),
                    "{} produced an invalid partitioning", mech.name()
                );
                prop_assert_eq!(partitioning.len(), noisy_counts.len());
            }
        }
    }

    /// Determinism: the same seed yields bit-identical releases.
    #[test]
    fn mechanisms_are_deterministic(
        m in arb_matrix(),
        seed in any::<u64>()
    ) {
        for mech in all_mechanisms() {
            let eps = Epsilon::new(0.5).unwrap();
            let a = mech
                .sanitize(&m, eps, &mut dpod_dp::seeded_rng(seed))
                .unwrap();
            let b = mech
                .sanitize(&m, eps, &mut dpod_dp::seeded_rng(seed))
                .unwrap();
            prop_assert_eq!(
                a.matrix().as_slice(), b.matrix().as_slice(),
                "{} is not deterministic per seed", mech.name()
            );
        }
    }

    /// Unbiasedness at the total level: averaged over seeds, the released
    /// total tracks the true total (Laplace noise is zero-mean and the
    /// pipelines add no systematic offset). Wide tolerance — this guards
    /// against gross bias bugs (e.g. double-counted partitions).
    #[test]
    fn totals_are_unbiased_over_seeds(m in arb_matrix()) {
        let truth = m.total();
        for mech in all_mechanisms() {
            let eps = Epsilon::new(2.0).unwrap();
            let runs = 24;
            let mean: f64 = (0..runs)
                .map(|s| {
                    mech.sanitize(&m, eps, &mut dpod_dp::seeded_rng(s))
                        .unwrap()
                        .total()
                })
                .sum::<f64>() / runs as f64;
            // Per-run total noise std is bounded by ~√(2·cells)/ε plus
            // hierarchy effects; 24 runs shrink it by ~5×. Use a generous
            // absolute+relative band.
            let tolerance = 40.0 + 0.5 * truth;
            prop_assert!(
                (mean - truth).abs() < tolerance,
                "{}: mean total {mean} vs truth {truth}", mech.name()
            );
        }
    }

    /// DAF budget invariant on arbitrary inputs: every root→leaf path
    /// spends exactly ε_tot, and no node exceeds it.
    #[test]
    fn daf_budget_telescopes(
        m in arb_matrix(),
        eps in 0.05f64..2.0,
        seed in any::<u64>()
    ) {
        let (_, tree) = DafEntropy::default()
            .sanitize_with_tree(&m, Epsilon::new(eps).unwrap(), &mut dpod_dp::seeded_rng(seed))
            .unwrap();
        tree.visit(&mut |n| {
            assert!(n.payload.acc_after <= eps + 1e-9);
            if n.is_leaf() {
                assert!(
                    (n.payload.acc_after - eps).abs() < 1e-9,
                    "leaf at depth {} spent {} of {eps}", n.depth, n.payload.acc_after
                );
            }
        });
    }

    /// The released matrix answers the full-domain query with the same
    /// value as the sum of its entries (prefix-table consistency).
    #[test]
    fn full_query_equals_entry_sum(
        m in arb_matrix(),
        seed in any::<u64>()
    ) {
        for mech in all_mechanisms() {
            let out = mech
                .sanitize(&m, Epsilon::new(1.0).unwrap(), &mut dpod_dp::seeded_rng(seed))
                .unwrap();
            let by_query = out.range_sum(&AxisBox::full(m.shape()));
            let by_sum: f64 = out.matrix().as_slice().iter().sum();
            prop_assert!(
                (by_query - by_sum).abs() < 1e-6 * (1.0 + by_sum.abs()),
                "{}: {by_query} vs {by_sum}", mech.name()
            );
        }
    }
}
