//! Property tests for the publication artifact: a release survives both
//! wire formats (serde JSON and the `DPRL` binary frame) bit-for-bit, and
//! the analyst-side rebuild answers every range query identically to the
//! curator-side original.

use dpod_core::{all_mechanisms, PublishedRelease};
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, DenseMatrix, Shape};
use proptest::prelude::*;

/// Strategy: a small random count matrix (1–3 dims, each 1–9 cells).
fn arb_matrix() -> impl Strategy<Value = DenseMatrix<u64>> {
    prop::collection::vec(1usize..=9, 1..=3)
        .prop_map(|dims| Shape::new(dims).unwrap())
        .prop_flat_map(|shape| {
            let size = shape.size();
            prop::collection::vec(0u64..150, size)
                .prop_map(move |data| DenseMatrix::from_vec(shape.clone(), data).unwrap())
        })
}

/// Strategy: a random box inside `shape`.
fn arb_box_in(shape: &Shape) -> impl Strategy<Value = AxisBox> {
    let dims = shape.dims().to_vec();
    dims.iter()
        .map(|&d| (0..=d, 0..=d))
        .collect::<Vec<_>>()
        .prop_map(|corners| {
            let lo: Vec<usize> = corners.iter().map(|&(a, b)| a.min(b)).collect();
            let hi: Vec<usize> = corners.iter().map(|&(a, b)| a.max(b)).collect();
            AxisBox::new(lo, hi).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every mechanism: artifact → JSON → artifact and artifact →
    /// DPRL bytes → artifact are identity, and the rebuilt sanitized
    /// matrix answers random range queries exactly like the original.
    #[test]
    fn release_round_trips_preserve_range_sums(
        (m, queries) in arb_matrix().prop_flat_map(|m| {
            let boxes = prop::collection::vec(arb_box_in(m.shape()), 1..8);
            (Just(m), boxes)
        }),
        eps in 0.1f64..2.0,
        seed in any::<u64>()
    ) {
        for mech in all_mechanisms() {
            let out = mech
                .sanitize(&m, Epsilon::new(eps).unwrap(), &mut dpod_dp::seeded_rng(seed))
                .unwrap_or_else(|e| panic!("{} failed: {e}", mech.name()));
            let artifact = PublishedRelease::from_sanitized(&out);

            // JSON wire format.
            let json = serde_json::to_string(&artifact).unwrap();
            let from_json: PublishedRelease = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&from_json, &artifact);

            // DPRL binary wire format.
            let bytes = artifact.to_bytes();
            let from_bytes = PublishedRelease::from_bytes(&bytes).unwrap();
            prop_assert_eq!(&from_bytes, &artifact);

            // Analyst rebuild answers queries identically (bit-exact: the
            // frame stores IEEE-754 bit patterns, JSON shortest-round-trip
            // decimals).
            let rebuilt = from_bytes.into_sanitized().unwrap();
            for q in &queries {
                prop_assert_eq!(rebuilt.range_sum(q), out.range_sum(q),
                    "{} range_sum diverged on {:?}", mech.name(), q);
            }
            let rebuilt_json = from_json.into_sanitized().unwrap();
            for q in &queries {
                prop_assert_eq!(rebuilt_json.range_sum(q), out.range_sum(q),
                    "{} JSON range_sum diverged on {:?}", mech.name(), q);
            }
        }
    }
}
