use crate::SanitizedMatrix;
use dpod_dp::{DpError, Epsilon};
use dpod_fmatrix::{DenseMatrix, FmError};
use rand::RngCore;
use std::fmt;

/// Errors produced by sanitization mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub enum MechanismError {
    /// Budget accounting or noise-parameter failure.
    Dp(DpError),
    /// Frequency-matrix geometry failure.
    Fm(FmError),
    /// Mechanism-specific configuration or input problem.
    Invalid(String),
}

impl fmt::Display for MechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechanismError::Dp(e) => write!(f, "dp error: {e}"),
            MechanismError::Fm(e) => write!(f, "frequency-matrix error: {e}"),
            MechanismError::Invalid(msg) => write!(f, "invalid mechanism input: {msg}"),
        }
    }
}

impl std::error::Error for MechanismError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MechanismError::Dp(e) => Some(e),
            MechanismError::Fm(e) => Some(e),
            MechanismError::Invalid(_) => None,
        }
    }
}

impl From<DpError> for MechanismError {
    fn from(e: DpError) -> Self {
        MechanismError::Dp(e)
    }
}

impl From<FmError> for MechanismError {
    fn from(e: FmError) -> Self {
        MechanismError::Fm(e)
    }
}

/// A differentially-private frequency-matrix sanitization mechanism.
///
/// The contract (Problem 1 of the paper): given the exact count matrix `F`
/// and a total budget ε, release an ε-DP estimate of `F`. Implementations
/// must spend **at most** ε along any sequential-composition path; the
/// workspace's integration tests verify this through instrumented runs.
///
/// The trait is object-safe (`&mut dyn RngCore`) so experiment harnesses
/// can hold heterogeneous mechanism suites.
pub trait Mechanism {
    /// Stable display name used in experiment output (matches the paper's
    /// figure legends, e.g. `"EBP"`, `"DAF-Entropy"`).
    fn name(&self) -> &'static str;

    /// Sanitizes `input` under total budget `epsilon`.
    ///
    /// # Errors
    /// [`MechanismError`] when the configuration is invalid for the input
    /// (wrong dimensionality, exhausted budget, …). Mechanisms never panic
    /// on valid inputs.
    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = MechanismError::from(DpError::InvalidEpsilon { value: -1.0 });
        assert!(e.to_string().contains("dp error"));
        assert!(std::error::Error::source(&e).is_some());
        let e2 = MechanismError::Invalid("bad".into());
        assert!(std::error::Error::source(&e2).is_none());
    }

    #[test]
    fn trait_is_object_safe() {
        // Compile-time check: a Vec of boxed mechanisms must be expressible.
        fn _takes(_: Vec<Box<dyn Mechanism>>) {}
    }
}
