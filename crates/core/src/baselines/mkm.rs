use crate::granularity::{mkm_m, round_granularity};
use crate::grid_engine::{noisy_total, sanitize_grid};
use crate::{Mechanism, MechanismError, SanitizedMatrix};
use dpod_dp::Epsilon;
use dpod_fmatrix::DenseMatrix;
use dpod_partition::UniformGrid;
use rand::RngCore;

/// The MKM grid baseline (\[11\] — Lei's differentially-private M-estimators).
///
/// Identical pipeline to EUG/EBP but with the dimensionality-aware
/// granularity rule `m = (N̂ ε²/ln N̂)^(1/(d+2))` (see DESIGN.md §3.2 for
/// the interpretation of the uncited formula). The paper highlights that
/// this rule violates the ε-scale exchangeability principle of Hay et al.,
/// which our granularity tests assert.
#[derive(Debug, Clone, PartialEq)]
pub struct Mkm {
    /// Fraction of the budget spent on the noisy total (ε₀).
    pub eps0_fraction: f64,
}

impl Default for Mkm {
    fn default() -> Self {
        Mkm {
            eps0_fraction: 0.01,
        }
    }
}

impl Mkm {
    /// The granularity this configuration chooses.
    pub fn granularity(&self, d: usize, n_hat: f64, epsilon: f64) -> f64 {
        mkm_m(d, n_hat, epsilon)
    }
}

impl Mechanism for Mkm {
    fn name(&self) -> &'static str {
        "MKM"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        let nt = noisy_total(input, epsilon, self.eps0_fraction, rng)?;
        let d = input.ndim();
        let m = self.granularity(d, nt.n_hat, nt.accountant.remaining());
        let cells: Vec<usize> = input
            .shape()
            .dims()
            .iter()
            .map(|&len| round_granularity(m, len))
            .collect();
        let grid = UniformGrid::new(input.shape(), &cells).map_err(MechanismError::Invalid)?;
        sanitize_grid(input, &grid, nt.accountant, epsilon, self.name(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::Shape;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn coarse_grid_at_low_budget() {
        // N=1e6, ε=0.1, d=2: m = (1e4/13.8)^(1/4) ≈ 5.2.
        let m = Mkm::default().granularity(2, 1e6, 0.1);
        assert!((m - 5.2).abs() < 0.3, "m = {m}");
    }

    #[test]
    fn sanitizes_and_partitions_validly() {
        let s = Shape::new(vec![25, 25]).unwrap();
        let m = DenseMatrix::from_vec(s.clone(), vec![8u64; 625]).unwrap();
        let out = Mkm::default()
            .sanitize(&m, eps(0.5), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        match out.summary() {
            crate::PartitionSummary::Boxes { partitioning, .. } => {
                assert!(partitioning.validate().is_ok());
            }
            other => panic!("expected boxes, got {other:?}"),
        }
        assert!((out.total() - 5_000.0).abs() < 2_000.0);
    }

    #[test]
    fn granularity_insensitive_to_matching_scale_changes() {
        // Unlike EBP, MKM's m changes when (N, ε) → (10N, ε/10).
        let a = Mkm::default().granularity(2, 1e6, 0.1);
        let b = Mkm::default().granularity(2, 1e7, 0.01);
        assert!((a - b).abs() > 0.1);
    }
}
