use crate::daf::level_budgets;
use crate::granularity::ebp_m;
use crate::{Mechanism, MechanismError, SanitizedMatrix};
use dpod_dp::{laplace::sample_laplace, Epsilon};
use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum};
use dpod_partition::{tree::TreeNode, Partitioning};
use rand::RngCore;

/// A 2^d-ary hierarchical baseline (extension; \[4\] in the paper).
///
/// The data-independent tree of Cormode et al.: every node splits each
/// dimension at its midpoint regardless of data placement, to a fixed
/// height `h`. Budgets follow the geometric per-level allocation (more to
/// deeper levels, fanout 2^d), every node's count is sanitized, and a
/// top-down mean-consistency pass redistributes each parent/children
/// mismatch before the leaves are published (the simplified form of Hay et
/// al.'s constrained inference — see DESIGN.md).
///
/// Height selection: `h` targets the EBP granularity, `2^h ≈ m_EBP`, after
/// an ε/100 noisy total — so the leaf resolution is comparable to the grid
/// methods and differences come from the hierarchy itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadTree {
    /// Fixed tree height override; `None` derives it from the data size.
    pub height: Option<usize>,
    /// Fraction of budget for the noisy total used in height selection.
    pub eps0_fraction: f64,
}

impl Default for QuadTree {
    fn default() -> Self {
        QuadTree {
            height: None,
            eps0_fraction: 0.01,
        }
    }
}

#[derive(Debug, Clone)]
struct QtPayload {
    ncount: f64,
    /// Consistency-adjusted estimate, filled top-down after building.
    estimate: f64,
}

impl Mechanism for QuadTree {
    fn name(&self) -> &'static str {
        "QuadTree"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        if !(self.eps0_fraction > 0.0 && self.eps0_fraction < 1.0) {
            return Err(MechanismError::Invalid(format!(
                "eps0_fraction must be in (0,1), got {}",
                self.eps0_fraction
            )));
        }
        let d = input.ndim();
        let prefix = PrefixSum::from_counts(input);

        // Height: match the EBP per-dimension granularity.
        let (height, mut remaining) = match self.height {
            Some(h) => (h, epsilon.value()),
            None => {
                let eps0 = epsilon.value() * self.eps0_fraction;
                let n_hat = input.total() + sample_laplace(rng, 1.0 / eps0);
                let m = ebp_m(d, n_hat, epsilon.value() - eps0);
                let h = (m.max(1.0).log2().ceil() as usize).max(1);
                // Cap: no dimension can be split below single cells.
                let max_h = input
                    .shape()
                    .dims()
                    .iter()
                    .map(|&n| (n as f64).log2().ceil() as usize)
                    .max()
                    .unwrap_or(1)
                    .max(1);
                (h.min(max_h), epsilon.value() - eps0)
            }
        };

        // Per-level budgets: root + `height` levels, geometric in the
        // fanout 2^d (reusing the DAF closed form).
        let fanout = (2usize).pow(d as u32) as f64;
        let level_eps = level_budgets(remaining, fanout, height + 1);
        remaining = 0.0;
        let _ = remaining;

        // Build the tree, sanitizing every node.
        let mut root = build_level(
            AxisBox::full(input.shape()),
            0,
            height,
            &prefix,
            &level_eps,
            rng,
        );

        // Top-down mean consistency: spread the parent/children mismatch
        // equally, then publish the adjusted leaves.
        root.payload.estimate = root.payload.ncount;
        make_consistent(&mut root);

        let leaves = root.leaves();
        let boxes: Vec<AxisBox> = leaves.iter().map(|l| l.bounds.clone()).collect();
        let counts: Vec<f64> = leaves.iter().map(|l| l.payload.estimate).collect();
        let partitioning = Partitioning::new_unchecked(input.shape().clone(), boxes);
        Ok(SanitizedMatrix::from_partitions(
            self.name(),
            epsilon.value(),
            input.shape().clone(),
            partitioning,
            counts,
        ))
    }
}

/// Recursively builds the uniform midpoint tree down to `height`.
fn build_level(
    bounds: AxisBox,
    depth: usize,
    height: usize,
    prefix: &PrefixSum<i128>,
    level_eps: &[f64],
    rng: &mut dyn RngCore,
) -> TreeNode<QtPayload> {
    let count = prefix.box_count(&bounds) as f64;
    let ncount = count + sample_laplace(rng, 1.0 / level_eps[depth]);
    let mut node = TreeNode::leaf(
        bounds.clone(),
        depth,
        QtPayload {
            ncount,
            estimate: ncount,
        },
    );
    // Split every dimension at its midpoint (skip length-1 extents); stop
    // at the height limit or when nothing is splittable.
    if depth < height {
        let children = midpoint_children(&bounds);
        if children.len() > 1 {
            node.children = children
                .into_iter()
                .map(|cb| build_level(cb, depth + 1, height, prefix, level_eps, rng))
                .collect();
        }
    }
    node
}

/// All 2^k midpoint sub-boxes of `bounds` (k = number of dims with
/// extent ≥ 2).
fn midpoint_children(bounds: &AxisBox) -> Vec<AxisBox> {
    let mut boxes = vec![bounds.clone()];
    for dim in 0..bounds.ndim() {
        if bounds.extent(dim) < 2 {
            continue;
        }
        let mid = bounds.lo()[dim] + bounds.extent(dim) / 2;
        let mut next = Vec::with_capacity(boxes.len() * 2);
        for b in boxes {
            let (l, r) = b.split_at(dim, mid).expect("midpoint is interior");
            next.push(l);
            next.push(r);
        }
        boxes = next;
    }
    boxes
}

/// Top-down uniform redistribution of the parent/children mismatch.
fn make_consistent(node: &mut TreeNode<QtPayload>) {
    if node.is_leaf() {
        return;
    }
    let child_sum: f64 = node.children.iter().map(|c| c.payload.ncount).sum();
    let adjust = (node.payload.estimate - child_sum) / node.children.len() as f64;
    for c in &mut node.children {
        c.payload.estimate = c.payload.ncount + adjust;
        make_consistent(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::Shape;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn midpoint_children_cover_parent() {
        let b = AxisBox::new(vec![0, 0, 0], vec![8, 5, 1]).unwrap();
        let kids = midpoint_children(&b);
        // dim 2 has extent 1 ⇒ only 4 children.
        assert_eq!(kids.len(), 4);
        let vol: usize = kids.iter().map(AxisBox::volume).sum();
        assert_eq!(vol, b.volume());
    }

    #[test]
    fn produces_valid_partitioning() {
        let s = Shape::new(vec![32, 32]).unwrap();
        let m = DenseMatrix::from_vec(s.clone(), vec![20u64; 1024]).unwrap();
        let out = QuadTree::default()
            .sanitize(&m, eps(1.0), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        let crate::PartitionSummary::Boxes { partitioning, .. } = out.summary() else {
            panic!("expected boxes");
        };
        assert!(partitioning.validate().is_ok());
    }

    #[test]
    fn consistency_pass_preserves_parent_totals() {
        let s = Shape::new(vec![16, 16]).unwrap();
        let m = DenseMatrix::from_vec(s.clone(), vec![100u64; 256]).unwrap();
        let out = QuadTree {
            height: Some(2),
            ..QuadTree::default()
        }
        .sanitize(&m, eps(2.0), &mut dpod_dp::seeded_rng(2))
        .unwrap();
        // After top-down consistency, the leaf estimates sum to the root's
        // estimate; with ε=2 that root estimate is near the truth.
        assert!((out.total() - 25_600.0).abs() < 500.0);
    }

    #[test]
    fn fixed_height_controls_leaf_count() {
        let s = Shape::new(vec![16, 16]).unwrap();
        let m = DenseMatrix::<u64>::zeros(s);
        let h1 = QuadTree {
            height: Some(1),
            ..QuadTree::default()
        }
        .sanitize(&m, eps(1.0), &mut dpod_dp::seeded_rng(3))
        .unwrap();
        let h3 = QuadTree {
            height: Some(3),
            ..QuadTree::default()
        }
        .sanitize(&m, eps(1.0), &mut dpod_dp::seeded_rng(3))
        .unwrap();
        assert_eq!(h1.num_partitions(), 4);
        assert_eq!(h3.num_partitions(), 64);
    }

    #[test]
    fn odd_extents_are_handled() {
        let s = Shape::new(vec![7, 9]).unwrap();
        let m = DenseMatrix::from_vec(s.clone(), vec![3u64; 63]).unwrap();
        let out = QuadTree::default()
            .sanitize(&m, eps(0.5), &mut dpod_dp::seeded_rng(4))
            .unwrap();
        assert!(out.total().is_finite());
    }
}
