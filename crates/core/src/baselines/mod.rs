//! Baseline mechanisms the paper evaluates against (§5, Table 2), plus two
//! extension baselines from its related work.

mod identity;
mod mkm;
mod privelet;
mod quadtree;
mod uniform;

pub use identity::Identity;
pub use mkm::Mkm;
pub use privelet::Privelet;
pub use quadtree::QuadTree;
pub use uniform::Uniform;
