use crate::{Mechanism, MechanismError, SanitizedMatrix};
use dpod_dp::{laplace::LaplaceMechanism, Epsilon};
use dpod_fmatrix::DenseMatrix;
use rand::RngCore;

/// The IDENTITY baseline (\[7\], Table 2): add `Lap(1/ε)` to every matrix
/// entry independently.
///
/// Zero uniformity error, maximal noise error — the number of released
/// counts equals the domain size, so on sparse high-dimensional matrices
/// the noise swamps the signal (the effect Figures 4–6 show).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl Mechanism for Identity {
    fn name(&self) -> &'static str {
        "IDENTITY"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        // Entries are disjoint singleton partitions: parallel composition
        // lets each receive the full budget.
        let lap = LaplaceMechanism::counting();
        let mut out = DenseMatrix::<f64>::zeros(input.shape().clone());
        for (i, &v) in input.as_slice().iter().enumerate() {
            out.set_flat(i, lap.randomize(v as f64, epsilon, rng));
        }
        Ok(SanitizedMatrix::from_entries(
            self.name(),
            epsilon.value(),
            out,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::Shape;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn every_entry_is_perturbed_independently() {
        let s = Shape::new(vec![8, 8]).unwrap();
        let m = DenseMatrix::from_vec(s.clone(), vec![100u64; 64]).unwrap();
        let out = Identity
            .sanitize(&m, eps(1.0), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        let values: Vec<f64> = out.matrix().as_slice().to_vec();
        // All entries differ from the truth and from each other (a.s.).
        assert!(values.iter().all(|&v| v != 100.0));
        let first = values[0];
        assert!(values.iter().skip(1).any(|&v| v != first));
        assert_eq!(out.num_partitions(), 64);
    }

    #[test]
    fn unbiased_total_at_scale() {
        let s = Shape::new(vec![50, 50]).unwrap();
        let m = DenseMatrix::from_vec(s.clone(), vec![10u64; 2500]).unwrap();
        let out = Identity
            .sanitize(&m, eps(1.0), &mut dpod_dp::seeded_rng(2))
            .unwrap();
        // Total noise std = √(2·2500)/1 ≈ 71; truth 25 000.
        assert!((out.total() - 25_000.0).abs() < 500.0);
    }

    #[test]
    fn noise_scale_shrinks_with_epsilon() {
        let s = Shape::new(vec![40, 40]).unwrap();
        let m = DenseMatrix::<u64>::zeros(s);
        let spread = |e: f64, seed: u64| {
            let out = Identity
                .sanitize(&m, eps(e), &mut dpod_dp::seeded_rng(seed))
                .unwrap();
            out.matrix().as_slice().iter().map(|v| v.abs()).sum::<f64>() / 1600.0
        };
        assert!(spread(0.1, 3) > 4.0 * spread(10.0, 3));
    }
}
