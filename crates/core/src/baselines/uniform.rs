use crate::{Mechanism, MechanismError, SanitizedMatrix};
use dpod_dp::{laplace::LaplaceMechanism, Epsilon};
use dpod_fmatrix::DenseMatrix;
use dpod_partition::Partitioning;
use rand::RngCore;

/// The UNIFORM (a.k.a. *singular*) baseline (\[8\], Table 2): treat the whole
/// matrix as a single partition, release one noisy total, and answer every
/// query under the global uniformity assumption.
///
/// Minimal noise error (one Laplace draw), maximal uniformity error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Uniform;

impl Mechanism for Uniform {
    fn name(&self) -> &'static str {
        "UNIFORM"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        let lap = LaplaceMechanism::counting();
        let noisy = lap.randomize(input.total(), epsilon, rng);
        let partitioning = Partitioning::single(input.shape().clone());
        Ok(SanitizedMatrix::from_partitions(
            self.name(),
            epsilon.value(),
            input.shape().clone(),
            partitioning,
            vec![noisy],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::{AxisBox, Shape};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn releases_exactly_one_partition() {
        let s = Shape::new(vec![10, 10]).unwrap();
        let m = DenseMatrix::from_vec(s.clone(), vec![5u64; 100]).unwrap();
        let out = Uniform
            .sanitize(&m, eps(1.0), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        assert_eq!(out.num_partitions(), 1);
        assert!((out.total() - 500.0).abs() < 30.0);
    }

    #[test]
    fn all_entries_are_equal() {
        let s = Shape::new(vec![4, 4]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.set(&[0, 0], 160).unwrap();
        let out = Uniform
            .sanitize(&m, eps(2.0), &mut dpod_dp::seeded_rng(2))
            .unwrap();
        let v0 = out.entry(&[0, 0]).unwrap();
        for c in m.shape().iter_coords() {
            assert_eq!(out.entry(&c).unwrap(), v0, "uniformity assumption");
        }
    }

    #[test]
    fn perfect_on_uniform_data_queries() {
        // For exactly uniform data the only error is the single noise draw,
        // scaled down by the query's coverage fraction.
        let s = Shape::new(vec![20, 20]).unwrap();
        let m = DenseMatrix::from_vec(s.clone(), vec![10u64; 400]).unwrap();
        let out = Uniform
            .sanitize(&m, eps(1.0), &mut dpod_dp::seeded_rng(3))
            .unwrap();
        let q = AxisBox::new(vec![0, 0], vec![10, 10]).unwrap();
        let truth = 1_000.0;
        assert!((out.range_sum(&q) - truth).abs() < 10.0);
    }
}
