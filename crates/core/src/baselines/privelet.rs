use crate::{Mechanism, MechanismError, SanitizedMatrix};
use dpod_dp::{laplace::sample_laplace, Epsilon};
use dpod_fmatrix::{DenseMatrix, Shape};
use rand::RngCore;

/// Privelet — wavelet-domain noise (extension baseline; \[18\] in the paper).
///
/// Applies the multi-dimensional *unnormalized* Haar transform (standard
/// tensor decomposition: a full 1-D pyramid along each dimension in turn),
/// adds Laplace noise to every coefficient, inverts, and crops.
///
/// With the unnormalized transform (`approx = left + right`,
/// `detail = left − right`), a ±1 change of one cell changes exactly
/// `1 + log₂ n_i` coefficients by ±1 along each dimension, so the L1
/// sensitivity of the coefficient vector is `∏ᵢ (1 + log₂ n_i)` and every
/// coefficient receives noise of that scale over ε. This is the simplified
/// uniform-weight variant of Xiao et al.'s Privelet (which uses per-level
/// weights); DESIGN.md documents the simplification. Dimensions are padded
/// to powers of two with (data-independent) zeros before the transform.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Privelet;

impl Privelet {
    /// Largest padded domain accepted (keeps accidental 1000⁴ requests from
    /// exhausting memory).
    const MAX_PADDED_CELLS: usize = 1 << 27;
}

impl Mechanism for Privelet {
    fn name(&self) -> &'static str {
        "Privelet"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        let dims = input.shape().dims();
        let padded_dims = padded_dims(dims);
        let padded_size: usize = padded_dims.iter().product();
        if padded_size > Self::MAX_PADDED_CELLS {
            return Err(MechanismError::Invalid(format!(
                "padded domain has {padded_size} cells (> {})",
                Self::MAX_PADDED_CELLS
            )));
        }
        let padded_shape = Shape::new(padded_dims.clone()).expect("padded dims are valid");

        // Embed the counts into the padded domain.
        let mut buf = DenseMatrix::<f64>::zeros(padded_shape.clone());
        for (i, &v) in input.as_slice().iter().enumerate() {
            let coords = input.shape().coords(i);
            let idx = padded_shape.flat_index_unchecked(&coords);
            buf.set_flat(idx, v as f64);
        }

        // Forward Haar along each dimension, noise, inverse.
        for dim in 0..padded_shape.ndim() {
            haar_along_dim(&mut buf, dim, Direction::Forward);
        }
        let sensitivity: f64 = padded_dims
            .iter()
            .map(|&n| 1.0 + (n as f64).log2())
            .product();
        let scale = sensitivity / epsilon.value();
        for v in buf.as_mut_slice() {
            *v += sample_laplace(rng, scale);
        }
        for dim in 0..padded_shape.ndim() {
            haar_along_dim(&mut buf, dim, Direction::Inverse);
        }

        // Crop back to the original domain.
        let mut out = DenseMatrix::<f64>::zeros(input.shape().clone());
        for i in 0..out.len() {
            let coords = input.shape().coords(i);
            let idx = padded_shape.flat_index_unchecked(&coords);
            out.set_flat(i, buf.get_flat(idx));
        }
        Ok(SanitizedMatrix::from_entries(
            self.name(),
            epsilon.value(),
            out,
        ))
    }
}

/// Per-dimension power-of-two padding for the Haar transform.
fn padded_dims(dims: &[usize]) -> Vec<usize> {
    dims.iter().map(|&n| n.next_power_of_two()).collect()
}

enum Direction {
    Forward,
    Inverse,
}

/// Applies the full 1-D Haar pyramid to every line of `m` along `dim`.
fn haar_along_dim(m: &mut DenseMatrix<f64>, dim: usize, direction: Direction) {
    let shape = m.shape().clone();
    let n = shape.dim(dim);
    if n < 2 {
        return;
    }
    debug_assert!(n.is_power_of_two());
    let stride = shape.strides()[dim];
    let mut line = vec![0.0f64; n];
    let mut scratch = vec![0.0f64; n];

    // Enumerate the base index of every line along `dim`: all indices whose
    // `dim` coordinate is zero.
    let size = shape.size();
    let block = stride * n;
    let mut base = 0;
    while base < size {
        for off in 0..stride {
            let start = base + off;
            for (k, slot) in line.iter_mut().enumerate() {
                *slot = m.get_flat(start + k * stride);
            }
            match direction {
                Direction::Forward => haar_forward(&mut line, &mut scratch),
                Direction::Inverse => haar_inverse(&mut line, &mut scratch),
            }
            for (k, &v) in line.iter().enumerate() {
                m.set_flat(start + k * stride, v);
            }
        }
        base += block;
    }
}

/// In-place unnormalized Haar pyramid: repeatedly maps pairs to
/// `(sum, difference)`, sums first. Layout after: `[base, coarsest detail,
/// …, finest details]`.
fn haar_forward(x: &mut [f64], scratch: &mut [f64]) {
    let mut len = x.len();
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            scratch[i] = x[2 * i] + x[2 * i + 1];
            scratch[half + i] = x[2 * i] - x[2 * i + 1];
        }
        x[..len].copy_from_slice(&scratch[..len]);
        len = half;
    }
}

/// Inverse of [`haar_forward`].
fn haar_inverse(x: &mut [f64], scratch: &mut [f64]) {
    let n = x.len();
    let mut len = 1;
    while len < n {
        for i in 0..len {
            let a = x[i];
            let d = x[len + i];
            scratch[2 * i] = (a + d) / 2.0;
            scratch[2 * i + 1] = (a - d) / 2.0;
        }
        x[..2 * len].copy_from_slice(&scratch[..2 * len]);
        len *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn haar_round_trips() {
        let mut x = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let orig = x.clone();
        let mut s = vec![0.0; 8];
        haar_forward(&mut x, &mut s);
        // Base coefficient is the total sum.
        assert!((x[0] - orig.iter().sum::<f64>()).abs() < 1e-12);
        haar_inverse(&mut x, &mut s);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_change_touches_log_n_coeffs() {
        // The sensitivity argument: coefficient vectors of neighbouring
        // inputs differ in exactly 1 + log2 n positions, each by ±1.
        let n = 16;
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        b[5] = 1.0;
        let mut s = vec![0.0; n];
        haar_forward(&mut a, &mut s);
        haar_forward(&mut b, &mut s);
        let changed: Vec<f64> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .filter(|&d| d > 1e-12)
            .collect();
        assert_eq!(changed.len(), 1 + 4 /* log2 16 */);
        assert!(changed.iter().all(|&d| (d - 1.0).abs() < 1e-12));
    }

    #[test]
    fn sanitize_pads_non_power_of_two() {
        let s = Shape::new(vec![5, 3]).unwrap();
        let m = DenseMatrix::from_vec(s, vec![10u64; 15]).unwrap();
        let out = Privelet
            .sanitize(&m, eps(5.0), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        assert_eq!(out.matrix().shape().dims(), &[5, 3]);
        assert!(out.total().is_finite());
    }

    #[test]
    fn high_budget_recovers_data() {
        let s = Shape::new(vec![16, 16]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.set(&[4, 4], 10_000).unwrap();
        let out = Privelet
            .sanitize(&m, eps(1_000.0), &mut dpod_dp::seeded_rng(2))
            .unwrap();
        assert!((out.entry(&[4, 4]).unwrap() - 10_000.0).abs() < 10.0);
        assert!(out.entry(&[10, 10]).unwrap().abs() < 10.0);
    }

    #[test]
    fn oversized_domains_are_detected_by_the_guard() {
        // 1025 pads to 2048 per dimension; 2048⁴ cells exceed the guard.
        let p = padded_dims(&[1025, 1025, 65, 65]);
        assert_eq!(p, vec![2048, 2048, 128, 128]);
        let cells: usize = p.iter().product();
        assert!(cells > Privelet::MAX_PADDED_CELLS);
        // Within budget: the paper's 1000² city grid pads to 1024².
        let ok: usize = padded_dims(&[1000, 1000]).iter().product();
        assert!(ok <= Privelet::MAX_PADDED_CELLS);
    }

    #[test]
    fn single_cell_dimension_is_noop_for_transform() {
        let s = Shape::new(vec![1, 8]).unwrap();
        let m = DenseMatrix::from_vec(s, vec![5u64; 8]).unwrap();
        let out = Privelet
            .sanitize(&m, eps(100.0), &mut dpod_dp::seeded_rng(4))
            .unwrap();
        assert!((out.total() - 40.0).abs() < 5.0);
    }
}
